//! The resilience-vs-memory frontier: survival-target placement against
//! the paper's fixed-`k` replication curves.
//!
//! The paper buys fault tolerance with a uniform replica count `k` —
//! every task pays `k` replicas of memory regardless of which machines
//! it actually sits on. `SurvivalPlacement` spends the same currency
//! per task, guided by a heterogeneous [`ReliabilityModel`]. This
//! module measures both families under identical seeded fault
//! campaigns and emits one [`FrontierPoint`] per configuration, so
//! `rds reliability` (and the EXPERIMENTS walkthrough) can plot
//! guaranteed survival against memory and check dominance.
//!
//! Each point carries two survival numbers:
//! - `analytic`: the model's closed-form *minimum per-task* survival —
//!   the guarantee the placement can print on the box;
//! - `measured`: the mean task-survival rate over seeded fault scripts
//!   executed through the [`ResilienceEngine`] (crashes at `t = 0`,
//!   the horizon-draw semantics the analytic number speaks about).

use rds_algs::survival::SurvivalPlacement;
use rds_algs::Strategy;
use rds_core::{Instance, Placement, Realization, ReliabilityModel, Result, Uncertainty};
use rds_sim::faults::ResilienceEngine;
use rds_sim::OrderedDispatcher;
use rds_workloads::{rng, HeterogeneousFaultModel};

use crate::ChainedReplication;

/// One placement on the resilience-vs-memory plane.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// Display label (`k=2`, `S(0.99)`, …).
    pub label: String,
    /// Total memory: `Σ_j |M_j| · s_j` (1 per replica when unsized).
    pub memory: f64,
    /// Analytic minimum per-task survival probability under the model.
    pub analytic: f64,
    /// Mean engine-measured task survival over the campaign scripts.
    pub measured: f64,
    /// Largest per-task replica count.
    pub max_replicas: usize,
    /// Expected recovery cost over one horizon draw
    /// ([`ReliabilityModel::expected_recovery_cost`]): the re-staging
    /// bill this placement signs up for, in the model's per-machine
    /// cost weights.
    pub recovery_cost: f64,
    /// `true` for survival-target points that fell back to degraded
    /// max-min mode (always `false` for fixed-`k` points).
    pub degraded: bool,
}

impl FrontierPoint {
    /// `self` dominates `other` on the frontier: at least as safe and
    /// at least as cheap, strictly better on one axis (analytic
    /// guarantees compared with a small tolerance).
    pub fn dominates(&self, other: &FrontierPoint) -> bool {
        const EPS: f64 = 1e-9;
        let no_worse = self.analytic + EPS >= other.analytic && self.memory <= other.memory + EPS;
        let strictly = self.analytic > other.analytic + EPS || self.memory + EPS < other.memory;
        no_worse && strictly
    }
}

/// Memory of a placement under the frontier's cost convention: task
/// size per replica, or one unit per replica on unsized instances.
pub fn placement_memory(instance: &Instance, placement: &Placement) -> f64 {
    let unsized_ = instance.total_size().get() == 0.0;
    instance
        .task_ids()
        .map(|t| {
            let cost = if unsized_ {
                1.0
            } else {
                instance.size(t).get()
            };
            placement.replicas(t) as f64 * cost
        })
        .sum()
}

/// Mean engine-measured task survival of a placement over `reps`
/// seeded horizon draws (crash scripts sampled from `hetero`, all
/// machines dying at `t = 0` so the draw matches the analytic model).
///
/// # Errors
/// Propagates engine errors.
pub fn engine_survival(
    instance: &Instance,
    placement: &Placement,
    hetero: &HeterogeneousFaultModel,
    reps: usize,
    seed: u64,
) -> Result<f64> {
    let real = Realization::exact(instance);
    let mut total = 0.0;
    for rep in 0..reps {
        let mut r = rng::rng(rng::child_seed(seed, rep as u64));
        let script = hetero.generate_at_zero(&mut r);
        let mut dispatcher = OrderedDispatcher::auto(instance.ids_by_estimate_desc(), placement);
        let report =
            ResilienceEngine::new(instance, placement, &real, &script)?.run(&mut dispatcher)?;
        total += report.metrics.survival_rate();
    }
    Ok(total / reps.max(1) as f64)
}

/// Measures the full frontier: fixed-`k` chained replication for each
/// `k` in `ks`, then `SurvivalPlacement` for each target in `targets`
/// (unbounded budget — the greedy still minimizes memory). All points
/// are measured under the *same* seeded scripts.
///
/// # Errors
/// Propagates placement, planning, and engine errors.
pub fn frontier(
    instance: &Instance,
    unc: Uncertainty,
    hetero: &HeterogeneousFaultModel,
    ks: &[usize],
    targets: &[f64],
    reps: usize,
    seed: u64,
) -> Result<Vec<FrontierPoint>> {
    let _span = rds_obs::span("reliability.frontier");
    let model: &ReliabilityModel = hetero.model();
    let mut points = Vec::with_capacity(ks.len() + targets.len());
    for &k in ks {
        let placement = ChainedReplication::new(k)?.place(instance, unc)?;
        points.push(FrontierPoint {
            label: format!("k={k}"),
            memory: placement_memory(instance, &placement),
            analytic: model.min_survival(&placement),
            measured: engine_survival(instance, &placement, hetero, reps, seed)?,
            max_replicas: placement.max_replicas(),
            recovery_cost: model.expected_recovery_cost(&placement),
            degraded: false,
        });
        if rds_obs::enabled() {
            rds_obs::global()
                .counter("reliability.frontier.fixed_k_points")
                .inc();
        }
    }
    for &target in targets {
        let plan = SurvivalPlacement::new(model.clone(), target)?.plan(instance)?;
        points.push(FrontierPoint {
            label: format!("S({target})"),
            memory: plan.memory,
            analytic: plan.min_survival(),
            measured: engine_survival(instance, &plan.placement, hetero, reps, seed)?,
            max_replicas: plan.placement.max_replicas(),
            recovery_cost: model.expected_recovery_cost(&plan.placement),
            degraded: plan.degraded,
        });
        if rds_obs::enabled() {
            rds_obs::global()
                .counter("reliability.frontier.survival_points")
                .inc();
        }
    }
    Ok(points)
}

/// For every fixed-`k` point (label `k=…`), the label of a survival
/// point that dominates it, if any. The acceptance bar for this
/// subsystem: on a heterogeneous cluster, reliability-aware placement
/// should dominate at least one uniform-`k` configuration.
pub fn dominance(points: &[FrontierPoint]) -> Vec<(String, Option<String>)> {
    let (fixed, survival): (Vec<_>, Vec<_>) =
        points.iter().partition(|p| p.label.starts_with("k="));
    fixed
        .iter()
        .map(|f| {
            let winner = survival
                .iter()
                .find(|s| s.dominates(f))
                .map(|s| s.label.clone());
            (f.label.clone(), winner)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately lopsided 6-machine cluster: zone 0 is flaky and
    /// outage-prone, zone 2 is solid.
    fn hetero() -> HeterogeneousFaultModel {
        let model = ReliabilityModel::new(
            vec![0.35, 0.3, 0.15, 0.12, 0.03, 0.02],
            vec![0, 0, 1, 1, 2, 2],
            vec![0.08, 0.02, 0.005],
        )
        .unwrap();
        HeterogeneousFaultModel::new(model, 40.0).unwrap()
    }

    fn instance() -> Instance {
        let est: Vec<f64> = (0..18).map(|i| 1.0 + (i % 5) as f64).collect();
        Instance::from_estimates(&est, 6).unwrap()
    }

    #[test]
    fn frontier_is_deterministic_and_complete() {
        let inst = instance();
        let h = hetero();
        let a = frontier(
            &inst,
            Uncertainty::of(1.5),
            &h,
            &[1, 2, 3],
            &[0.9, 0.99],
            8,
            7,
        )
        .unwrap();
        let b = frontier(
            &inst,
            Uncertainty::of(1.5),
            &h,
            &[1, 2, 3],
            &[0.9, 0.99],
            8,
            7,
        )
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        // Fixed-k memory is k per task on unsized instances.
        assert_eq!(a[0].memory, 18.0);
        assert_eq!(a[1].memory, 36.0);
        // More replicas, better guarantee.
        assert!(a[1].analytic > a[0].analytic);
        // … but a bigger expected re-staging bill after faults.
        assert!(a[1].recovery_cost > a[0].recovery_cost);
        assert!(a.iter().all(|p| p.recovery_cost > 0.0));
    }

    #[test]
    fn survival_points_dominate_some_fixed_k() {
        let inst = instance();
        let h = hetero();
        let points = frontier(
            &inst,
            Uncertainty::of(1.5),
            &h,
            &[1, 2, 3],
            &[0.9, 0.97, 0.995],
            6,
            11,
        )
        .unwrap();
        let verdicts = dominance(&points);
        assert!(
            verdicts.iter().any(|(_, w)| w.is_some()),
            "no fixed-k point dominated: {points:?}"
        );
    }

    #[test]
    fn engine_measurement_tracks_the_analytic_guarantee() {
        let inst = instance();
        let h = hetero();
        let model = h.model().clone();
        let plan = SurvivalPlacement::new(model, 0.99)
            .unwrap()
            .plan(&inst)
            .unwrap();
        assert!(plan.feasible);
        let measured = engine_survival(&inst, &plan.placement, &h, 200, 3).unwrap();
        // Mean task survival ≥ min per-task survival, up to MC noise.
        assert!(
            measured >= plan.min_survival() - 0.03,
            "measured {measured} far below analytic {}",
            plan.min_survival()
        );
    }
}
