//! The standard resilience-evaluation suite and campaign runner.
//!
//! One place defines *which* placement strategies a fault campaign
//! compares and *how* each is dispatched online, so the `rds resilience`
//! CLI command and the `fault_tolerance` benchmark measure exactly the
//! same thing:
//!
//! - LPT-No Choice, dispatched from pinned per-machine queues (the
//!   no-replication baseline — stranded by any loaded-machine failure);
//! - Chained declustering with `k = 2` and `k = 3`;
//! - LS-Group with roughly three machines per group;
//! - LPT-No Restriction (full replication), the fault-tolerance ideal.
//!
//! [`run_campaign`] executes every policy against a shared set of
//! trials (realization + fault script pairs), establishes each trial's
//! fault-free baseline through the same engine path, and aggregates
//! [`rds_sim::ResilienceMetrics`] into one row per policy.

use crate::ChainedReplication;
use rds_algs::{LptNoChoice, LptNoRestriction, LsGroup, Strategy};
use rds_core::{Instance, MachineId, Placement, Realization, Result, Uncertainty};
use rds_sim::faults::{FaultScript, ResilienceEngine, Speculation};
use rds_sim::{Dispatcher, OrderedDispatcher, PinnedDispatcher};

/// One strategy under test: its placement plus how to dispatch it.
#[derive(Debug, Clone)]
pub struct ResiliencePolicy {
    /// Display name (the strategy's own name).
    pub name: String,
    /// The phase-1 placement.
    pub placement: Placement,
    /// For single-replica strategies, the planned task→machine pinning
    /// the dispatcher replays; replicated strategies dispatch online.
    pinned: Option<Vec<MachineId>>,
}

impl ResiliencePolicy {
    /// A fresh dispatcher for one run (dispatchers are stateful).
    pub fn dispatcher(&self, instance: &Instance) -> Box<dyn Dispatcher> {
        match &self.pinned {
            Some(machines) => Box::new(PinnedDispatcher::new(machines, instance.m())),
            None => Box::new(OrderedDispatcher::auto(
                instance.ids_by_estimate_desc(),
                &self.placement,
            )),
        }
    }
}

/// Builds the standard five-policy suite for an instance.
///
/// # Errors
/// Propagates placement/planning errors from the strategies.
pub fn standard_suite(instance: &Instance, unc: Uncertainty) -> Result<Vec<ResiliencePolicy>> {
    // `k` is the number of groups: aim for ~3 machines per group so an
    // in-group failure leaves surviving holders.
    let groups = (instance.m() / 3).max(1);
    let strategies: Vec<Box<dyn Strategy>> = vec![
        Box::new(LptNoChoice),
        Box::new(ChainedReplication::new(2)?),
        Box::new(ChainedReplication::new(3)?),
        Box::new(LsGroup::new_relaxed(groups)),
        Box::new(LptNoRestriction),
    ];
    strategies
        .into_iter()
        .map(|s| {
            let placement = s.place(instance, unc)?;
            let pinned = if placement.max_replicas() == 1 {
                let a = s.execute(instance, &placement, &Realization::exact(instance))?;
                Some(a.machines().to_vec())
            } else {
                None
            };
            Ok(ResiliencePolicy {
                name: s.name(),
                placement,
                pinned,
            })
        })
        .collect()
}

/// Aggregated campaign results for one policy.
#[derive(Debug, Clone)]
pub struct CampaignRow {
    /// Policy name.
    pub name: String,
    /// Maximum replicas per task under this placement.
    pub replicas: usize,
    /// Number of trials executed.
    pub runs: usize,
    /// Trials in which every task completed.
    pub completed_runs: usize,
    /// Mean per-trial task survival rate.
    pub mean_survival: f64,
    /// Mean restarts per trial.
    pub mean_restarts: f64,
    /// Mean machine rejoins per trial.
    pub mean_rejoins: f64,
    /// Mean speculative backups launched per trial.
    pub mean_spec_started: f64,
    /// Mean speculative wins per trial.
    pub mean_spec_wins: f64,
    /// Mean wasted work (killed + cancelled attempts) per trial.
    pub mean_wasted: f64,
    /// Mean makespan degradation versus the trial's fault-free baseline,
    /// over fully-completed trials (`NaN` when none completed).
    pub mean_degradation: f64,
    /// Worst observed degradation over fully-completed trials.
    pub worst_degradation: f64,
}

/// Per-trial measurements of one policy under one (realization, fault
/// script) pair — the unit the campaign journal stores and aggregates
/// are recomputed from.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialMeasurement {
    /// `true` when every task completed.
    pub completed: bool,
    /// Fraction of tasks completed.
    pub survival: f64,
    /// Attempts killed by faults and restarted.
    pub restarts: f64,
    /// Machines that rejoined after outages.
    pub rejoins: f64,
    /// Speculative backups launched.
    pub spec_started: f64,
    /// Speculative backups that won.
    pub spec_wins: f64,
    /// Attempts cancelled (speculation losers).
    pub cancelled: f64,
    /// Wall-clock work thrown away.
    pub wasted: f64,
    /// Achieved makespan of completed work.
    pub makespan: f64,
    /// Fault-free baseline makespan of the same trial.
    pub baseline: f64,
}

impl TrialMeasurement {
    /// Makespan degradation versus the fault-free baseline, mirroring
    /// [`rds_sim::ResilienceMetrics::degradation`]'s zero-baseline
    /// convention.
    pub fn degradation(&self) -> f64 {
        if self.baseline == 0.0 {
            1.0
        } else {
            self.makespan / self.baseline
        }
    }
}

/// Runs one (policy, trial) pair: the fault-free baseline through the
/// identical engine path, then the faulty run.
///
/// This is the single execution path both [`run_campaign`] and the
/// resumable campaign runtime go through, so journaled replays aggregate
/// bit-identically to live runs.
///
/// # Errors
/// Propagates engine errors (dispatcher misbehaviour, invalid scripts,
/// invariant violations when validation is on).
pub fn run_trial(
    instance: &Instance,
    policy: &ResiliencePolicy,
    realization: &Realization,
    script: &FaultScript,
    speculation: Option<Speculation>,
) -> Result<TrialMeasurement> {
    let _span = rds_obs::span("resilience.trial");
    let empty = FaultScript::empty();
    let baseline = {
        let mut d = policy.dispatcher(instance);
        ResilienceEngine::new(instance, &policy.placement, realization, &empty)?
            .run(d.as_mut())?
            .metrics
            .makespan
    };
    let mut engine = ResilienceEngine::new(instance, &policy.placement, realization, script)?;
    if let Some(spec) = speculation {
        engine = engine.with_speculation(spec);
    }
    let mut d = policy.dispatcher(instance);
    let mut report = engine.run(d.as_mut())?;
    report.set_baseline(baseline);
    let m = report.metrics;
    Ok(TrialMeasurement {
        completed: report.outcome.is_completed(),
        survival: m.survival_rate(),
        restarts: m.restarts as f64,
        rejoins: m.rejoins as f64,
        spec_started: m.speculative_started as f64,
        spec_wins: m.speculative_wins as f64,
        cancelled: m.cancelled as f64,
        wasted: m.wasted_work.get(),
        makespan: m.makespan.get(),
        baseline: baseline.get(),
    })
}

/// Aggregates per-trial measurements (in trial order) into one row.
///
/// The summation order is the trial order, so aggregating a mix of
/// journaled and freshly-run trials reproduces an uninterrupted run
/// bit-for-bit.
pub fn aggregate_row(
    name: &str,
    replicas: usize,
    measurements: &[TrialMeasurement],
) -> CampaignRow {
    let mut row = CampaignRow {
        name: name.to_string(),
        replicas,
        runs: measurements.len(),
        completed_runs: 0,
        mean_survival: 0.0,
        mean_restarts: 0.0,
        mean_rejoins: 0.0,
        mean_spec_started: 0.0,
        mean_spec_wins: 0.0,
        mean_wasted: 0.0,
        mean_degradation: 0.0,
        worst_degradation: 0.0,
    };
    let mut degradations = Vec::new();
    for m in measurements {
        row.mean_survival += m.survival;
        row.mean_restarts += m.restarts;
        row.mean_rejoins += m.rejoins;
        row.mean_spec_started += m.spec_started;
        row.mean_spec_wins += m.spec_wins;
        row.mean_wasted += m.wasted;
        if m.completed {
            row.completed_runs += 1;
            degradations.push(m.degradation());
        }
    }
    let runs = row.runs.max(1) as f64;
    row.mean_survival /= runs;
    row.mean_restarts /= runs;
    row.mean_rejoins /= runs;
    row.mean_spec_started /= runs;
    row.mean_spec_wins /= runs;
    row.mean_wasted /= runs;
    row.mean_degradation = if degradations.is_empty() {
        f64::NAN
    } else {
        degradations.iter().sum::<f64>() / degradations.len() as f64
    };
    row.worst_degradation = degradations.iter().copied().fold(f64::NAN, f64::max);
    row
}

/// Runs every policy against every trial and aggregates per policy.
///
/// Each trial supplies a realization and a fault script; the fault-free
/// baseline is re-established per (policy, trial) through the identical
/// engine path, so a zero-fault campaign reports degradation exactly 1.
///
/// This is the fail-fast path: the first engine error aborts the whole
/// campaign. The crash-safe runtime in [`crate::campaign`] wraps the same
/// [`run_trial`] with journaling, watchdogs, and quarantine.
///
/// # Errors
/// Propagates engine errors (dispatcher misbehaviour, invalid scripts).
pub fn run_campaign(
    instance: &Instance,
    suite: &[ResiliencePolicy],
    trials: &[(Realization, FaultScript)],
    speculation: Option<Speculation>,
) -> Result<Vec<CampaignRow>> {
    let mut rows = Vec::with_capacity(suite.len());
    for policy in suite {
        let measurements = trials
            .iter()
            .map(|(real, script)| run_trial(instance, policy, real, script, speculation))
            .collect::<Result<Vec<_>>>()?;
        rows.push(aggregate_row(
            &policy.name,
            policy.placement.max_replicas(),
            &measurements,
        ));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_core::Time;
    use rds_sim::faults::FaultEvent;

    fn setup() -> (Instance, Uncertainty) {
        let est: Vec<f64> = (0..24).map(|i| 1.0 + (i % 7) as f64).collect();
        (
            Instance::from_estimates(&est, 6).unwrap(),
            Uncertainty::of(1.5),
        )
    }

    #[test]
    fn suite_has_five_policies_with_expected_replication() {
        let (inst, unc) = setup();
        let suite = standard_suite(&inst, unc).unwrap();
        assert_eq!(suite.len(), 5);
        assert_eq!(suite[0].placement.max_replicas(), 1);
        assert_eq!(suite[1].placement.max_replicas(), 2);
        assert_eq!(suite[2].placement.max_replicas(), 3);
        assert_eq!(suite[4].placement.max_replicas(), inst.m());
    }

    #[test]
    fn zero_fault_campaign_has_degradation_exactly_one() {
        let (inst, unc) = setup();
        let suite = standard_suite(&inst, unc).unwrap();
        let trials = vec![(Realization::exact(&inst), FaultScript::empty())];
        let rows = run_campaign(&inst, &suite, &trials, None).unwrap();
        for row in &rows {
            assert_eq!(row.completed_runs, row.runs, "{}", row.name);
            assert_eq!(row.mean_survival, 1.0);
            assert_eq!(row.mean_degradation, 1.0, "{}", row.name);
            assert_eq!(row.worst_degradation, 1.0, "{}", row.name);
        }
    }

    #[test]
    fn crash_campaign_separates_pinned_from_replicated() {
        let (inst, unc) = setup();
        let suite = standard_suite(&inst, unc).unwrap();
        // Crash the two most loaded machines early: pinning strands
        // their tasks, full replication shrugs it off.
        let script = FaultScript::new(vec![
            FaultEvent::Crash {
                machine: MachineId::new(0),
                at: Time::of(0.5),
            },
            FaultEvent::Crash {
                machine: MachineId::new(1),
                at: Time::of(1.0),
            },
        ]);
        let trials = vec![(Realization::exact(&inst), script)];
        let rows = run_campaign(&inst, &suite, &trials, None).unwrap();
        let pinned = &rows[0];
        let full = &rows[4];
        assert!(pinned.completed_runs < pinned.runs);
        assert!(pinned.mean_survival < 1.0);
        assert_eq!(full.completed_runs, full.runs);
        assert_eq!(full.mean_survival, 1.0);
        assert!(full.mean_degradation >= 1.0);
    }
}
