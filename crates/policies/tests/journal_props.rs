//! Property tests on the crash-safe campaign journal: resuming from
//! *any* journal prefix — including one ending in a torn partial line —
//! reproduces the uninterrupted aggregates bit-for-bit, and leaves the
//! journal itself complete and parseable afterwards.

use proptest::prelude::*;
use rds_core::{Instance, MachineId, Time, Uncertainty};
use rds_par::journal::{CampaignMeta, Journal};
use rds_policies::standard_suite;
use rds_policies::{run_campaign_resumable, CampaignConfig, CampaignRow, Trial};
use rds_sim::faults::{FaultEvent, FaultScript};
use rds_workloads::{realize::RealizationModel, rng};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Unique temp path per proptest case (cases run in one process).
static CASE: AtomicUsize = AtomicUsize::new(0);

fn temp_path(tag: &str) -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "rds-journal-props-{}-{tag}-{case}.journal",
        std::process::id()
    ))
}

fn rows_bitwise_equal(a: &[CampaignRow], b: &[CampaignRow]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.runs, y.runs);
        assert_eq!(x.completed_runs, y.completed_runs);
        for (u, v) in [
            (x.mean_survival, y.mean_survival),
            (x.mean_restarts, y.mean_restarts),
            (x.mean_rejoins, y.mean_rejoins),
            (x.mean_spec_started, y.mean_spec_started),
            (x.mean_spec_wins, y.mean_spec_wins),
            (x.mean_wasted, y.mean_wasted),
            (x.mean_degradation, y.mean_degradation),
            (x.worst_degradation, y.worst_degradation),
        ] {
            assert_eq!(u.to_bits(), v.to_bits(), "{} diverged on resume", x.name);
        }
    }
}

/// Builds a small random campaign: instance, five-policy suite, and two
/// trials (one fault-free, one with a seed-derived crash).
fn build_campaign(
    est: &[f64],
    m: usize,
    alpha: f64,
    seed: u64,
) -> (Instance, Vec<rds_policies::ResiliencePolicy>, Vec<Trial>) {
    let inst = Instance::from_estimates(est, m).unwrap();
    let unc = Uncertainty::of(alpha);
    let suite = standard_suite(&inst, unc).unwrap();
    let horizon = inst.total_estimate().get() / m as f64;
    let trials = (0..2u64)
        .map(|t| {
            let trial_seed = rng::child_seed(seed, t);
            let mut r = rng::rng(trial_seed);
            let real = RealizationModel::UniformFactor
                .realize(&inst, unc, &mut r)
                .unwrap();
            let script = if t == 0 {
                FaultScript::empty()
            } else {
                FaultScript::new(vec![FaultEvent::Crash {
                    machine: MachineId::new((seed % m as u64) as usize),
                    at: Time::of(0.1 + horizon * 0.4),
                }])
            };
            Trial {
                seed: trial_seed,
                realization: real,
                script,
            }
        })
        .collect();
    (inst, suite, trials)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_prefix_resume_is_bit_identical(
        est in prop::collection::vec(0.5f64..10.0, 6..16),
        m in 3usize..6,
        alpha in 1.1f64..2.0,
        seed in any::<u64>(),
        keep_sel in any::<u64>(),
        garbage in prop::collection::vec(33u8..126, 0..24),
    ) {
        let (inst, suite, trials) = build_campaign(&est, m, alpha, seed);
        let total = suite.len() * trials.len();

        let full_path = temp_path("full");
        let mut config = CampaignConfig::new("props", seed, format!("m={m} n={}", est.len()));
        config.journal = Some(full_path.clone());
        let full = run_campaign_resumable(&inst, &suite, &trials, &config).unwrap();

        // Simulate a crash at a random point: keep the meta line plus a
        // random number of trial lines, then a torn partial write (no
        // trailing newline) of printable garbage.
        let text = std::fs::read_to_string(&full_path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        prop_assert_eq!(lines.len(), 1 + total);
        let keep = 1 + (keep_sel as usize % lines.len());
        let mut prefix: String = lines[..keep].join("\n");
        prefix.push('\n');
        let mut bytes = prefix.into_bytes();
        bytes.extend_from_slice(&garbage);

        let torn_path = temp_path("torn");
        std::fs::write(&torn_path, &bytes).unwrap();
        let mut resume_config = config.clone();
        resume_config.journal = Some(torn_path.clone());
        resume_config.resume = true;
        let resumed = run_campaign_resumable(&inst, &suite, &trials, &resume_config).unwrap();

        prop_assert_eq!(resumed.skipped, keep - 1);
        prop_assert_eq!(resumed.executed, total - (keep - 1));
        rows_bitwise_equal(&full.rows, &resumed.rows);

        // The resumed journal healed the torn tail: a second resume
        // parses every record and finds the campaign complete.
        let meta = CampaignMeta {
            campaign: config.campaign.clone(),
            digest: inst.digest(),
            seed,
            params: config.params.clone(),
        };
        let (_, records) = Journal::resume(&torn_path, &meta).unwrap();
        prop_assert_eq!(records.len(), total);

        std::fs::remove_file(&full_path).ok();
        std::fs::remove_file(&torn_path).ok();
    }

    #[test]
    fn resume_rejects_a_journal_from_a_different_campaign(
        est in prop::collection::vec(0.5f64..10.0, 6..12),
        m in 3usize..5,
        seed in any::<u64>(),
    ) {
        let (inst, suite, trials) = build_campaign(&est, m, 1.5, seed);
        let path = temp_path("mismatch");
        let mut config = CampaignConfig::new("props", seed, "a=1".to_string());
        config.journal = Some(path.clone());
        run_campaign_resumable(&inst, &suite, &trials, &config).unwrap();

        // Same journal, different declared parameters: the runtime must
        // refuse rather than silently mix incompatible campaigns.
        let mut other = config.clone();
        other.params = "a=2".to_string();
        other.resume = true;
        prop_assert!(run_campaign_resumable(&inst, &suite, &trials, &other).is_err());
        std::fs::remove_file(&path).ok();
    }
}
