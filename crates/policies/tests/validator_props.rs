//! Property tests on the schedule invariant validator: every schedule
//! the five standard policies produce passes the full check set on
//! random instances, and deliberately corrupted schedules trip the
//! matching invariant class.

use proptest::prelude::*;
use rds_core::{Instance, Realization, Schedule, Time, Uncertainty};
use rds_policies::standard_suite;
use rds_sim::faults::{FaultScript, ResilienceEngine};
use rds_sim::{validate_schedule, Checks, Violation};
use rds_workloads::{realize::RealizationModel, rng};

/// Runs one policy fault-free and returns its executed schedule.
fn run_policy(
    inst: &Instance,
    policy: &rds_policies::ResiliencePolicy,
    real: &Realization,
) -> Schedule {
    let empty = FaultScript::empty();
    let mut d = policy.dispatcher(inst);
    ResilienceEngine::new(inst, &policy.placement, real, &empty)
        .unwrap()
        .run(d.as_mut())
        .unwrap()
        .schedule
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn standard_policies_satisfy_every_invariant(
        est in prop::collection::vec(0.5f64..10.0, 4..20),
        m in 3usize..6,
        alpha in 1.05f64..2.0,
        seed in any::<u64>(),
    ) {
        let inst = Instance::from_estimates(&est, m).unwrap();
        let unc = Uncertainty::of(alpha);
        let mut r = rng::rng(seed);
        let real = RealizationModel::UniformFactor.realize(&inst, unc, &mut r).unwrap();
        for policy in standard_suite(&inst, unc).unwrap() {
            let schedule = run_policy(&inst, &policy, &real);
            let checks = Checks::full(unc, policy.placement.max_replicas());
            let violations =
                validate_schedule(&inst, &policy.placement, &real, &schedule, &checks);
            prop_assert!(
                violations.is_empty(),
                "{}: {:?}",
                policy.name,
                violations
            );
        }
    }

    #[test]
    fn mutated_schedules_trip_the_matching_invariant(
        est in prop::collection::vec(0.5f64..10.0, 8..20),
        m in 3usize..5,
        seed in any::<u64>(),
    ) {
        let inst = Instance::from_estimates(&est, m).unwrap();
        let unc = Uncertainty::of(1.5);
        let mut r = rng::rng(seed);
        let real = RealizationModel::UniformFactor.realize(&inst, unc, &mut r).unwrap();
        // The pinned single-replica policy: every slot sits on the one
        // machine its task is placed on, so any machine move is illegal.
        let suite = standard_suite(&inst, unc).unwrap();
        let policy = &suite[0];
        prop_assert_eq!(policy.placement.max_replicas(), 1);
        let schedule = run_policy(&inst, policy, &real);
        prop_assert!(validate_schedule(
            &inst, &policy.placement, &real, &schedule, &Checks::engine()
        )
        .is_empty());

        // n > m guarantees some machine runs at least two slots.
        let slots = schedule.all_slots().to_vec();
        let busy = (0..m).find(|&mi| slots[mi].len() >= 2).unwrap();

        // Mutation 1 — overlap: slide a slot's start onto its
        // predecessor's span (keeping the end, so only ordering breaks
        // under structural checks).
        let mut overlapping = slots.clone();
        overlapping[busy][1].start = overlapping[busy][0].start;
        let bad = Schedule::from_slots(overlapping);
        let vs = validate_schedule(&inst, &policy.placement, &real, &bad, &Checks::structural());
        prop_assert!(
            vs.iter().any(|v| v.invariant() == "overlap"),
            "expected overlap, got {:?}",
            vs
        );

        // Mutation 2 — off-placement: teleport one slot to a machine
        // outside its task's replica set M_j.
        let mut moved = slots.clone();
        let slot = moved[busy].remove(0);
        moved[(busy + 1) % m].push(slot);
        let bad = Schedule::from_slots(moved);
        let vs = validate_schedule(&inst, &policy.placement, &real, &bad, &Checks::structural());
        prop_assert!(
            vs.iter().any(|v| matches!(
                v,
                Violation::OffPlacement { task, .. } if *task == slot.task.index()
            )),
            "expected off-placement, got {:?}",
            vs
        );

        // Mutation 3 — duration dishonesty: stretch one slot beyond the
        // task's realized time.
        let mut stretched = slots.clone();
        stretched[busy][0].end += Time::ONE;
        let bad = Schedule::from_slots(stretched);
        let vs = validate_schedule(&inst, &policy.placement, &real, &bad, &Checks::engine());
        prop_assert!(
            vs.iter().any(|v| v.invariant() == "duration"),
            "expected duration mismatch, got {:?}",
            vs
        );

        // Mutation 4 — budget: the same clean schedule fails once the
        // declared replication budget drops below the placement's.
        let mut checks = Checks::structural();
        checks.budget = Some(0);
        let vs = validate_schedule(&inst, &policy.placement, &real, &schedule, &checks);
        prop_assert!(vs.iter().any(|v| v.invariant() == "replication-budget"));
    }
}
