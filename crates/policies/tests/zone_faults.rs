//! Correlated-failure edge cases: whole-zone outages against
//! zone-confined and zone-spread placements.
//!
//! Two guarantees under test. First, losing an entire zone that holds
//! *every* replica of some task must end in a graceful `Partial`
//! outcome — the engine reports the stranded tasks instead of
//! panicking or spinning. Second, a placement that spreads every task
//! across at least two zones provably survives the total loss of any
//! single zone, and the engine confirms it script by script.

use rds_algs::survival::SurvivalPlacement;
use rds_core::{Instance, MachineId, MachineSet, Placement, Realization, ReliabilityModel, Time};
use rds_sim::faults::{FaultEvent, FaultScript, ResilienceEngine};
use rds_sim::OrderedDispatcher;

/// 6 machines in 3 zones of 2 (zones contiguous: {0,1}, {2,3}, {4,5}).
fn model() -> ReliabilityModel {
    ReliabilityModel::new(
        vec![0.2, 0.25, 0.15, 0.1, 0.05, 0.1],
        vec![0, 0, 1, 1, 2, 2],
        vec![0.1, 0.05, 0.02],
    )
    .unwrap()
}

/// A script that crashes every machine of `zone` at `t = 0`.
fn zone_outage(model: &ReliabilityModel, zone: usize) -> FaultScript {
    FaultScript::new(
        model
            .zone_members(zone)
            .map(|machine| FaultEvent::Crash {
                machine,
                at: Time::ZERO,
            })
            .collect(),
    )
}

fn run(
    instance: &Instance,
    placement: &Placement,
    script: &FaultScript,
) -> rds_sim::faults::ResilienceReport {
    let real = Realization::exact(instance);
    let mut dispatcher = OrderedDispatcher::auto(instance.ids_by_estimate_desc(), placement);
    ResilienceEngine::new(instance, placement, &real, script)
        .unwrap()
        .run(&mut dispatcher)
        .unwrap()
}

#[test]
fn whole_zone_outage_strands_zone_confined_tasks_gracefully() {
    let model = model();
    let inst = Instance::from_estimates(&[3.0, 2.0, 2.0, 1.0], 6).unwrap();
    // Task 0 confined entirely to zone 0; the rest live in zone 2.
    let placement = Placement::new(
        &inst,
        vec![
            MachineSet::Span { start: 0, end: 2 },
            MachineSet::One(MachineId::new(4)),
            MachineSet::One(MachineId::new(5)),
            MachineSet::Span { start: 4, end: 6 },
        ],
    )
    .unwrap();
    assert!(!model.survives_single_zone_loss(placement.set(rds_core::TaskId::new(0))));

    let report = run(&inst, &placement, &zone_outage(&model, 0));
    // Graceful partial outcome: exactly the confined task is stranded,
    // everything else completed, and the metrics agree.
    assert!(!report.outcome.is_completed());
    assert_eq!(report.outcome.unfinished_count(), 1);
    assert_eq!(report.metrics.completed, 3);
    assert!((report.metrics.survival_rate() - 0.75).abs() < 1e-12);
}

#[test]
fn zone_spread_placement_survives_any_single_zone_loss() {
    let model = model();
    let est: Vec<f64> = (0..12).map(|i| 1.0 + (i % 4) as f64).collect();
    let inst = Instance::from_estimates(&est, 6).unwrap();
    // A survival target high enough that every task must leave its
    // base zone (no single zone is reliable enough on its own).
    let plan = SurvivalPlacement::new(model.clone(), 0.995)
        .unwrap()
        .plan(&inst)
        .unwrap();
    assert!(plan.feasible);

    // Analytic guarantee: every task spans at least two zones …
    for task in inst.task_ids() {
        assert!(
            model.survives_single_zone_loss(plan.placement.set(task)),
            "task {task} confined to one zone"
        );
    }
    // … and the engine confirms: the total loss of ANY single zone
    // still completes every task.
    for zone in 0..model.zones() {
        let report = run(&inst, &plan.placement, &zone_outage(&model, zone));
        assert!(
            report.outcome.is_completed(),
            "zone {zone} outage stranded tasks"
        );
        assert_eq!(report.metrics.survival_rate(), 1.0);
    }
}

#[test]
fn losing_every_zone_is_still_graceful() {
    // The degenerate worst case: all machines dead at t = 0. Nothing
    // can run, but the engine must still terminate with a full list of
    // stranded tasks rather than panic.
    let inst = Instance::from_estimates(&[2.0, 1.0], 6).unwrap();
    let placement = Placement::everywhere(&inst);
    let all_down = FaultScript::new(
        (0..6)
            .map(|i| FaultEvent::Crash {
                machine: MachineId::new(i),
                at: Time::ZERO,
            })
            .collect(),
    );
    let report = run(&inst, &placement, &all_down);
    assert!(!report.outcome.is_completed());
    assert_eq!(report.outcome.unfinished_count(), 2);
    assert_eq!(report.metrics.survival_rate(), 0.0);
}
