//! Minimal CSV emission (RFC 4180 quoting) for experiment outputs.

use std::fmt::Write as _;

/// A CSV document builder.
#[derive(Debug, Clone, Default)]
pub struct Csv {
    out: String,
    columns: usize,
}

/// Quotes a field when it contains a comma, quote, or newline.
fn escape(field: &str) -> String {
    if field.contains(['"', ',', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

impl Csv {
    /// Starts a document with a header row.
    pub fn new<S: AsRef<str>>(headers: &[S]) -> Self {
        let mut csv = Csv {
            out: String::new(),
            columns: headers.len(),
        };
        csv.write_row(headers);
        csv
    }

    fn write_row<S: AsRef<str>>(&mut self, cells: &[S]) {
        let mut first = true;
        for c in cells {
            if !first {
                self.out.push(',');
            }
            first = false;
            let _ = write!(self.out, "{}", escape(c.as_ref()));
        }
        self.out.push('\n');
    }

    /// Appends a data row.
    ///
    /// # Panics
    /// Panics if the arity differs from the header count.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Self {
        assert_eq!(cells.len(), self.columns, "csv row arity");
        self.write_row(cells);
        self
    }

    /// Appends a row of numbers formatted with `prec` decimals.
    pub fn row_f64(&mut self, cells: &[f64], prec: usize) -> &mut Self {
        let strings: Vec<String> = cells.iter().map(|x| format!("{x:.prec$}")).collect();
        self.row(&strings)
    }

    /// The document text.
    pub fn finish(&self) -> &str {
        &self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_rows() {
        let mut c = Csv::new(&["a", "b"]);
        c.row(&["1", "2"]);
        assert_eq!(c.finish(), "a,b\n1,2\n");
    }

    #[test]
    fn quoting() {
        let mut c = Csv::new(&["x"]);
        c.row(&["has,comma"]);
        c.row(&["has\"quote"]);
        c.row(&["has\nnewline"]);
        let lines: Vec<&str> = c.finish().split('\n').collect();
        assert_eq!(lines[1], "\"has,comma\"");
        assert_eq!(lines[2], "\"has\"\"quote\"");
        assert_eq!(lines[3], "\"has");
    }

    #[test]
    fn float_rows() {
        let mut c = Csv::new(&["a", "b"]);
        c.row_f64(&[1.23456, 2.0], 3);
        assert_eq!(c.finish(), "a,b\n1.235,2.000\n");
    }

    #[test]
    #[should_panic(expected = "csv row arity")]
    fn arity() {
        Csv::new(&["a", "b"]).row(&["1"]);
    }
}
