//! ASCII Gantt charts of executed schedules (the paper's Figures 2, 4, 5
//! are exactly such drawings), with optional fault-timeline overlays.

use crate::marks::{Mark, MarkKind};
use rds_core::{MachineId, Schedule, Time};

/// Renders a schedule as one row per machine, time flowing left to
/// right, each slot drawn as the task id's glyph repeated over its span.
///
/// Tasks are labelled `0-9` then `a-z` then `A-Z`, cycling; idle time is
/// `·`. `width` is the number of character cells for the full makespan.
///
/// # Panics
/// Panics unless `width >= 10`.
pub fn render(schedule: &Schedule, width: usize) -> String {
    render_with_marks(schedule, width, &[])
}

/// Like [`render`], additionally overlaying fault-timeline [`Mark`]s on
/// the affected machine rows (the mark's glyph overwrites the cell at
/// its time), followed by a legend line for the kinds present.
///
/// Marks on machines outside the schedule are ignored; marks after the
/// makespan clamp to the last cell.
///
/// A `width` below the 10-cell layout minimum is clamped up to it.
pub fn render_with_marks(schedule: &Schedule, width: usize, marks: &[Mark]) -> String {
    let width = width.max(10);
    let makespan = schedule.makespan();
    let mut out = String::new();
    if makespan.is_zero() {
        out.push_str("(empty schedule)\n");
        return out;
    }
    let scale = |t: Time| -> usize { ((t.get() / makespan.get()) * width as f64).round() as usize };
    let marks: Vec<&Mark> = marks
        .iter()
        .filter(|mk| mk.machine.index() < schedule.m())
        .collect();
    for (i, slots) in schedule.all_slots().iter().enumerate() {
        out.push_str(&format!("p{i:<3}|"));
        let mut row = vec!['\u{00B7}'; width];
        for slot in slots {
            let a = scale(slot.start).min(width - 1);
            let b = scale(slot.end).clamp(a + 1, width);
            let glyph = task_glyph(slot.task.index());
            for cell in &mut row[a..b] {
                *cell = glyph;
            }
        }
        for mark in marks.iter().filter(|mk| mk.machine.index() == i) {
            let cell = scale(mark.time).min(width - 1);
            row[cell] = mark.kind.glyph();
        }
        out.extend(row.iter());
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "     0{}{}\n",
        " ".repeat(width.saturating_sub(makespan_label_len(makespan) + 1)),
        format_time(makespan),
    ));
    if !marks.is_empty() {
        let mut legend = String::from("    ");
        for kind in MarkKind::all() {
            if marks.iter().any(|mk| mk.kind == kind) {
                legend.push_str(&format!(" {} {}", kind.glyph(), kind.label()));
            }
        }
        legend.push('\n');
        out.push_str(&legend);
    }
    let _ = MachineId::new(0);
    out
}

fn task_glyph(index: usize) -> char {
    const GLYPHS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    GLYPHS[index % GLYPHS.len()] as char
}

fn format_time(t: Time) -> String {
    let v = t.get();
    if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

fn makespan_label_len(t: Time) -> usize {
    format_time(t).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_core::{Instance, Realization, Slot, TaskId};

    #[test]
    fn renders_rows_and_glyphs() {
        let inst = Instance::from_estimates(&[2.0, 2.0, 4.0], 2).unwrap();
        let real = Realization::exact(&inst);
        let order = vec![vec![TaskId::new(0), TaskId::new(1)], vec![TaskId::new(2)]];
        let s = Schedule::sequence(&order, &real);
        let text = render(&s, 40);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("p0"));
        assert!(lines[1].starts_with("p1"));
        assert!(lines[0].contains('0') && lines[0].contains('1'));
        assert!(lines[1].contains('2'));
        // Machine 1 is busy the whole horizon: no idle dots between pipes.
        let row1: String = lines[1]
            .trim_start_matches(|c: char| c != '|')
            .trim_matches('|')
            .to_string();
        assert!(!row1.contains('\u{00B7}'), "row1 = {row1}");
        // Axis shows the makespan.
        assert!(lines[2].contains('4'));
    }

    #[test]
    fn idle_time_is_dotted() {
        let inst = Instance::from_estimates(&[1.0, 4.0], 2).unwrap();
        let real = Realization::exact(&inst);
        let s = Schedule::from_slots(vec![
            vec![Slot {
                task: TaskId::new(0),
                start: rds_core::Time::ZERO,
                end: rds_core::Time::ONE,
            }],
            vec![Slot {
                task: TaskId::new(1),
                start: rds_core::Time::ZERO,
                end: rds_core::Time::of(4.0),
            }],
        ]);
        let _ = real;
        let text = render(&s, 40);
        assert!(text.lines().next().unwrap().contains('\u{00B7}'));
    }

    #[test]
    fn empty_schedule() {
        let s = Schedule::from_slots(vec![vec![], vec![]]);
        assert!(render(&s, 20).contains("empty"));
    }

    #[test]
    fn marks_overlay_the_affected_row_and_add_a_legend() {
        let inst = Instance::from_estimates(&[2.0, 2.0, 4.0], 2).unwrap();
        let real = Realization::exact(&inst);
        let order = vec![vec![TaskId::new(0), TaskId::new(1)], vec![TaskId::new(2)]];
        let s = Schedule::sequence(&order, &real);
        let marks = vec![
            crate::marks::Mark::new(
                rds_core::Time::of(2.0),
                MachineId::new(0),
                crate::marks::MarkKind::Failure,
            ),
            crate::marks::Mark::new(
                rds_core::Time::of(3.0),
                MachineId::new(1),
                crate::marks::MarkKind::SpeculativeStart,
            ),
            // Out-of-range machine: silently ignored.
            crate::marks::Mark::new(
                rds_core::Time::of(1.0),
                MachineId::new(9),
                crate::marks::MarkKind::Recovery,
            ),
        ];
        let text = render_with_marks(&s, 40, &marks);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains('X'), "row0 = {}", lines[0]);
        assert!(lines[1].contains('!'), "row1 = {}", lines[1]);
        let legend = lines.last().unwrap();
        assert!(legend.contains("X failure"));
        assert!(legend.contains("! spec-start"));
        // Recovery mark was dropped, so it must not reach the legend.
        assert!(!legend.contains("recovery"));
        // Plain render is unchanged by the mark machinery.
        assert!(!render(&s, 40).contains('X'));
    }

    #[test]
    fn marks_past_the_makespan_clamp_to_the_last_cell() {
        let inst = Instance::from_estimates(&[2.0], 1).unwrap();
        let real = Realization::exact(&inst);
        let s = Schedule::sequence(&[vec![TaskId::new(0)]], &real);
        let marks = vec![crate::marks::Mark::new(
            rds_core::Time::of(99.0),
            MachineId::new(0),
            crate::marks::MarkKind::Cancelled,
        )];
        let text = render_with_marks(&s, 20, &marks);
        let row = text.lines().next().unwrap();
        // Last cell before the closing pipe carries the glyph.
        assert!(row.ends_with("x|"), "row = {row}");
    }

    #[test]
    fn glyphs_cycle() {
        assert_eq!(task_glyph(0), '0');
        assert_eq!(task_glyph(10), 'a');
        assert_eq!(task_glyph(36), 'A');
        assert_eq!(task_glyph(62), '0');
    }
}
