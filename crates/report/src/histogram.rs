//! ASCII histograms for makespan/ratio distributions.

/// A fixed-bin histogram over a closed range.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    /// Observations below `lo` / above `hi`.
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi]`.
    ///
    /// # Panics
    /// Panics unless `lo < hi` and `bins >= 1`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi && bins >= 1, "bad histogram shape");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Builds a histogram spanning the data's own range.
    ///
    /// # Panics
    /// Panics if `values` is empty.
    pub fn of(values: &[f64], bins: usize) -> Self {
        assert!(!values.is_empty(), "no data");
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let hi = if hi > lo { hi } else { lo + 1.0 };
        let mut h = Self::new(lo, hi, bins);
        for &v in values {
            h.push(v);
        }
        h
    }

    /// Records an observation.
    pub fn push(&mut self, v: f64) {
        debug_assert!(!v.is_nan());
        if v < self.lo {
            self.underflow += 1;
        } else if v > self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((v - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations recorded (including under/overflow).
    pub fn count(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Renders horizontal bars, `width` characters for the fullest bin.
    pub fn render(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        let mut out = String::new();
        if self.underflow > 0 {
            out.push_str(&format!("  < {:>9.3} | {}\n", self.lo, self.underflow));
        }
        for (i, &c) in self.bins.iter().enumerate() {
            let a = self.lo + w * i as f64;
            let bar = "#".repeat((c as usize * width) / max as usize);
            out.push_str(&format!("{a:>12.3} | {bar} {c}\n"));
        }
        if self.overflow > 0 {
            out.push_str(&format!("  > {:>9.3} | {}\n", self.hi, self.overflow));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_the_range() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in [0.0, 1.9, 2.0, 5.5, 9.99, 10.0] {
            h.push(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.bins(), &[2, 1, 1, 0, 2]);
    }

    #[test]
    fn under_and_overflow_tracked() {
        let mut h = Histogram::new(1.0, 2.0, 2);
        h.push(0.5);
        h.push(3.0);
        h.push(1.5);
        assert_eq!(h.count(), 3);
        let text = h.render(20);
        assert!(text.contains('<'));
        assert!(text.contains('>'));
    }

    #[test]
    fn of_spans_data() {
        let h = Histogram::of(&[1.0, 2.0, 3.0, 4.0], 4);
        assert_eq!(h.count(), 4);
        assert_eq!(h.bins().iter().sum::<u64>(), 4);
    }

    #[test]
    fn constant_data_does_not_panic() {
        let h = Histogram::of(&[2.0, 2.0], 3);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn render_scales_bars() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        for _ in 0..10 {
            h.push(0.5);
        }
        h.push(1.5);
        let text = h.render(10);
        let lines: Vec<&str> = text.lines().collect();
        let hashes = |s: &str| s.chars().filter(|&c| c == '#').count();
        assert_eq!(hashes(lines[0]), 10);
        assert_eq!(hashes(lines[1]), 1);
    }

    #[test]
    #[should_panic(expected = "bad histogram shape")]
    fn rejects_inverted_range() {
        Histogram::new(2.0, 1.0, 3);
    }
}
