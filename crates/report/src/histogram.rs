//! ASCII histograms for makespan/ratio distributions.

use rds_core::{Error, Result};

/// A fixed-bin histogram over a closed range.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    /// Observations below `lo` / above `hi`.
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi]`.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] unless `lo < hi` (finite) and
    /// `bins >= 1` — the bounds are usually user- or data-derived, so a
    /// bad shape must surface as a value, not a panic.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(Error::InvalidParameter {
                what: "histogram range needs finite lo < hi",
            });
        }
        if bins == 0 {
            return Err(Error::InvalidParameter {
                what: "histogram needs at least one bin",
            });
        }
        Ok(Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Builds a histogram spanning the data's own range.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] when `values` is empty or contains a
    /// non-finite observation, or when `bins == 0`.
    pub fn of(values: &[f64], bins: usize) -> Result<Self> {
        if values.is_empty() {
            return Err(Error::InvalidParameter {
                what: "histogram needs at least one observation",
            });
        }
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let hi = if hi > lo { hi } else { lo + 1.0 };
        let mut h = Self::new(lo, hi, bins)?;
        for &v in values {
            h.push(v);
        }
        Ok(h)
    }

    /// Records an observation.
    pub fn push(&mut self, v: f64) {
        debug_assert!(!v.is_nan());
        if v < self.lo {
            self.underflow += 1;
        } else if v > self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((v - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations recorded (including under/overflow).
    pub fn count(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Renders horizontal bars, `width` characters for the fullest bin.
    pub fn render(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        let mut out = String::new();
        if self.underflow > 0 {
            out.push_str(&format!("  < {:>9.3} | {}\n", self.lo, self.underflow));
        }
        for (i, &c) in self.bins.iter().enumerate() {
            let a = self.lo + w * i as f64;
            let bar = "#".repeat((c as usize * width) / max as usize);
            out.push_str(&format!("{a:>12.3} | {bar} {c}\n"));
        }
        if self.overflow > 0 {
            out.push_str(&format!("  > {:>9.3} | {}\n", self.hi, self.overflow));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_the_range() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        for v in [0.0, 1.9, 2.0, 5.5, 9.99, 10.0] {
            h.push(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.bins(), &[2, 1, 1, 0, 2]);
    }

    #[test]
    fn under_and_overflow_tracked() {
        let mut h = Histogram::new(1.0, 2.0, 2).unwrap();
        h.push(0.5);
        h.push(3.0);
        h.push(1.5);
        assert_eq!(h.count(), 3);
        let text = h.render(20);
        assert!(text.contains('<'));
        assert!(text.contains('>'));
    }

    #[test]
    fn of_spans_data() {
        let h = Histogram::of(&[1.0, 2.0, 3.0, 4.0], 4).unwrap();
        assert_eq!(h.count(), 4);
        assert_eq!(h.bins().iter().sum::<u64>(), 4);
    }

    #[test]
    fn constant_data_does_not_panic() {
        let h = Histogram::of(&[2.0, 2.0], 3).unwrap();
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn render_scales_bars() {
        let mut h = Histogram::new(0.0, 2.0, 2).unwrap();
        for _ in 0..10 {
            h.push(0.5);
        }
        h.push(1.5);
        let text = h.render(10);
        let lines: Vec<&str> = text.lines().collect();
        let hashes = |s: &str| s.chars().filter(|&c| c == '#').count();
        assert_eq!(hashes(lines[0]), 10);
        assert_eq!(hashes(lines[1]), 1);
    }

    #[test]
    fn bad_shapes_are_typed_errors_not_panics() {
        assert!(matches!(
            Histogram::new(2.0, 1.0, 3),
            Err(Error::InvalidParameter { .. })
        ));
        assert!(Histogram::new(f64::NAN, 1.0, 3).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(matches!(
            Histogram::of(&[], 4),
            Err(Error::InvalidParameter { .. })
        ));
    }
}
