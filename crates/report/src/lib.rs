//! Reporting utilities for the benchmark harness and examples.
//!
//! - [`stats`]: streaming [`stats::Summary`] (Welford, mergeable for
//!   parallel reductions) and quantile [`stats::Samples`];
//! - [`table`]: aligned markdown tables;
//! - [`csv`]: RFC-4180 CSV emission;
//! - [`plot`]: ASCII line/scatter charts (terminal renderings of the
//!   paper's figures);
//! - [`gantt`]: ASCII Gantt charts of executed schedules (Figures 2/4/5),
//!   with optional fault-timeline overlays;
//! - [`marks`]: fault-timeline [`marks::Mark`]s (failures, recoveries,
//!   degraded phases, speculation) the Gantt renderers draw on top;
//! - [`svg`]: dependency-free SVG renderings of the same charts and
//!   Gantts, for publication-style output;
//! - [`metrics`]: human-readable tables for [`rds_obs`] metric
//!   snapshots (the `--metrics` report);
//! - [`output`]: atomic (tempfile + fsync + rename) file emission so a
//!   crash never leaves a torn figure or table on disk.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod csv;
pub mod gantt;
pub mod histogram;
pub mod marks;
pub mod metrics;
pub mod output;
pub mod plot;
pub mod stats;
pub mod svg;
pub mod table;

pub use csv::Csv;
pub use histogram::Histogram;
pub use marks::{Mark, MarkKind};
pub use output::{write_atomic, write_atomic_str};
pub use plot::{Chart, Series};
pub use stats::{Samples, Summary};
pub use svg::{gantt_svg, gantt_svg_with_marks, SvgChart};
pub use table::{Align, Table};
