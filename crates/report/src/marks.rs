//! Fault-timeline marks overlaid on Gantt charts.
//!
//! The resilience engine's trace carries more than slot occupancy:
//! machines fail and rejoin, phases run degraded, speculative backups
//! start and get cancelled. A [`Mark`] pins one such event to a
//! (machine, time) point so the ASCII and SVG Gantt renderers can draw
//! the fault timeline on top of the executed schedule without the
//! report crate depending on the simulator.

use rds_core::{MachineId, Time};

/// What kind of fault-timeline event a mark denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MarkKind {
    /// The machine crashed or went down.
    Failure,
    /// The machine rejoined after an outage.
    Recovery,
    /// The machine entered (or left) a degraded-speed phase.
    Degraded,
    /// A speculative backup attempt started here.
    SpeculativeStart,
    /// An attempt was cancelled (lost the first-finisher race).
    Cancelled,
}

impl MarkKind {
    /// Single-character glyph for ASCII overlays.
    #[must_use]
    pub fn glyph(self) -> char {
        match self {
            MarkKind::Failure => 'X',
            MarkKind::Recovery => '^',
            MarkKind::Degraded => '~',
            MarkKind::SpeculativeStart => '!',
            MarkKind::Cancelled => 'x',
        }
    }

    /// Stroke color for SVG overlays.
    #[must_use]
    pub fn color(self) -> &'static str {
        match self {
            MarkKind::Failure => "#e41a1c",
            MarkKind::Recovery => "#4daf4a",
            MarkKind::Degraded => "#ff7f00",
            MarkKind::SpeculativeStart => "#377eb8",
            MarkKind::Cancelled => "#999999",
        }
    }

    /// Human-readable label for legends.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MarkKind::Failure => "failure",
            MarkKind::Recovery => "recovery",
            MarkKind::Degraded => "degraded",
            MarkKind::SpeculativeStart => "spec-start",
            MarkKind::Cancelled => "cancelled",
        }
    }

    /// All kinds, in legend order.
    #[must_use]
    pub fn all() -> [MarkKind; 5] {
        [
            MarkKind::Failure,
            MarkKind::Recovery,
            MarkKind::Degraded,
            MarkKind::SpeculativeStart,
            MarkKind::Cancelled,
        ]
    }
}

/// One fault-timeline event pinned to a machine row at a point in time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mark {
    /// When the event happened.
    pub time: Time,
    /// Which machine row it belongs on.
    pub machine: MachineId,
    /// What the event was.
    pub kind: MarkKind,
}

impl Mark {
    /// Convenience constructor.
    #[must_use]
    pub fn new(time: Time, machine: MachineId, kind: MarkKind) -> Self {
        Mark {
            time,
            machine,
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glyphs_and_colors_are_distinct() {
        let kinds = MarkKind::all();
        for (i, a) in kinds.iter().enumerate() {
            for b in &kinds[i + 1..] {
                assert_ne!(a.glyph(), b.glyph());
                assert_ne!(a.color(), b.color());
                assert_ne!(a.label(), b.label());
            }
        }
    }

    #[test]
    fn mark_constructor_round_trips() {
        let m = Mark::new(Time::of(2.5), MachineId::new(3), MarkKind::Recovery);
        assert_eq!(m.time, Time::of(2.5));
        assert_eq!(m.machine.index(), 3);
        assert_eq!(m.kind.glyph(), '^');
    }
}
