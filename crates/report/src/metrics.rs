//! Human-readable rendering of observability metrics.
//!
//! Turns an [`rds_obs::MetricsSnapshot`] into the markdown tables the
//! CLI prints when `--metrics` is given: one table of counters, one of
//! latency histograms with their estimated quantiles. Durations are
//! scaled to the largest unit that keeps the number readable, so a
//! 3 ns guard check and a 3 s trial share one column.

use crate::table::{Align, Table};
use rds_obs::MetricsSnapshot;

/// Formats a nanosecond quantity with an auto-selected unit.
///
/// The breakpoints follow the usual monitoring convention: values render
/// in the largest unit that keeps at least one integer digit.
pub fn fmt_ns(nanos: f64) -> String {
    let abs = nanos.abs();
    if abs >= 1e9 {
        format!("{:.2} s", nanos / 1e9)
    } else if abs >= 1e6 {
        format!("{:.2} ms", nanos / 1e6)
    } else if abs >= 1e3 {
        format!("{:.2} us", nanos / 1e3)
    } else {
        format!("{nanos:.0} ns")
    }
}

/// Renders the snapshot as markdown tables (counters, then histograms).
///
/// Metrics with zero observations still get a row — a zero is evidence
/// the instrumented path never ran, which is exactly what a metrics
/// report is for. Returns an explicit placeholder when the snapshot has
/// no metrics at all, so callers can always print the result.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    if snapshot.is_empty() {
        return "no metrics recorded\n".to_string();
    }
    let mut out = String::new();
    if !snapshot.counters.is_empty() {
        let mut t = Table::new(vec!["counter", "value"]).align(vec![Align::Left, Align::Right]);
        for (name, v) in &snapshot.counters {
            t.row(vec![name.clone(), v.to_string()]);
        }
        out.push_str(&t.to_markdown());
        out.push('\n');
    }
    if !snapshot.histograms.is_empty() {
        let mut t = Table::new(vec![
            "histogram",
            "count",
            "mean",
            "p50",
            "p90",
            "p99",
            "max",
        ])
        .align(vec![
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ]);
        for (name, h) in &snapshot.histograms {
            if h.count == 0 {
                t.row(vec![
                    name.clone(),
                    "0".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                ]);
            } else {
                t.row(vec![
                    name.clone(),
                    h.count.to_string(),
                    fmt_ns(h.mean()),
                    fmt_ns(h.quantile(0.5)),
                    fmt_ns(h.quantile(0.9)),
                    fmt_ns(h.quantile(0.99)),
                    fmt_ns(h.max as f64),
                ]);
            }
        }
        out.push_str(&t.to_markdown());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_obs::Registry;

    #[test]
    fn ns_formatting_picks_units() {
        assert_eq!(fmt_ns(3.0), "3 ns");
        assert_eq!(fmt_ns(4_500.0), "4.50 us");
        assert_eq!(fmt_ns(6_250_000.0), "6.25 ms");
        assert_eq!(fmt_ns(2_000_000_000.0), "2.00 s");
    }

    #[test]
    fn renders_counters_and_histograms() {
        let r = Registry::new();
        r.counter("engine.dispatch").add(12);
        r.histogram("trial.latency").record_nanos(1_000_000);
        let text = render(&r.snapshot());
        assert!(text.contains("engine.dispatch"));
        assert!(text.contains("12"));
        assert!(text.contains("trial.latency"));
        assert!(text.contains("p99"));
        assert!(text.contains("ms"), "{text}");
    }

    #[test]
    fn zero_count_histogram_gets_dashes() {
        let r = Registry::new();
        r.histogram("journal.fsync");
        let text = render(&r.snapshot());
        assert!(text.contains("journal.fsync"));
        assert!(text.contains('-'), "{text}");
    }

    #[test]
    fn empty_snapshot_has_placeholder() {
        let text = render(&MetricsSnapshot::default());
        assert!(text.contains("no metrics"));
    }
}
