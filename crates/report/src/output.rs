//! Crash-safe report emission.
//!
//! Figure and table emitters never leave a torn file behind: content is
//! written to a same-directory temporary file, fsync'd, then renamed
//! over the destination. A SIGKILL at any point leaves either the old
//! file or the new one, never a half-written mix — which is what lets a
//! resumed campaign trust whatever outputs it finds on disk.

use rds_core::{Error, Result};
use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

fn io_err(op: &'static str, path: &Path, e: &std::io::Error) -> Error {
    Error::Io {
        op,
        path: path.display().to_string(),
        why: e.to_string(),
    }
}

/// Writes `bytes` to `path` atomically: same-directory tempfile, fsync,
/// rename. The destination is either untouched or fully written.
///
/// # Errors
/// [`Error::Io`] naming the failing operation and path.
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> Result<()> {
    let path = path.as_ref();
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| Error::InvalidInstance {
            why: format!("output path has no file name: {}", path.display()),
        })?
        .to_string_lossy()
        .into_owned();
    // Same directory as the destination so the rename cannot cross a
    // filesystem boundary (rename is only atomic within one).
    let tmp_name = format!(".{}.tmp.{}", file_name, std::process::id());
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => Path::new(&tmp_name).to_path_buf(),
    };
    let result = (|| {
        let mut f = File::create(&tmp).map_err(|e| io_err("create", &tmp, &e))?;
        f.write_all(bytes).map_err(|e| io_err("write", &tmp, &e))?;
        f.sync_all().map_err(|e| io_err("fsync", &tmp, &e))?;
        fs::rename(&tmp, path).map_err(|e| io_err("rename", path, &e))
    })();
    if result.is_err() {
        fs::remove_file(&tmp).ok();
    }
    result
}

/// String convenience wrapper over [`write_atomic`].
///
/// # Errors
/// [`Error::Io`] naming the failing operation and path.
pub fn write_atomic_str(path: impl AsRef<Path>, text: &str) -> Result<()> {
    write_atomic(path, text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rds-output-{}-{}", tag, std::process::id()))
    }

    #[test]
    fn writes_and_replaces_whole_files() {
        let path = temp_file("basic");
        write_atomic_str(&path, "first version\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "first version\n");
        write_atomic_str(&path, "second version\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second version\n");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn leaves_no_tempfile_behind() {
        let path = temp_file("clean");
        write_atomic_str(&path, "content").unwrap();
        let dir = path.parent().unwrap();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let leftovers: Vec<_> = fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(&name) && n.ends_with(&format!("tmp.{}", std::process::id())))
            .collect();
        assert!(leftovers.is_empty(), "stray tempfiles: {leftovers:?}");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_directory_is_a_typed_error() {
        let path = std::env::temp_dir()
            .join(format!("rds-no-such-dir-{}", std::process::id()))
            .join("out.svg");
        let err = write_atomic_str(&path, "x").unwrap_err();
        assert!(matches!(err, Error::Io { op: "create", .. }), "{err}");
    }
}
