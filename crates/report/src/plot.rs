//! ASCII line/scatter plots for terminal-rendered figures.
//!
//! Good enough to eyeball the shape of every figure in the paper without
//! leaving the terminal; the bench binaries also emit CSV for real
//! plotting tools.

use rds_core::{Error, Result};

/// One named data series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Plot glyph.
    pub glyph: char,
    /// The `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, glyph: char, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            glyph,
            points,
        }
    }
}

/// An ASCII chart canvas.
#[derive(Debug)]
pub struct Chart {
    width: usize,
    height: usize,
    title: String,
    series: Vec<Series>,
    log_x: bool,
}

impl Chart {
    /// Creates a chart of the given character dimensions.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] unless `width >= 16` and
    /// `height >= 4` — anything smaller cannot carry axes and a legend.
    pub fn new(title: impl Into<String>, width: usize, height: usize) -> Result<Self> {
        if width < 16 || height < 4 {
            return Err(Error::InvalidParameter {
                what: "chart needs width >= 16 and height >= 4",
            });
        }
        Ok(Chart {
            width,
            height,
            title: title.into(),
            series: Vec::new(),
            log_x: false,
        })
    }

    /// Uses a logarithmic x axis (e.g. for the replication counts of
    /// Figure 3, which are divisors spanning 1..210).
    pub fn log_x(mut self) -> Self {
        self.log_x = true;
        self
    }

    /// Adds a series.
    pub fn series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    fn x_transform(&self, x: f64) -> f64 {
        if self.log_x {
            x.max(f64::MIN_POSITIVE).ln()
        } else {
            x
        }
    }

    /// Renders the chart to text.
    pub fn render(&self) -> String {
        let mut all: Vec<(f64, f64)> = Vec::new();
        for s in &self.series {
            for &(x, y) in &s.points {
                if x.is_finite() && y.is_finite() {
                    all.push((self.x_transform(x), y));
                }
            }
        }
        if all.is_empty() {
            return format!("{}\n(no data)\n", self.title);
        }
        let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &all {
            x_lo = x_lo.min(x);
            x_hi = x_hi.max(x);
            y_lo = y_lo.min(y);
            y_hi = y_hi.max(y);
        }
        if (x_hi - x_lo).abs() < 1e-12 {
            x_hi = x_lo + 1.0;
        }
        if (y_hi - y_lo).abs() < 1e-12 {
            y_hi = y_lo + 1.0;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        for s in &self.series {
            for &(x, y) in &s.points {
                if !(x.is_finite() && y.is_finite()) {
                    continue;
                }
                let tx = self.x_transform(x);
                let col = ((tx - x_lo) / (x_hi - x_lo) * (self.width - 1) as f64).round() as usize;
                let row_f = (y - y_lo) / (y_hi - y_lo) * (self.height - 1) as f64;
                let row = self.height - 1 - row_f.round() as usize;
                grid[row][col.min(self.width - 1)] = s.glyph;
            }
        }

        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        for (i, line) in grid.iter().enumerate() {
            let y_label = if i == 0 {
                format!("{y_hi:>8.2}")
            } else if i == self.height - 1 {
                format!("{y_lo:>8.2}")
            } else {
                " ".repeat(8)
            };
            out.push_str(&y_label);
            out.push('|');
            out.extend(line.iter());
            out.push('\n');
        }
        out.push_str(&" ".repeat(9));
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        // Untransformed extremes for the x labels.
        let (raw_lo, raw_hi) = self
            .series
            .iter()
            .flat_map(|s| s.points.iter())
            .filter(|(x, _)| x.is_finite())
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(x, _)| {
                (lo.min(x), hi.max(x))
            });
        out.push_str(&format!(
            "{}{raw_lo:<12.2}{}{raw_hi:>10.2}\n",
            " ".repeat(9),
            " ".repeat(self.width.saturating_sub(22)),
        ));
        for s in &self.series {
            out.push_str(&format!("  {} {}\n", s.glyph, s.label));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_and_legend() {
        let chart = Chart::new("test", 40, 10)
            .unwrap()
            .series(Series::new("up", '*', vec![(0.0, 0.0), (1.0, 1.0)]))
            .series(Series::new("down", 'o', vec![(0.0, 1.0), (1.0, 0.0)]));
        let text = chart.render();
        assert!(text.contains("test"));
        assert!(text.contains('*'));
        assert!(text.contains('o'));
        assert!(text.contains("up"));
        assert!(text.contains("down"));
        // Extremes on the y axis labels.
        assert!(text.contains("1.00"));
        assert!(text.contains("0.00"));
    }

    #[test]
    fn empty_chart_is_harmless() {
        let chart = Chart::new("empty", 20, 5).unwrap();
        assert!(chart.render().contains("(no data)"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let chart = Chart::new("const", 20, 5).unwrap().series(Series::new(
            "c",
            '#',
            vec![(1.0, 2.0), (2.0, 2.0)],
        ));
        let text = chart.render();
        assert!(text.contains('#'));
    }

    #[test]
    fn log_x_spreads_divisors() {
        let points: Vec<(f64, f64)> = [1.0, 2.0, 4.0, 128.0].iter().map(|&x| (x, x)).collect();
        let lin = Chart::new("lin", 64, 6)
            .unwrap()
            .series(Series::new("s", '*', points.clone()));
        let log = Chart::new("log", 64, 6)
            .unwrap()
            .log_x()
            .series(Series::new("s", '*', points));
        // In log space, 1→2 and 2→4 are the same distance; just assert it
        // renders and differs from the linear version.
        assert_ne!(lin.render(), log.render());
    }

    #[test]
    fn minimum_size_is_a_typed_error() {
        assert!(matches!(
            Chart::new("tiny", 4, 2),
            Err(Error::InvalidParameter { .. })
        ));
        assert!(Chart::new("narrow", 15, 10).is_err());
        assert!(Chart::new("flat", 40, 3).is_err());
    }
}
