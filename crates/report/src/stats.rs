//! Summary statistics for experiment outputs.

/// Streaming mean/variance/extrema accumulator (Welford's algorithm) —
/// numerically stable and O(1) memory, for hot loops.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty accumulator.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    ///
    /// # Panics
    /// Panics (debug) on NaN.
    pub fn push(&mut self, x: f64) {
        debug_assert!(!x.is_nan(), "NaN observation");
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (`0` when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample standard deviation (`0` for fewer than two
    /// observations).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest observation (`0` when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (`0` when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Half-width of the normal-approximation 95% confidence interval
    /// for the mean.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Merges another accumulator (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        self.m2 += other.m2 + d * d * self.n as f64 * other.n as f64 / n as f64;
        self.mean = mean;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Buffered sample set with quantile queries.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// An empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(!x.is_nan());
        self.values.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values.sort_by(f64::total_cmp);
            self.sorted = true;
        }
    }

    /// Linear-interpolation quantile; `q` is clamped into `[0, 1]` (a
    /// NaN `q` reads as the minimum). Returns `0` when empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let q = if q.is_nan() { 0.0 } else { q };
        if self.values.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let pos = q * (self.values.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.values[lo] * (1.0 - frac) + self.values[hi] * frac
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// Reduces to a [`Summary`].
    pub fn summary(&self) -> Summary {
        let mut s = Summary::new();
        for &v in &self.values {
            s.push(v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Unbiased std of this classic set: sqrt(32/7).
        assert!((s.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!(s.ci95_half_width() > 0.0);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.std_dev() - whole.std_dev()).abs() < 1e-12);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Summary::new();
        a.push(1.0);
        let before = a.clone();
        a.merge(&Summary::new());
        assert_eq!(a.count(), before.count());
        let mut e = Summary::new();
        e.merge(&a);
        assert_eq!(e.count(), 1);
    }

    #[test]
    fn quantiles_interpolate() {
        let mut s = Samples::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.push(x);
        }
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 4.0);
        assert!((s.median() - 2.5).abs() < 1e-12);
        assert!((s.quantile(1.0 / 3.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_empty_and_single() {
        let mut s = Samples::new();
        assert_eq!(s.median(), 0.0);
        s.push(7.0);
        assert_eq!(s.quantile(0.25), 7.0);
        assert!(!s.is_empty());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn samples_summary_roundtrip() {
        let mut s = Samples::new();
        for x in [3.0, 1.0, 2.0] {
            s.push(x);
        }
        let sum = s.summary();
        assert_eq!(sum.count(), 3);
        assert!((sum.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_domain_is_clamped() {
        let mut s = Samples::new();
        for v in [1.0, 2.0, 3.0] {
            s.push(v);
        }
        assert_eq!(s.quantile(1.5), 3.0);
        assert_eq!(s.quantile(-0.5), 1.0);
        assert_eq!(s.quantile(f64::NAN), 1.0);
    }
}
