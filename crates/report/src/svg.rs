//! Hand-rolled SVG emission: publication-style renderings of the
//! paper's figures (line charts) and executed schedules (Gantt charts),
//! with zero graphics dependencies.

use crate::marks::{Mark, MarkKind};
use crate::plot::Series;
use rds_core::Schedule;
use std::fmt::Write as _;

/// Canvas geometry shared by the renderers.
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 24.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 48.0;

/// A qualitative color cycle (ColorBrewer Set1-ish, readable on white).
const COLORS: &[&str] = &[
    "#e41a1c", "#377eb8", "#4daf4a", "#984ea3", "#ff7f00", "#a65628", "#f781bf", "#999999",
];

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// An SVG line/scatter chart over named series.
#[derive(Debug)]
pub struct SvgChart {
    title: String,
    width: f64,
    height: f64,
    series: Vec<Series>,
    log_x: bool,
    x_label: String,
    y_label: String,
}

impl SvgChart {
    /// Creates a chart canvas of the given pixel dimensions. Dimensions
    /// below the 160 px layout minimum (or non-finite) are clamped up to
    /// it rather than aborting a long campaign over a typo'd flag.
    pub fn new(title: impl Into<String>, width: f64, height: f64) -> Self {
        let clamp = |d: f64| if d.is_finite() { d.max(160.0) } else { 160.0 };
        SvgChart {
            title: title.into(),
            width: clamp(width),
            height: clamp(height),
            series: Vec::new(),
            log_x: false,
            x_label: String::new(),
            y_label: String::new(),
        }
    }

    /// Logarithmic x axis.
    pub fn log_x(mut self) -> Self {
        self.log_x = true;
        self
    }

    /// Axis labels.
    pub fn labels(mut self, x: impl Into<String>, y: impl Into<String>) -> Self {
        self.x_label = x.into();
        self.y_label = y.into();
        self
    }

    /// Adds a series (re-using the ASCII [`Series`] type).
    pub fn series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    fn tx(&self, x: f64) -> f64 {
        if self.log_x {
            x.max(f64::MIN_POSITIVE).ln()
        } else {
            x
        }
    }

    /// Renders the chart to an SVG document string.
    pub fn render(&self) -> String {
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter())
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .map(|&(x, y)| (self.tx(x), y))
            .collect();
        let mut out = String::new();
        let _ = write!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif">"#,
            w = self.width,
            h = self.height
        );
        let _ = write!(
            out,
            r#"<rect width="{w}" height="{h}" fill="white"/><text x="{cx}" y="24" text-anchor="middle" font-size="15" font-weight="bold">{t}</text>"#,
            w = self.width,
            h = self.height,
            cx = self.width / 2.0,
            t = esc(&self.title)
        );
        if pts.is_empty() {
            out.push_str("<text x=\"40\" y=\"60\" font-size=\"12\">(no data)</text></svg>");
            return out;
        }
        let (mut x0, mut x1, mut y0, mut y1) = (
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
        );
        for &(x, y) in &pts {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        if (x1 - x0).abs() < 1e-12 {
            x1 = x0 + 1.0;
        }
        if (y1 - y0).abs() < 1e-12 {
            y1 = y0 + 1.0;
        }
        let plot_w = self.width - MARGIN_L - MARGIN_R;
        let plot_h = self.height - MARGIN_T - MARGIN_B;
        let px = |x: f64| MARGIN_L + (self.tx(x) - x0) / (x1 - x0) * plot_w;
        let py = |y: f64| MARGIN_T + (1.0 - (y - y0) / (y1 - y0)) * plot_h;

        // Axes + ticks.
        let _ = write!(
            out,
            r##"<g stroke="#444" stroke-width="1"><line x1="{l}" y1="{b}" x2="{r}" y2="{b}"/><line x1="{l}" y1="{t}" x2="{l}" y2="{b}"/></g>"##,
            l = MARGIN_L,
            r = self.width - MARGIN_R,
            t = MARGIN_T,
            b = self.height - MARGIN_B
        );
        for i in 0..=4 {
            let fy = y0 + (y1 - y0) * i as f64 / 4.0;
            let _ = write!(
                out,
                r##"<text x="{x}" y="{y}" text-anchor="end" font-size="11">{v:.2}</text><line x1="{l}" y1="{gy}" x2="{r}" y2="{gy}" stroke="#ddd" stroke-width="0.5"/>"##,
                x = MARGIN_L - 6.0,
                y = py(fy) + 4.0,
                v = fy,
                l = MARGIN_L,
                r = self.width - MARGIN_R,
                gy = py(fy)
            );
        }
        // Raw x extremes for tick labels (untransformed).
        let (rx0, rx1) = self
            .series
            .iter()
            .flat_map(|s| s.points.iter())
            .filter(|(x, _)| x.is_finite())
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &(x, _)| {
                (a.min(x), b.max(x))
            });
        let _ = write!(
            out,
            r#"<text x="{l}" y="{y}" font-size="11">{rx0:.3}</text><text x="{r}" y="{y}" text-anchor="end" font-size="11">{rx1:.3}</text>"#,
            l = MARGIN_L,
            r = self.width - MARGIN_R,
            y = self.height - MARGIN_B + 16.0,
        );
        let _ = write!(
            out,
            r#"<text x="{cx}" y="{y}" text-anchor="middle" font-size="12">{t}</text>"#,
            cx = MARGIN_L + plot_w / 2.0,
            y = self.height - 12.0,
            t = esc(&self.x_label)
        );
        let _ = write!(
            out,
            r#"<text x="14" y="{cy}" text-anchor="middle" font-size="12" transform="rotate(-90 14 {cy})">{t}</text>"#,
            cy = MARGIN_T + plot_h / 2.0,
            t = esc(&self.y_label)
        );

        // Series: polyline + dots + legend.
        for (i, s) in self.series.iter().enumerate() {
            let color = COLORS[i % COLORS.len()];
            let mut sorted: Vec<(f64, f64)> = s
                .points
                .iter()
                .copied()
                .filter(|(x, y)| x.is_finite() && y.is_finite())
                .collect();
            sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
            let path: Vec<String> = sorted
                .iter()
                .map(|&(x, y)| format!("{:.2},{:.2}", px(x), py(y)))
                .collect();
            if path.len() > 1 {
                let _ = write!(
                    out,
                    r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
                    path.join(" ")
                );
            }
            for &(x, y) in &sorted {
                let _ = write!(
                    out,
                    r#"<circle cx="{:.2}" cy="{:.2}" r="3" fill="{color}"/>"#,
                    px(x),
                    py(y)
                );
            }
            let ly = MARGIN_T + 16.0 * i as f64;
            let _ = write!(
                out,
                r#"<rect x="{lx}" y="{ry}" width="10" height="10" fill="{color}"/><text x="{tx}" y="{ty}" font-size="11">{label}</text>"#,
                lx = self.width - MARGIN_R - 150.0,
                ry = ly - 9.0,
                tx = self.width - MARGIN_R - 136.0,
                ty = ly,
                label = esc(&s.label)
            );
        }
        out.push_str("</svg>");
        out
    }
}

/// Renders an executed schedule as an SVG Gantt chart.
///
/// # Panics
/// Panics unless `width >= 160`.
pub fn gantt_svg(schedule: &Schedule, width: f64) -> String {
    gantt_svg_with_marks(schedule, width, &[])
}

/// Like [`gantt_svg`], additionally drawing fault-timeline [`Mark`]s as
/// colored vertical ticks on the affected machine rows, with a legend
/// for the kinds present.
///
/// Marks use only `<line>`/`<circle>`/`<text>` elements, so the slot
/// rectangles of the base chart stay untouched. Marks on machines
/// outside the schedule are ignored; marks past the makespan clamp to
/// the right edge.
///
/// A `width` below the 160 px layout minimum (or non-finite) is clamped
/// up to it.
pub fn gantt_svg_with_marks(schedule: &Schedule, width: f64, marks: &[Mark]) -> String {
    let width = if width.is_finite() {
        width.max(160.0)
    } else {
        160.0
    };
    let makespan = schedule.makespan().get().max(1e-12);
    let m = schedule.m();
    let row_h = 26.0;
    let height = MARGIN_T + m as f64 * row_h + MARGIN_B;
    let plot_w = width - MARGIN_L - MARGIN_R;
    let mut out = String::new();
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}" font-family="sans-serif"><rect width="{width}" height="{height}" fill="white"/>"#
    );
    for (i, slots) in schedule.all_slots().iter().enumerate() {
        let y = MARGIN_T + i as f64 * row_h;
        let _ = write!(
            out,
            r#"<text x="{x}" y="{ty}" text-anchor="end" font-size="11">p{i}</text>"#,
            x = MARGIN_L - 8.0,
            ty = y + row_h * 0.65
        );
        for slot in slots {
            let x = MARGIN_L + slot.start.get() / makespan * plot_w;
            let w = ((slot.end - slot.start).get() / makespan * plot_w).max(1.0);
            let color = COLORS[slot.task.index() % COLORS.len()];
            let _ = write!(
                out,
                r#"<rect x="{x:.2}" y="{ry:.2}" width="{w:.2}" height="{rh}" fill="{color}" stroke="white" stroke-width="0.8"/><text x="{cx:.2}" y="{cy:.2}" text-anchor="middle" font-size="10" fill="white">{t}</text>"#,
                ry = y + 3.0,
                rh = row_h - 6.0,
                cx = x + w / 2.0,
                cy = y + row_h * 0.65,
                t = slot.task.index()
            );
        }
    }
    let marks: Vec<&Mark> = marks.iter().filter(|mk| mk.machine.index() < m).collect();
    for mark in &marks {
        let y = MARGIN_T + mark.machine.index() as f64 * row_h;
        let x = MARGIN_L + (mark.time.get() / makespan).min(1.0) * plot_w;
        let color = mark.kind.color();
        let _ = write!(
            out,
            r#"<line x1="{x:.2}" y1="{y1:.2}" x2="{x:.2}" y2="{y2:.2}" stroke="{color}" stroke-width="2"><title>{label}</title></line><circle cx="{x:.2}" cy="{y1:.2}" r="2.5" fill="{color}"/>"#,
            y1 = y + 1.0,
            y2 = y + row_h - 1.0,
            label = mark.kind.label()
        );
    }
    if !marks.is_empty() {
        let mut lx = MARGIN_L;
        let ly = MARGIN_T - 10.0;
        for kind in MarkKind::all() {
            if marks.iter().any(|mk| mk.kind == kind) {
                let _ = write!(
                    out,
                    r#"<line x1="{lx:.2}" y1="{y1:.2}" x2="{lx:.2}" y2="{y2:.2}" stroke="{color}" stroke-width="2"/><text x="{tx:.2}" y="{ty:.2}" font-size="10">{label}</text>"#,
                    y1 = ly - 8.0,
                    y2 = ly + 2.0,
                    color = kind.color(),
                    tx = lx + 5.0,
                    ty = ly,
                    label = kind.label()
                );
                lx += 80.0;
            }
        }
    }
    let _ = write!(
        out,
        r#"<text x="{l}" y="{y}" font-size="11">0</text><text x="{r}" y="{y}" text-anchor="end" font-size="11">{mk:.2}</text></svg>"#,
        l = MARGIN_L,
        r = width - MARGIN_R,
        y = height - MARGIN_B + 18.0,
        mk = makespan
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_core::{Instance, Realization, TaskId};

    #[test]
    fn chart_contains_all_series_and_axes() {
        let svg = SvgChart::new("test chart", 640.0, 400.0)
            .labels("replicas", "ratio")
            .series(Series::new(
                "bound",
                '#',
                vec![(1.0, 7.9), (3.0, 5.8), (210.0, 2.0)],
            ))
            .series(Series::new("measured", '*', vec![(1.0, 3.9), (210.0, 1.5)]))
            .log_x()
            .render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("test chart"));
        assert!(svg.contains("bound"));
        assert!(svg.contains("measured"));
        assert!(svg.contains("polyline"));
        assert!(svg.contains("replicas"));
        // Two series → two legend rects + dots.
        assert!(svg.matches("<circle").count() >= 5);
    }

    #[test]
    fn chart_escapes_markup() {
        let svg = SvgChart::new("a < b & c", 320.0, 200.0)
            .series(Series::new("x<y", 'x', vec![(0.0, 1.0)]))
            .render();
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(svg.contains("x&lt;y"));
        assert!(!svg.contains("a < b"));
    }

    #[test]
    fn empty_chart_renders_placeholder() {
        let svg = SvgChart::new("empty", 320.0, 200.0).render();
        assert!(svg.contains("(no data)"));
    }

    #[test]
    fn gantt_has_one_row_per_machine_and_scaled_bars() {
        let inst = Instance::from_estimates(&[2.0, 2.0, 4.0], 2).unwrap();
        let real = Realization::exact(&inst);
        let order = vec![vec![TaskId::new(0), TaskId::new(1)], vec![TaskId::new(2)]];
        let s = rds_core::Schedule::sequence(&order, &real);
        let svg = gantt_svg(&s, 640.0);
        assert!(svg.contains(">p0<") && svg.contains(">p1<"));
        // Three task rectangles.
        assert_eq!(svg.matches("<rect").count(), 1 + 3); // background + 3 slots
        assert!(svg.contains("4.00")); // makespan label
    }

    #[test]
    fn gantt_marks_draw_ticks_without_touching_slot_rects() {
        use rds_core::{MachineId, Time};
        let inst = Instance::from_estimates(&[2.0, 2.0, 4.0], 2).unwrap();
        let real = Realization::exact(&inst);
        let order = vec![vec![TaskId::new(0), TaskId::new(1)], vec![TaskId::new(2)]];
        let s = rds_core::Schedule::sequence(&order, &real);
        let marks = vec![
            Mark::new(Time::of(1.0), MachineId::new(0), MarkKind::Failure),
            Mark::new(Time::of(2.0), MachineId::new(1), MarkKind::Recovery),
            // Ignored: machine outside the schedule.
            Mark::new(Time::of(1.0), MachineId::new(7), MarkKind::Cancelled),
        ];
        let svg = gantt_svg_with_marks(&s, 640.0, &marks);
        // Same rect count as the unmarked chart: marks are lines/circles.
        assert_eq!(svg.matches("<rect").count(), 1 + 3);
        assert!(svg.contains(MarkKind::Failure.color()));
        assert!(svg.contains(MarkKind::Recovery.color()));
        assert!(svg.contains(">failure<"));
        assert!(svg.contains("recovery"));
        // The dropped mark's kind never renders.
        assert!(!svg.contains("cancelled"));
        // Legend + per-mark ticks.
        assert!(svg.matches("<line").count() >= 4);
    }

    #[test]
    fn undersized_canvas_is_clamped_to_layout_minimum() {
        let svg = SvgChart::new("tiny", 10.0, f64::NAN).render();
        assert!(svg.contains(r#"width="160""#), "{svg}");
        assert!(svg.contains(r#"height="160""#), "{svg}");
    }
}
