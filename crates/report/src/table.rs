//! Aligned text/markdown table rendering for the benchmark binaries.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-justified (labels).
    Left,
    /// Right-justified (numbers).
    Right,
}

/// A simple table builder rendering to GitHub-flavored markdown.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given headers, all left-aligned.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = vec![Align::Left; headers.len()];
        Table {
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Sets per-column alignment.
    ///
    /// # Panics
    /// Panics if the length differs from the header count.
    pub fn align(mut self, aligns: Vec<Align>) -> Self {
        assert_eq!(aligns.len(), self.headers.len(), "alignment arity");
        self.aligns = aligns;
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the arity differs from the header count.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as a markdown table with padded columns.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let pad = |cell: &str, w: usize, a: Align| match a {
            Align::Left => format!("{cell:<w$}"),
            Align::Right => format!("{cell:>w$}"),
        };
        out.push('|');
        for (header, &w) in self.headers.iter().zip(&widths) {
            let _ = write!(out, " {} |", pad(header, w, Align::Left));
        }
        out.push('\n');
        out.push('|');
        for (i, &a) in self.aligns.iter().enumerate() {
            let dashes = "-".repeat(widths[i]);
            match a {
                Align::Left => {
                    let _ = write!(out, " {dashes} |");
                }
                Align::Right => {
                    let _ = write!(out, " {}:|", &dashes[..dashes.len().saturating_sub(0)]);
                }
            }
        }
        out.push('\n');
        for row in &self.rows {
            out.push('|');
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(out, " {} |", pad(cell, widths[i], self.aligns[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `prec` decimals.
pub fn fmt(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_padded_markdown() {
        let mut t = Table::new(vec!["name", "value"]).align(vec![Align::Left, Align::Right]);
        t.row(vec!["alpha", "1.50"]);
        t.row(vec!["m", "210"]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("| name "));
        assert!(lines[1].contains("-:"), "right column marker: {}", lines[1]);
        assert!(lines[2].contains("| alpha |"));
        assert!(
            lines[3].contains("|   210 |"),
            "right aligned: {}",
            lines[3]
        );
    }

    #[test]
    fn tracks_len() {
        let mut t = Table::new(vec!["a"]);
        assert!(t.is_empty());
        t.row(vec!["1"]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        Table::new(vec!["a", "b"]).row(vec!["only one"]);
    }

    #[test]
    fn fmt_precision() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(2.0, 3), "2.000");
    }
}
