//! Analytic worst/best-case envelopes of a *static* schedule.
//!
//! For a fixed assignment the actual times vary independently inside
//! `[p̃_j/α, α·p̃_j]`, so each machine's load varies inside
//! `[load̃_i/α, α·load̃_i]` and the makespan inside
//! `[C̃_max/α, α·C̃_max]` — tight, since the adversary controls every
//! task independently. These are the sensitivity-analysis quantities the
//! robust-scheduling literature the paper cites (§2) computes.

use rds_core::{Assignment, Instance, TaskId, Time, Uncertainty};

/// The static-schedule makespan envelope.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    /// Planned makespan on the estimates, `C̃_max`.
    pub planned: Time,
    /// Best reachable makespan, `C̃_max/α`.
    pub best: Time,
    /// Worst reachable makespan, `α·C̃_max`.
    pub worst: Time,
}

impl Envelope {
    /// Width of the envelope relative to the planned value:
    /// `(worst − best)/planned = α − 1/α`.
    pub fn relative_width(&self) -> f64 {
        if self.planned.is_zero() {
            0.0
        } else {
            (self.worst - self.best).get() / self.planned.get()
        }
    }
}

/// Computes the makespan envelope of a fixed assignment.
pub fn envelope(instance: &Instance, assignment: &Assignment, unc: Uncertainty) -> Envelope {
    let planned = assignment.estimated_makespan(instance);
    Envelope {
        planned,
        best: unc.lo(planned),
        worst: unc.hi(planned),
    }
}

/// Per-machine *criticality*: how close each machine's estimated load is
/// to the planned makespan (`1.0` = this machine decides the makespan).
/// Machines near `1` are the ones whose tasks' inflation hurts; the
/// memory-aware and critical-replication policies target exactly them.
pub fn machine_criticality(instance: &Instance, assignment: &Assignment) -> Vec<f64> {
    let loads = assignment.estimated_loads(instance);
    let cmax = loads.iter().copied().max().unwrap_or(Time::ZERO);
    if cmax.is_zero() {
        return vec![1.0; loads.len()];
    }
    loads.iter().map(|l| l.get() / cmax.get()).collect()
}

/// Per-task criticality: the criticality of the machine the task runs
/// on, scaled by the task's share of that machine's load. Tasks with
/// high values are the "critical tasks" of the paper's future-work
/// paragraph.
pub fn task_criticality(instance: &Instance, assignment: &Assignment) -> Vec<f64> {
    let loads = assignment.estimated_loads(instance);
    let cmax = loads.iter().copied().max().unwrap_or(Time::ZERO);
    if cmax.is_zero() {
        return vec![0.0; instance.n()];
    }
    (0..instance.n())
        .map(|j| {
            let t = TaskId::new(j);
            let machine = assignment.machine_of(t);
            let mach_crit = loads[machine.index()].get() / cmax.get();
            let share = instance.estimate(t).get() / loads[machine.index()].get().max(1e-300);
            mach_crit * share
        })
        .collect()
}

/// The *slack* of a static schedule against a deadline `d`: the largest
/// uniform inflation factor `f ≤ α` such that the makespan stays `≤ d`,
/// or `None` if even the planned schedule misses it. This is the
/// slack-based robustness measure of Davenport et al. (cited in §2),
/// adapted to multiplicative deviations.
pub fn inflation_slack(
    instance: &Instance,
    assignment: &Assignment,
    unc: Uncertainty,
    deadline: Time,
) -> Option<f64> {
    let planned = assignment.estimated_makespan(instance);
    if planned.is_zero() {
        return Some(unc.alpha());
    }
    if planned > deadline {
        return None;
    }
    Some((deadline.get() / planned.get()).min(unc.alpha()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_core::{MachineId, Realization};

    fn setup() -> (Instance, Assignment, Uncertainty) {
        let inst = Instance::from_estimates(&[4.0, 2.0, 3.0, 1.0], 2).unwrap();
        let a = Assignment::new(
            &inst,
            vec![
                MachineId::new(0),
                MachineId::new(0),
                MachineId::new(1),
                MachineId::new(1),
            ],
        )
        .unwrap();
        (inst, a, Uncertainty::of(2.0))
    }

    #[test]
    fn envelope_brackets_every_realization() {
        let (inst, a, unc) = setup();
        let env = envelope(&inst, &a, unc);
        assert_eq!(env.planned, Time::of(6.0));
        assert_eq!(env.best, Time::of(3.0));
        assert_eq!(env.worst, Time::of(12.0));
        assert!((env.relative_width() - 1.5).abs() < 1e-12); // α − 1/α

        // Sample realizations stay inside.
        for factors in [
            [2.0, 2.0, 2.0, 2.0],
            [0.5, 0.5, 0.5, 0.5],
            [2.0, 0.5, 1.0, 1.3],
        ] {
            let real = Realization::from_factors(&inst, unc, &factors).unwrap();
            let mk = a.makespan(&real);
            assert!(mk >= env.best && mk <= env.worst, "{mk}");
        }
    }

    #[test]
    fn envelope_is_tight() {
        let (inst, a, unc) = setup();
        let env = envelope(&inst, &a, unc);
        let worst = Realization::uniform_factor(&inst, unc, 2.0).unwrap();
        assert_eq!(a.makespan(&worst), env.worst);
        let best = Realization::uniform_factor(&inst, unc, 0.5).unwrap();
        assert_eq!(a.makespan(&best), env.best);
    }

    #[test]
    fn criticality_identifies_the_bottleneck() {
        let (inst, a, _) = setup();
        let crit = machine_criticality(&inst, &a);
        assert_eq!(crit[0], 1.0); // load 6 = C̃max
        assert!((crit[1] - 4.0 / 6.0).abs() < 1e-12);
        let tc = task_criticality(&inst, &a);
        // Task 0 (4 of machine 0's 6) is the most critical.
        let max_idx = tc
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.total_cmp(y.1))
            .unwrap()
            .0;
        assert_eq!(max_idx, 0);
    }

    #[test]
    fn slack_semantics() {
        let (inst, a, unc) = setup();
        // Planned 6; deadline 9 → slack 1.5; deadline 24 → capped at α.
        assert_eq!(inflation_slack(&inst, &a, unc, Time::of(9.0)), Some(1.5));
        assert_eq!(inflation_slack(&inst, &a, unc, Time::of(24.0)), Some(2.0));
        assert_eq!(inflation_slack(&inst, &a, unc, Time::of(5.0)), None);
    }
}
