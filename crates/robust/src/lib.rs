//! Robustness analysis under bounded multiplicative uncertainty.
//!
//! The paper's related work (§2) surveys robust-scheduling metrics —
//! slack-based techniques, sensitivity analysis, makespan/robustness
//! correlations. This crate provides the corresponding analyses for the
//! two-phase model:
//!
//! - [`envelope`](mod@envelope): tight analytic worst/best-case makespan envelopes of
//!   static schedules, machine/task criticality, inflation slack against
//!   deadlines;
//! - [`montecarlo`]: sampled makespan distributions per strategy and the
//!   expected value of adaptivity (how much replication buys on average,
//!   not just in the worst case).
//!
//! # Example
//! ```
//! use rds_algs::{LptNoChoice, Strategy};
//! use rds_core::prelude::*;
//! use rds_robust::envelope;
//!
//! let inst = Instance::from_estimates(&[4.0, 3.0, 2.0, 1.0], 2)?;
//! let unc = Uncertainty::of(2.0);
//! let p = LptNoChoice.place(&inst, unc)?;
//! let a = LptNoChoice.execute(&inst, &p, &Realization::exact(&inst))?;
//! let env = envelope::envelope(&inst, &a, unc);
//! assert_eq!(env.worst, env.planned * 2.0);
//! # Ok::<(), rds_core::Error>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod envelope;
pub mod montecarlo;

pub use envelope::{envelope, inflation_slack, machine_criticality, task_criticality, Envelope};
pub use montecarlo::{
    expected_value_of_adaptivity, sample_makespans, sample_makespans_resilient, Distribution,
};
