//! Monte Carlo makespan distributions and the expected value of
//! adaptivity.
//!
//! The paper proves worst-case ratios; practitioners also want the
//! *distribution*: how much does replication help on average, and how
//! heavy is the tail? This module samples realizations from a
//! [`RealizationModel`] and summarizes the makespans of any strategy,
//! plus the **expected value of adaptivity (EVA)**: the mean makespan
//! gap between a static strategy and an adaptive one on identical
//! realizations.

use rds_algs::Strategy;
use rds_core::{Instance, Result, Uncertainty};
use rds_report::{Samples, Summary};
use rds_workloads::realize::RealizationModel;
use rds_workloads::rng;

/// The sampled makespan distribution of one strategy.
#[derive(Debug, Clone)]
pub struct Distribution {
    /// Streaming summary (mean/std/extremes).
    pub summary: Summary,
    /// Raw samples, for quantiles.
    pub samples: Samples,
}

impl Distribution {
    /// `q`-quantile of the sampled makespans.
    pub fn quantile(&mut self, q: f64) -> f64 {
        self.samples.quantile(q)
    }
}

/// Samples `reps` realizations and collects the strategy's makespans.
/// Phase 1 runs once (the placement does not depend on the realization);
/// phase 2 re-runs per sample, exactly like a production system would.
///
/// # Errors
/// Propagates strategy/realization failures.
pub fn sample_makespans<S: Strategy>(
    strategy: &S,
    instance: &Instance,
    unc: Uncertainty,
    model: RealizationModel,
    reps: usize,
    seed: u64,
) -> Result<Distribution> {
    let placement = strategy.place(instance, unc)?;
    let mut summary = Summary::new();
    let mut samples = Samples::new();
    for rep in 0..reps {
        let mut r = rng::rng(rng::child_seed(seed, rep as u64));
        let real = model.realize(instance, unc, &mut r)?;
        let assignment = strategy.execute(instance, &placement, &real)?;
        assignment.check_feasible(&placement)?;
        let mk = assignment.makespan(&real).get();
        summary.push(mk);
        samples.push(mk);
    }
    Ok(Distribution { summary, samples })
}

/// Error-isolating variant of [`sample_makespans`] for long campaigns:
/// a failing repetition (strategy error or panic inside `execute`) is
/// recorded and skipped instead of aborting the whole distribution.
///
/// Surviving samples are pushed in repetition order, so a run with zero
/// failures is bit-identical to [`sample_makespans`]. The returned pairs
/// are `(rep_index, rendered error)` for every skipped repetition.
///
/// # Errors
/// Only setup errors (phase-1 placement) abort; per-rep failures are
/// returned in the skip list.
pub fn sample_makespans_resilient<S: Strategy>(
    strategy: &S,
    instance: &Instance,
    unc: Uncertainty,
    model: RealizationModel,
    reps: usize,
    seed: u64,
) -> Result<(Distribution, Vec<(usize, String)>)> {
    let placement = strategy.place(instance, unc)?;
    let mut summary = Summary::new();
    let mut samples = Samples::new();
    let mut skipped = Vec::new();
    for rep in 0..reps {
        let one = || -> Result<f64> {
            let mut r = rng::rng(rng::child_seed(seed, rep as u64));
            let real = model.realize(instance, unc, &mut r)?;
            let assignment = strategy.execute(instance, &placement, &real)?;
            assignment.check_feasible(&placement)?;
            Ok(assignment.makespan(&real).get())
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(one)).unwrap_or(Err(
            rds_core::Error::InvalidParameter {
                what: "sampling repetition panicked",
            },
        ));
        match outcome {
            Ok(mk) => {
                summary.push(mk);
                samples.push(mk);
            }
            Err(e) => skipped.push((rep, e.to_string())),
        }
    }
    Ok((Distribution { summary, samples }, skipped))
}

/// Expected value of adaptivity: mean over paired samples of
/// `(static makespan − adaptive makespan) / static makespan`.
/// Positive values quantify how much runtime flexibility (replication)
/// buys on this workload; the paper's thesis predicts it grows with `α`.
///
/// # Errors
/// Propagates strategy/realization failures.
pub fn expected_value_of_adaptivity<A: Strategy, B: Strategy>(
    static_strategy: &A,
    adaptive_strategy: &B,
    instance: &Instance,
    unc: Uncertainty,
    model: RealizationModel,
    reps: usize,
    seed: u64,
) -> Result<Summary> {
    let p_static = static_strategy.place(instance, unc)?;
    let p_adapt = adaptive_strategy.place(instance, unc)?;
    let mut eva = Summary::new();
    for rep in 0..reps {
        let mut r = rng::rng(rng::child_seed(seed, rep as u64));
        let real = model.realize(instance, unc, &mut r)?;
        let mk_s = static_strategy
            .execute(instance, &p_static, &real)?
            .makespan(&real)
            .get();
        let mk_a = adaptive_strategy
            .execute(instance, &p_adapt, &real)?
            .makespan(&real)
            .get();
        if mk_s > 0.0 {
            eva.push((mk_s - mk_a) / mk_s);
        }
    }
    Ok(eva)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_algs::{LptNoChoice, LptNoRestriction};

    fn inst() -> Instance {
        Instance::from_estimates(
            &[8.0, 7.0, 6.0, 5.0, 5.0, 4.0, 4.0, 3.0, 3.0, 2.0, 2.0, 1.0],
            4,
        )
        .unwrap()
    }

    #[test]
    fn distribution_is_reproducible_and_bounded() {
        let i = inst();
        let unc = Uncertainty::of(2.0);
        let a = sample_makespans(
            &LptNoChoice,
            &i,
            unc,
            RealizationModel::UniformFactor,
            50,
            42,
        )
        .unwrap();
        let b = sample_makespans(
            &LptNoChoice,
            &i,
            unc,
            RealizationModel::UniformFactor,
            50,
            42,
        )
        .unwrap();
        assert_eq!(a.summary.mean(), b.summary.mean());
        // Bounded by the analytic envelope.
        let placement = {
            use rds_algs::Strategy;
            LptNoChoice.place(&i, unc).unwrap()
        };
        let assignment = {
            use rds_algs::Strategy;
            LptNoChoice
                .execute(&i, &placement, &rds_core::Realization::exact(&i))
                .unwrap()
        };
        let env = crate::envelope::envelope(&i, &assignment, unc);
        assert!(a.summary.max() <= env.worst.get() + 1e-9);
        assert!(a.summary.min() >= env.best.get() - 1e-9);
    }

    #[test]
    fn eva_is_nonnegative_under_uncertainty() {
        let i = inst();
        let unc = Uncertainty::of(2.0);
        let eva = expected_value_of_adaptivity(
            &LptNoChoice,
            &LptNoRestriction,
            &i,
            unc,
            RealizationModel::TwoPoint { p_inflate: 0.3 },
            60,
            7,
        )
        .unwrap();
        assert!(
            eva.mean() > 0.0,
            "replication should help on average: {}",
            eva.mean()
        );
    }

    #[test]
    fn eva_vanishes_without_uncertainty() {
        let i = inst();
        let unc = Uncertainty::CERTAIN;
        let eva = expected_value_of_adaptivity(
            &LptNoChoice,
            &LptNoRestriction,
            &i,
            unc,
            RealizationModel::Exact,
            5,
            7,
        )
        .unwrap();
        // With exact estimates both run LPT on the truth: nearly no gap
        // (tie-breaking can still differ slightly, but not in sign).
        assert!(eva.mean().abs() < 0.05, "EVA = {}", eva.mean());
    }

    #[test]
    fn resilient_sampling_matches_fail_fast_when_nothing_fails() {
        let i = inst();
        let unc = Uncertainty::of(2.0);
        let strict = sample_makespans(
            &LptNoChoice,
            &i,
            unc,
            RealizationModel::UniformFactor,
            30,
            42,
        )
        .unwrap();
        let (resilient, skipped) = sample_makespans_resilient(
            &LptNoChoice,
            &i,
            unc,
            RealizationModel::UniformFactor,
            30,
            42,
        )
        .unwrap();
        assert!(skipped.is_empty());
        assert_eq!(strict.summary.count(), resilient.summary.count());
        assert_eq!(
            strict.summary.mean().to_bits(),
            resilient.summary.mean().to_bits()
        );
        assert_eq!(
            strict.summary.max().to_bits(),
            resilient.summary.max().to_bits()
        );
    }

    #[test]
    fn quantiles_ordered() {
        let i = inst();
        let unc = Uncertainty::of(1.5);
        let mut d = sample_makespans(
            &LptNoRestriction,
            &i,
            unc,
            RealizationModel::LogUniformFactor,
            40,
            11,
        )
        .unwrap();
        let q10 = d.quantile(0.1);
        let q90 = d.quantile(0.9);
        assert!(q10 <= q90);
        assert!(d.summary.count() == 40);
    }
}
