//! Configuration for the streaming scheduler daemon.

use rds_core::{Error, Result};
use rds_workloads::{ArrivalProcess, EstimateDistribution};

/// Full configuration of one serve run. The daemon is a pure function
/// of this struct: two runs with equal configs produce identical
/// streams, placements, and outcomes — the property crash recovery
/// leans on.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Number of machines (`>= 1`).
    pub machines: usize,
    /// Replication factor `k` while healthy (`1 <= k <= machines`).
    pub replication: usize,
    /// Replication factor under overload (`1 <= degraded <= k`).
    pub degraded_replication: usize,
    /// Hard bound on queued (admitted, not yet started) tasks.
    pub queue_cap: usize,
    /// Depth at which replication degrades (enter Backpressure).
    pub degrade_hi: usize,
    /// Depth at which full replication is restored (hysteresis).
    pub degrade_lo: usize,
    /// Depth at which deadline-based shedding engages.
    pub shed_hi: usize,
    /// Depth at which shedding disengages (hysteresis).
    pub shed_lo: usize,
    /// Deadline slack: `deadline = arrival + deadline_factor · estimate`.
    pub deadline_factor: f64,
    /// Uncertainty factor `α >= 1`: actual time is `estimate · f` with
    /// `f` drawn per attempt from `[1/α, α]`.
    pub alpha: f64,
    /// Per-attempt failure probability in `[0, 1)`; failed attempts
    /// retry with watchdog backoff.
    pub fail_rate: f64,
    /// Attempts before a task is journaled as `failed` (`>= 1`).
    pub max_attempts: u32,
    /// Journal records buffered between fsyncs (`>= 1`).
    pub fsync_every: usize,
    /// Seed for the arrival stream, realization draws, and reservoirs.
    pub seed: u64,
    /// Arrival-time process.
    pub process: ArrivalProcess,
    /// Estimate distribution revealed on arrival.
    pub estimates: EstimateDistribution,
    /// Number of arrivals the generator produces.
    pub count: u64,
}

impl ServeConfig {
    /// A config with production-shaped defaults: Poisson arrivals at
    /// `rate`, uniform estimates, cap 1024 with watermarks at
    /// 1/2 (degrade) and 3/4 (shed) of cap.
    pub fn poisson(machines: usize, replication: usize, rate: f64, count: u64) -> Self {
        ServeConfig {
            machines,
            replication,
            degraded_replication: 1,
            queue_cap: 1024,
            degrade_hi: 512,
            degrade_lo: 384,
            shed_hi: 768,
            shed_lo: 640,
            deadline_factor: 50.0,
            alpha: 1.5,
            fail_rate: 0.0,
            max_attempts: 3,
            fsync_every: 64,
            seed: 42,
            process: ArrivalProcess::Poisson { rate },
            estimates: EstimateDistribution::Uniform { lo: 0.5, hi: 1.5 },
            count,
        }
    }

    /// Validates every field against its documented domain.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] / [`Error::NoMachines`] with the
    /// violated precondition.
    pub fn validate(&self) -> Result<()> {
        fn bad(what: &'static str) -> Result<()> {
            Err(Error::InvalidParameter { what })
        }
        if self.machines == 0 {
            return Err(Error::NoMachines);
        }
        if !(1 <= self.replication && self.replication <= self.machines) {
            return Err(Error::BadGroupCount {
                k: self.replication,
                m: self.machines,
            });
        }
        if !(1 <= self.degraded_replication && self.degraded_replication <= self.replication) {
            return bad("degraded_replication must satisfy 1 <= degraded <= replication");
        }
        if self.queue_cap == 0 {
            return bad("queue_cap must be >= 1");
        }
        if !(self.degrade_lo <= self.degrade_hi && self.degrade_hi <= self.shed_hi) {
            return bad("watermarks must satisfy degrade_lo <= degrade_hi <= shed_hi");
        }
        if !(self.shed_lo <= self.shed_hi && self.shed_hi <= self.queue_cap) {
            return bad("watermarks must satisfy shed_lo <= shed_hi <= queue_cap");
        }
        if !(self.deadline_factor.is_finite() && self.deadline_factor > 0.0) {
            return bad("deadline_factor must be finite and > 0");
        }
        if !(self.alpha.is_finite() && self.alpha >= 1.0) {
            return Err(Error::AlphaOutOfRange { alpha: self.alpha });
        }
        if !(self.fail_rate.is_finite() && (0.0..1.0).contains(&self.fail_rate)) {
            return bad("fail_rate must be in [0, 1)");
        }
        if self.max_attempts == 0 {
            return bad("max_attempts must be >= 1");
        }
        if self.fsync_every == 0 {
            return bad("fsync_every must be >= 1");
        }
        self.process.validate()?;
        self.estimates.validate()?;
        Ok(())
    }

    /// Canonical parameter string recorded in the journal meta line —
    /// resuming against a journal written under a different config is
    /// rejected before any replay happens.
    pub fn params(&self) -> String {
        format!(
            "m={} k={} kd={} cap={} dg={}..{} sh={}..{} dl={} a={} fr={} att={} seed={} n={} proc={:?} est={:?}",
            self.machines,
            self.replication,
            self.degraded_replication,
            self.queue_cap,
            self.degrade_lo,
            self.degrade_hi,
            self.shed_lo,
            self.shed_hi,
            self.deadline_factor,
            self.alpha,
            self.fail_rate,
            self.max_attempts,
            self.seed,
            self.count,
            self.process,
            self.estimates,
        )
    }

    /// FNV-1a digest of [`Self::params`], the journal's config identity.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.params().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_shape_is_valid() {
        ServeConfig::poisson(8, 2, 4.0, 1000).validate().unwrap();
    }

    #[test]
    fn watermark_order_is_enforced() {
        let mut c = ServeConfig::poisson(8, 2, 4.0, 10);
        c.degrade_hi = 900;
        c.shed_hi = 800;
        assert!(c.validate().is_err());
        let mut c = ServeConfig::poisson(8, 2, 4.0, 10);
        c.shed_hi = c.queue_cap + 1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn replication_bounds() {
        assert!(matches!(
            ServeConfig::poisson(4, 5, 1.0, 1).validate(),
            Err(Error::BadGroupCount { k: 5, m: 4 })
        ));
        let mut c = ServeConfig::poisson(4, 2, 1.0, 1);
        c.degraded_replication = 3;
        assert!(c.validate().is_err());
    }

    #[test]
    fn digest_tracks_every_field() {
        let a = ServeConfig::poisson(8, 2, 4.0, 1000);
        let mut b = a.clone();
        assert_eq!(a.digest(), b.digest());
        b.seed = 43;
        assert_ne!(a.digest(), b.digest());
        let mut c = a.clone();
        c.fail_rate = 0.01;
        assert_ne!(a.digest(), c.digest());
    }
}
