//! The persistent event-loop scheduler.
//!
//! The daemon advances a virtual clock over three merged event sources
//! — task arrivals, machine completions ([`rds_sim::event::EventQueue`],
//! the same min-heap the batch engine runs on), and retry timers — and
//! keeps **bounded state**: a task table capped by the admission queue
//! bound, per-machine FIFO queues with lazy deletion and periodic
//! compaction (the streaming analogue of the `PlacementIndex` cursor
//! discipline from PR 4), and fixed-size reservoirs for statistics.
//! Nothing in the loop grows with the length of the stream.
//!
//! Placement is incremental chained declustering: each admitted task is
//! replicated on `k` ring-consecutive machines starting from the least
//! loaded, and whichever replica idles first runs it — the streaming
//! form of the paper's grouped placement, with `k` degrading under
//! overload (see [`crate::overload`]).
//!
//! Determinism: every decision is a function of the config and the
//! virtual clock — arrival stream, per-`(seq, attempt)` realization
//! draws, and backoff jitter are all keyed off `cfg.seed`. Two runs of
//! the same config produce identical histories, which is what makes
//! journal replay-with-dedup a correct crash-recovery strategy.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::path::Path;

use rand::Rng;
use rds_core::{Error, MachineId, Result, TaskId, Time};
use rds_par::WatchdogPolicy;
use rds_sim::event::{EventQueue, IdleEvent};
use rds_workloads::rng as wrng;
use rds_workloads::ArrivalGen;

use crate::config::ServeConfig;
use crate::journal::{DrainRecord, ServeJournal, TerminalKind, TerminalRecord};
use crate::overload::{Admission, OverloadState, OverloadTracker, Rejection};
use crate::stats::{BoundedSeries, Reservoir, StatsDigest};

/// Seed salt for realization draws (decorrelates them from the arrival
/// stream, which consumes the raw seed).
const REALIZE_SALT: u64 = 0x9c2f_31d6_a0b4_77e1;

/// What the control callback tells the loop to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep running.
    Continue,
    /// Close intake and run down to empty (SIGTERM path).
    Drain,
    /// Stop immediately without draining or syncing — the in-process
    /// stand-in for SIGKILL (unsynced journal tail is lost).
    Halt,
}

/// Liveness/readiness snapshot handed to the control callback and the
/// line-protocol `stat` command.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Health {
    /// Current overload state.
    pub state: OverloadState,
    /// Queued (admitted, not started) tasks.
    pub depth: usize,
    /// Tasks currently running on machines.
    pub running: usize,
    /// Virtual clock.
    pub now: f64,
    /// Events processed so far (monotone — the liveness signal).
    pub events: u64,
    /// Tasks admitted so far.
    pub admitted: u64,
    /// Tasks completed so far.
    pub completed: u64,
}

impl Health {
    /// Readiness: the daemon accepts new work.
    pub fn ready(&self) -> bool {
        self.state < OverloadState::Draining
    }

    /// One-line render for `stat` and `--status-every`.
    pub fn line(&self) -> String {
        format!(
            "state={} ready={} depth={} running={} admitted={} completed={} t={:.3} events={}",
            self.state.label(),
            self.ready(),
            self.depth,
            self.running,
            self.admitted,
            self.completed,
            self.now,
            self.events,
        )
    }
}

/// Final accounting of one serve run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Tasks admitted into the queue.
    pub admitted: u64,
    /// Tasks completed successfully.
    pub completed: u64,
    /// Tasks shed by deadline-based load shedding.
    pub shed: u64,
    /// Tasks that exhausted their retry budget.
    pub failed: u64,
    /// Arrivals rejected: queue at cap.
    pub rejected_full: u64,
    /// Arrivals rejected: deadline provably unmeetable while shedding.
    pub rejected_deadline: u64,
    /// Arrivals rejected: intake closed while draining.
    pub rejected_draining: u64,
    /// Failed attempts that were re-queued with backoff.
    pub retries: u64,
    /// Times the daemon entered a degraded state from Accepting.
    pub degraded_entries: u64,
    /// Total overload-state transitions.
    pub transitions: u64,
    /// Largest queue depth observed.
    pub max_depth: usize,
    /// State when the loop exited.
    pub final_state: OverloadState,
    /// Virtual time of the last processed event.
    pub makespan: f64,
    /// `true` when the run was halted (crash stand-in) rather than
    /// drained or completed.
    pub halted: bool,
    /// Events processed.
    pub events: u64,
    /// Response time (arrival → first dispatch).
    pub wait: StatsDigest,
    /// Flow time (arrival → completion).
    pub flow: StatsDigest,
    /// Queue depth over virtual time (bounded sample).
    pub depth_series: Vec<(f64, f64)>,
    /// Flow time over completion time (bounded sample).
    pub flow_series: Vec<(f64, f64)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Queued,
    Running,
    RetryWait,
}

#[derive(Debug)]
struct TaskState {
    estimate: f64,
    arrival: f64,
    deadline: f64,
    attempts: u32,
    status: Status,
    attempt_failed: bool,
    replicas: Vec<u32>,
}

#[derive(Debug, Default)]
struct Counters {
    admitted: u64,
    completed: u64,
    shed: u64,
    failed: u64,
    rejected_full: u64,
    rejected_deadline: u64,
    rejected_draining: u64,
    retries: u64,
    max_depth: usize,
}

/// The streaming scheduler. See the module docs for the architecture.
#[derive(Debug)]
pub struct Daemon {
    cfg: ServeConfig,
    backoff: WatchdogPolicy,
    journal: Option<ServeJournal>,
    gen: Option<ArrivalGen>,
    pending_arrival: Option<rds_workloads::Arrival>,
    now: f64,
    next_seq: u64,
    tracker: OverloadTracker,
    tasks: HashMap<u64, TaskState>,
    queues: Vec<VecDeque<u64>>,
    queued_load: Vec<usize>,
    parked: Vec<bool>,
    running: usize,
    depth: usize,
    events: EventQueue,
    retries: BinaryHeap<Reverse<(u64, u64)>>,
    est_sum: f64,
    counters: Counters,
    wait_stats: Reservoir,
    flow_stats: Reservoir,
    depth_series: BoundedSeries,
    flow_series: BoundedSeries,
    events_processed: u64,
}

impl Daemon {
    /// A daemon with no journal (tests, line protocol without
    /// persistence).
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] and friends from config validation.
    pub fn new(cfg: ServeConfig) -> Result<Self> {
        Self::build(cfg, None)
    }

    /// A daemon journaling to `path`. With `resume`, an existing
    /// journal is scanned and replay-dedup takes over; without, the
    /// file is truncated.
    ///
    /// # Errors
    /// Config validation plus journal open/scan errors.
    pub fn with_journal(cfg: ServeConfig, path: impl AsRef<Path>, resume: bool) -> Result<Self> {
        let journal = if resume {
            ServeJournal::resume(path.as_ref(), &cfg)?
        } else {
            ServeJournal::create(path.as_ref(), &cfg)?
        };
        Self::build(cfg, Some(journal))
    }

    fn build(cfg: ServeConfig, journal: Option<ServeJournal>) -> Result<Self> {
        cfg.validate()?;
        if cfg.count >= u64::from(u32::MAX) {
            return Err(Error::InvalidParameter {
                what: "count must fit a u32 task id",
            });
        }
        let m = cfg.machines;
        let mut gen = ArrivalGen::new(
            cfg.process.clone(),
            cfg.estimates.clone(),
            cfg.count,
            cfg.seed,
        )?;
        let pending_arrival = gen.next_arrival();
        let backoff = WatchdogPolicy {
            max_attempts: cfg.max_attempts,
            ..WatchdogPolicy::default()
        };
        let tracker = OverloadTracker::new(&cfg);
        let seed = cfg.seed;
        Ok(Daemon {
            backoff,
            journal,
            gen: Some(gen),
            pending_arrival,
            now: 0.0,
            next_seq: 0,
            tracker,
            tasks: HashMap::new(),
            queues: vec![VecDeque::new(); m],
            queued_load: vec![0; m],
            parked: vec![true; m],
            running: 0,
            depth: 0,
            events: EventQueue::new(),
            retries: BinaryHeap::new(),
            est_sum: 0.0,
            counters: Counters::default(),
            wait_stats: Reservoir::new(4096, wrng::child_seed(seed, 1)),
            flow_stats: Reservoir::new(4096, wrng::child_seed(seed, 2)),
            depth_series: BoundedSeries::new(512),
            flow_series: BoundedSeries::new(512),
            events_processed: 0,
            cfg,
        })
    }

    /// Switches off the internal arrival generator — the line-protocol
    /// mode where arrivals come from [`Daemon::offer`] instead.
    pub fn external_arrivals(&mut self) {
        self.gen = None;
        self.pending_arrival = None;
    }

    /// Current health snapshot.
    pub fn health(&self) -> Health {
        Health {
            state: self.tracker.state(),
            depth: self.depth,
            running: self.running,
            now: self.now,
            events: self.events_processed,
            admitted: self.counters.admitted,
            completed: self.counters.completed,
        }
    }

    /// Virtual clock.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The replication factor in force right now (degrades under
    /// overload).
    fn effective_k(&self) -> usize {
        if self.tracker.degraded() {
            self.cfg.degraded_replication
        } else {
            self.cfg.replication
        }
    }

    // -- admission ----------------------------------------------------

    /// Offers one arrival with the given estimate at the current
    /// virtual time. This is the admission path both the internal
    /// generator and the line protocol go through.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] for a non-finite or negative
    /// estimate.
    pub fn offer(&mut self, estimate: f64) -> Result<Admission> {
        if !(estimate.is_finite() && estimate > 0.0) {
            return Err(Error::InvalidParameter {
                what: "estimate must be finite and > 0",
            });
        }
        if self.tracker.state() == OverloadState::Draining {
            self.counters.rejected_draining += 1;
            self.obs_reject();
            return Ok(Admission::Rejected(Rejection::Draining));
        }
        if self.depth >= self.cfg.queue_cap {
            self.counters.rejected_full += 1;
            self.obs_reject();
            return Ok(Admission::Rejected(Rejection::QueueFull));
        }
        let deadline = self.now + self.cfg.deadline_factor * estimate;
        if self.tracker.state() == OverloadState::Shedding {
            let avg = if self.counters.admitted == 0 {
                estimate
            } else {
                self.est_sum / self.counters.admitted as f64
            };
            let projected_start = self.now + self.depth as f64 * avg / self.cfg.machines as f64;
            if projected_start > deadline {
                self.counters.rejected_deadline += 1;
                self.obs_reject();
                return Ok(Admission::Rejected(Rejection::DeadlineUnmeetable));
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.counters.admitted += 1;
        self.est_sum += estimate;
        let replicas = self.place(self.effective_k());
        self.tasks.insert(
            seq,
            TaskState {
                estimate,
                arrival: self.now,
                deadline,
                attempts: 0,
                status: Status::Queued,
                attempt_failed: false,
                replicas: replicas.clone(),
            },
        );
        self.enqueue(seq, &replicas);
        if rds_obs::enabled() {
            rds_obs::global().counter("serve.admitted").inc();
        }
        self.after_depth_change();
        Ok(Admission::Admitted(seq))
    }

    fn obs_reject(&self) {
        if rds_obs::enabled() {
            rds_obs::global().counter("serve.rejected").inc();
        }
    }

    /// Chained-declustering placement: `k` ring-consecutive machines
    /// starting from the least-loaded one (ties → smallest index).
    fn place(&self, k: usize) -> Vec<u32> {
        let m = self.cfg.machines;
        let start = (0..m)
            .min_by_key(|&i| (self.queued_load[i], i))
            .unwrap_or(0);
        (0..k).map(|j| ((start + j) % m) as u32).collect()
    }

    fn enqueue(&mut self, seq: u64, replicas: &[u32]) {
        self.depth += 1;
        self.counters.max_depth = self.counters.max_depth.max(self.depth);
        for &r in replicas {
            let ri = r as usize;
            self.queues[ri].push_back(seq);
            self.queued_load[ri] += 1;
            // Compaction bound: lazy deletion may leave stale entries
            // behind a busy machine; purge once the queue outgrows the
            // cap by a wide factor so per-machine state stays bounded.
            if self.queues[ri].len() > self.cfg.queue_cap * 4 + 64 {
                let tasks = &self.tasks;
                self.queues[ri]
                    .retain(|s| tasks.get(s).is_some_and(|t| t.status == Status::Queued));
            }
            if self.parked[ri] {
                self.parked[ri] = false;
                self.events.push(IdleEvent {
                    time: Time::of(self.now),
                    machine: MachineId::new(ri),
                    finished: None,
                    actual: Time::ZERO,
                });
            }
        }
        self.depth_series.push(self.now, self.depth as f64);
        if rds_obs::enabled() {
            rds_obs::global()
                .histogram("serve.queue_depth")
                .record_nanos(self.depth as u64);
        }
    }

    fn after_depth_change(&mut self) {
        if let Some(next) = self.tracker.observe_depth(self.depth) {
            if rds_obs::enabled() {
                let g = rds_obs::global();
                g.counter("serve.transitions").inc();
                if next > OverloadState::Accepting && next < OverloadState::Draining {
                    g.counter("serve.degraded").inc();
                }
            }
        }
    }

    // -- dispatch / completion ---------------------------------------

    /// Pops queued work for a newly idle machine; starts at most one
    /// task, shedding expired ones along the way while in Shedding.
    fn dispatch(&mut self, mi: usize) -> Result<()> {
        loop {
            let Some(seq) = self.queues[mi].pop_front() else {
                self.parked[mi] = true;
                return Ok(());
            };
            let Some(task) = self.tasks.get(&seq) else {
                continue; // lazily deleted
            };
            if task.status != Status::Queued {
                continue; // started or waiting elsewhere
            }
            let expired = task.deadline < self.now;
            if self.tracker.state() >= OverloadState::Shedding && expired {
                self.shed(seq)?;
                continue;
            }
            self.start(seq, mi);
            return Ok(());
        }
    }

    fn start(&mut self, seq: u64, mi: usize) {
        let alpha = self.cfg.alpha;
        let fail_rate = self.cfg.fail_rate;
        let task = self.tasks.get_mut(&seq).expect("started task exists");
        task.status = Status::Running;
        task.attempts += 1;
        // Per-(seq, attempt) realization draw: deterministic across
        // replays, independent across attempts.
        let mut r = wrng::rng(wrng::child_seed(
            wrng::child_seed(self.cfg.seed ^ REALIZE_SALT, seq),
            u64::from(task.attempts),
        ));
        let factor = if alpha == 1.0 {
            1.0
        } else {
            r.gen_range(1.0 / alpha..=alpha)
        };
        task.attempt_failed = fail_rate > 0.0 && r.gen::<f64>() < fail_rate;
        let duration = task.estimate * factor;
        if task.attempts == 1 {
            let wait = self.now - task.arrival;
            self.wait_stats.push(wait);
        }
        let replicas = task.replicas.clone();
        self.events.push(IdleEvent {
            time: Time::of(self.now + duration),
            machine: MachineId::new(mi),
            finished: Some(TaskId::new(seq as usize)),
            actual: Time::of(duration),
        });
        self.depth -= 1;
        self.running += 1;
        for &r in &replicas {
            self.queued_load[r as usize] = self.queued_load[r as usize].saturating_sub(1);
        }
        self.after_depth_change();
    }

    fn shed(&mut self, seq: u64) -> Result<()> {
        let task = self.tasks.remove(&seq).expect("shed task exists");
        self.depth -= 1;
        for &r in &task.replicas {
            self.queued_load[r as usize] = self.queued_load[r as usize].saturating_sub(1);
        }
        self.counters.shed += 1;
        if rds_obs::enabled() {
            rds_obs::global().counter("serve.shed").inc();
        }
        self.journal_terminal(&TerminalRecord {
            seq,
            kind: TerminalKind::Shed,
            arrival: task.arrival,
            at: self.now,
            attempts: task.attempts,
            machine: None,
        })?;
        self.after_depth_change();
        Ok(())
    }

    fn complete(&mut self, seq: u64, mi: usize) -> Result<()> {
        self.running -= 1;
        let give_up;
        {
            let task = self.tasks.get_mut(&seq).expect("completed task exists");
            debug_assert_eq!(task.status, Status::Running);
            if task.attempt_failed {
                self.counters.retries += 1;
                if rds_obs::enabled() {
                    rds_obs::global().counter("serve.retries").inc();
                }
                give_up = task.attempts >= self.cfg.max_attempts;
                if !give_up {
                    task.status = Status::RetryWait;
                    let delay = self
                        .backoff
                        .backoff_delay(task.attempts, wrng::child_seed(self.cfg.seed, seq))
                        .as_secs_f64();
                    let at = self.now + delay;
                    self.retries.push(Reverse((at.to_bits(), seq)));
                    return Ok(());
                }
            } else {
                give_up = false;
            }
        }
        let task = self.tasks.remove(&seq).expect("terminal task exists");
        if give_up {
            self.counters.failed += 1;
            self.journal_terminal(&TerminalRecord {
                seq,
                kind: TerminalKind::Failed,
                arrival: task.arrival,
                at: self.now,
                attempts: task.attempts,
                machine: None,
            })?;
            return Ok(());
        }
        self.counters.completed += 1;
        let flow = self.now - task.arrival;
        self.flow_stats.push(flow);
        self.flow_series.push(self.now, flow);
        if rds_obs::enabled() {
            let g = rds_obs::global();
            g.counter("serve.completed").inc();
            g.histogram("serve.response_time")
                .record(std::time::Duration::from_secs_f64(flow.max(0.0)));
        }
        self.journal_terminal(&TerminalRecord {
            seq,
            kind: TerminalKind::Done,
            arrival: task.arrival,
            at: self.now,
            attempts: task.attempts,
            machine: Some(mi),
        })?;
        Ok(())
    }

    fn requeue_retry(&mut self, seq: u64) {
        let Some(task) = self.tasks.get_mut(&seq) else {
            return;
        };
        debug_assert_eq!(task.status, Status::RetryWait);
        task.status = Status::Queued;
        let replicas = task.replicas.clone();
        self.enqueue(seq, &replicas);
        self.after_depth_change();
    }

    fn journal_terminal(&mut self, rec: &TerminalRecord) -> Result<()> {
        if let Some(j) = self.journal.as_mut() {
            j.append_terminal(rec)?;
        }
        Ok(())
    }

    // -- the event loop ----------------------------------------------

    /// Closes intake: future arrivals are not consumed, and
    /// line-protocol offers get typed `Draining` rejections. If an
    /// arrival was already pulled from the generator but not yet
    /// admitted, it is counted as a draining rejection.
    pub fn begin_drain(&mut self) {
        if self.tracker.drain() {
            if self.pending_arrival.take().is_some() {
                self.counters.rejected_draining += 1;
                self.obs_reject();
            }
            if rds_obs::enabled() {
                rds_obs::global().counter("serve.transitions").inc();
            }
        }
    }

    /// `true` when nothing is queued, running, or waiting to retry and
    /// no arrival is pending.
    pub fn quiesced(&self) -> bool {
        self.pending_arrival.is_none()
            && self.depth == 0
            && self.running == 0
            && self.retries.is_empty()
    }

    /// Processes the single earliest event. Returns `false` when there
    /// was nothing to process. Event-order tie-break at equal times:
    /// machine events, then retries, then arrivals — fixed so replays
    /// are deterministic.
    fn step_one(&mut self) -> Result<bool> {
        let t_evt = self.events.peek().map(|e| e.time.get());
        let t_rty = self
            .retries
            .peek()
            .map(|Reverse((b, _))| f64::from_bits(*b));
        let t_arr = self.pending_arrival.as_ref().map(|a| a.at);
        let next = [t_evt, t_rty, t_arr]
            .into_iter()
            .flatten()
            .fold(f64::INFINITY, f64::min);
        if !next.is_finite() {
            return Ok(false);
        }
        self.events_processed += 1;
        if t_evt == Some(next) {
            let ev = self.events.pop().expect("peeked event");
            self.now = ev.time.get();
            if let Some(tid) = ev.finished {
                self.complete(tid.index() as u64, ev.machine.index())?;
            }
            self.dispatch(ev.machine.index())?;
        } else if t_rty == Some(next) {
            let Reverse((bits, seq)) = self.retries.pop().expect("peeked retry");
            self.now = f64::from_bits(bits);
            self.requeue_retry(seq);
        } else {
            let a = self.pending_arrival.take().expect("peeked arrival");
            self.now = a.at;
            self.pending_arrival = self.gen.as_mut().and_then(ArrivalGen::next_arrival);
            self.offer(a.estimate)?;
        }
        Ok(true)
    }

    /// Processes all events up to virtual time `t`, then advances the
    /// clock to `t` (line-protocol `step`).
    ///
    /// # Errors
    /// Journal I/O errors.
    pub fn step_until(&mut self, t: f64) -> Result<()> {
        loop {
            let due = [
                self.events.peek().map(|e| e.time.get()),
                self.retries
                    .peek()
                    .map(|Reverse((b, _))| f64::from_bits(*b)),
                self.pending_arrival.as_ref().map(|a| a.at),
            ]
            .into_iter()
            .flatten()
            .fold(f64::INFINITY, f64::min);
            if due > t {
                break;
            }
            if !self.step_one()? {
                break;
            }
        }
        if t > self.now {
            self.now = t;
        }
        Ok(())
    }

    /// Runs the event loop to completion, polling `control` between
    /// events. Returns the final report; the journal (if any) is sealed
    /// with a drain record unless the run was halted.
    ///
    /// # Errors
    /// Journal I/O, or [`Error::InvariantViolation`] if the terminal
    /// accounting does not add up on a clean finish.
    pub fn run(&mut self, control: &mut dyn FnMut(&Health) -> Control) -> Result<ServeReport> {
        let _span = rds_obs::span("serve.run");
        loop {
            match control(&self.health()) {
                Control::Continue => {}
                Control::Drain => self.begin_drain(),
                Control::Halt => return self.finish(true),
            }
            if !self.step_one()? {
                break;
            }
        }
        self.finish(false)
    }

    /// Closes intake and runs down to empty (line-protocol `drain`).
    ///
    /// # Errors
    /// Same as [`Daemon::run`].
    pub fn drain_now(&mut self) -> Result<ServeReport> {
        self.begin_drain();
        while self.step_one()? {}
        self.finish(false)
    }

    fn finish(&mut self, halted: bool) -> Result<ServeReport> {
        if halted {
            // SIGKILL stand-in: the unsynced tail evaporates with the
            // process.
            if let Some(j) = self.journal.as_mut() {
                j.drop_unsynced();
            }
        } else {
            let accounted = self.counters.completed + self.counters.shed + self.counters.failed;
            if accounted != self.counters.admitted || !self.tasks.is_empty() {
                return Err(Error::InvariantViolation {
                    invariant: "serve-accounting",
                    detail: format!(
                        "admitted {} != completed {} + shed {} + failed {} (live tasks: {})",
                        self.counters.admitted,
                        self.counters.completed,
                        self.counters.shed,
                        self.counters.failed,
                        self.tasks.len(),
                    ),
                });
            }
            if let Some(j) = self.journal.as_mut() {
                j.seal(&DrainRecord {
                    at: self.now,
                    admitted: self.counters.admitted,
                    completed: self.counters.completed,
                    shed: self.counters.shed,
                    failed: self.counters.failed,
                })?;
            }
        }
        Ok(ServeReport {
            admitted: self.counters.admitted,
            completed: self.counters.completed,
            shed: self.counters.shed,
            failed: self.counters.failed,
            rejected_full: self.counters.rejected_full,
            rejected_deadline: self.counters.rejected_deadline,
            rejected_draining: self.counters.rejected_draining,
            retries: self.counters.retries,
            degraded_entries: self.tracker.degraded_entries,
            transitions: self.tracker.transitions,
            max_depth: self.counters.max_depth,
            final_state: self.tracker.state(),
            makespan: self.now,
            halted,
            events: self.events_processed,
            wait: self.wait_stats.digest(),
            flow: self.flow_stats.digest(),
            depth_series: self.depth_series.points().to_vec(),
            flow_series: self.flow_series.points().to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_workloads::{ArrivalProcess, EstimateDistribution};

    fn run_all(cfg: ServeConfig) -> ServeReport {
        Daemon::new(cfg)
            .unwrap()
            .run(&mut |_| Control::Continue)
            .unwrap()
    }

    #[test]
    fn completes_every_task_under_light_load() {
        let cfg = ServeConfig::poisson(8, 2, 2.0, 500);
        let r = run_all(cfg);
        assert_eq!(r.admitted, 500);
        assert_eq!(r.completed, 500);
        assert_eq!(r.shed + r.failed, 0);
        assert_eq!(r.final_state, OverloadState::Accepting);
        assert!(r.flow.mean > 0.0);
        assert!(r.makespan > 0.0);
        assert!(!r.halted);
    }

    #[test]
    fn identical_configs_replay_identically() {
        let cfg = ServeConfig::poisson(4, 2, 6.0, 300);
        let a = run_all(cfg.clone());
        let b = run_all(cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn overload_degrades_and_sheds_without_panicking() {
        // 4 machines × unit work, arrivals at 2× service capacity, tiny
        // queue and tight deadlines: the daemon must shed, not die.
        let mut cfg = ServeConfig::poisson(4, 2, 8.0, 3000);
        cfg.queue_cap = 64;
        cfg.degrade_hi = 32;
        cfg.degrade_lo = 24;
        cfg.shed_hi = 48;
        cfg.shed_lo = 40;
        cfg.deadline_factor = 4.0;
        cfg.estimates = EstimateDistribution::Identical { value: 1.0 };
        let r = run_all(cfg);
        assert!(r.degraded_entries > 0, "never degraded: {r:?}");
        assert!(
            r.shed + r.rejected_deadline + r.rejected_full > 0,
            "overload never shed or rejected: {r:?}"
        );
        assert_eq!(r.admitted, r.completed + r.shed + r.failed);
        assert!(
            r.max_depth <= 64 + 4,
            "depth blew past cap: {}",
            r.max_depth
        );
    }

    #[test]
    fn failures_retry_and_eventually_exhaust() {
        let mut cfg = ServeConfig::poisson(4, 1, 1.0, 400);
        cfg.fail_rate = 0.3;
        cfg.max_attempts = 2;
        let r = run_all(cfg);
        assert!(r.retries > 0);
        assert!(r.failed > 0, "with 30% fail and 2 attempts some must fail");
        assert_eq!(r.admitted, r.completed + r.shed + r.failed);
    }

    #[test]
    fn drain_control_closes_intake_and_quiesces() {
        let cfg = ServeConfig::poisson(4, 2, 5.0, 10_000);
        let mut daemon = Daemon::new(cfg).unwrap();
        let mut polls = 0u64;
        let r = daemon
            .run(&mut |_h| {
                polls += 1;
                if polls == 500 {
                    Control::Drain
                } else {
                    Control::Continue
                }
            })
            .unwrap();
        assert!(r.admitted < 10_000, "drain should cut the stream short");
        assert_eq!(r.admitted, r.completed + r.shed + r.failed);
        assert_eq!(r.final_state, OverloadState::Draining);
    }

    #[test]
    fn offers_after_drain_are_rejected_typed() {
        let mut cfg = ServeConfig::poisson(2, 1, 1.0, 0);
        cfg.count = 0;
        let mut d = Daemon::new(cfg).unwrap();
        d.external_arrivals();
        assert!(matches!(d.offer(1.0).unwrap(), Admission::Admitted(0)));
        d.begin_drain();
        assert_eq!(
            d.offer(1.0).unwrap(),
            Admission::Rejected(Rejection::Draining)
        );
        let r = d.drain_now().unwrap();
        assert_eq!(r.admitted, 1);
        assert_eq!(r.completed, 1);
        assert_eq!(r.rejected_draining, 1);
    }

    #[test]
    fn queue_cap_rejects_typed_when_full() {
        let mut cfg = ServeConfig::poisson(1, 1, 1.0, 0);
        cfg.queue_cap = 4;
        cfg.degrade_hi = 2;
        cfg.degrade_lo = 1;
        cfg.shed_hi = 3;
        cfg.shed_lo = 2;
        cfg.deadline_factor = 1000.0;
        let mut d = Daemon::new(cfg).unwrap();
        d.external_arrivals();
        let mut rejected_full = 0;
        for _ in 0..10 {
            if let Admission::Rejected(Rejection::QueueFull) = d.offer(1.0).unwrap() {
                rejected_full += 1;
            }
        }
        assert!(rejected_full > 0);
        let r = d.drain_now().unwrap();
        assert_eq!(r.rejected_full, rejected_full);
        assert_eq!(r.admitted, r.completed + r.shed + r.failed);
    }

    #[test]
    fn sustains_a_large_stream_with_bounded_state() {
        // The acceptance-bar shape scaled into unit-test time: high
        // arrival churn, bounded queue, everything accounted for.
        let mut cfg = ServeConfig::poisson(16, 2, 14.0, 20_000);
        cfg.queue_cap = 256;
        cfg.degrade_hi = 128;
        cfg.degrade_lo = 96;
        cfg.shed_hi = 192;
        cfg.shed_lo = 160;
        let r = run_all(cfg);
        assert_eq!(r.admitted, r.completed + r.shed + r.failed);
        assert!(r.max_depth <= 256 + 16);
        assert!(r.completed > 15_000);
    }

    #[test]
    fn bursty_overload_recovers_replication() {
        let mut cfg = ServeConfig::poisson(4, 2, 1.0, 4000);
        cfg.process = ArrivalProcess::Bursty {
            base_rate: 1.0,
            burst_rate: 20.0,
            period: 50.0,
            burst_fraction: 0.2,
        };
        cfg.queue_cap = 128;
        cfg.degrade_hi = 48;
        cfg.degrade_lo = 16;
        cfg.shed_hi = 96;
        cfg.shed_lo = 64;
        cfg.estimates = EstimateDistribution::Identical { value: 1.0 };
        let r = run_all(cfg);
        // Bursts push it into degradation; calm phases recover it —
        // more than one degraded entry proves the k was restored.
        assert!(r.degraded_entries >= 2, "no degrade/recover cycles: {r:?}");
        assert_eq!(r.admitted, r.completed + r.shed + r.failed);
    }
}
