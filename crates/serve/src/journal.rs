//! The serve journal: an append-only flat-JSON log of every *terminal*
//! task outcome, the daemon's source of crash-recovery truth.
//!
//! Record kinds (one object per line, [`rds_par::wire`] format):
//!
//! - `serve-meta` — first line; config digest + params. Resuming
//!   against a journal written under a different config is rejected.
//! - `done` — task completed: seq, arrival/start/finish, machine,
//!   attempts.
//! - `shed` — task dropped by deadline-based load shedding: seq,
//!   arrival, deadline, shed time.
//! - `failed` — task exhausted its retry budget: seq, arrival, attempts.
//! - `drain` — terminator: the run quiesced cleanly with these counts.
//!
//! ## Durability and recovery model
//!
//! Appends are buffered in memory and written + fsync'd every
//! [`fsync_every`](crate::ServeConfig::fsync_every) records (and at
//! drain). A SIGKILL therefore loses at most the unsynced tail — never
//! corrupts the prefix. Recovery does **deterministic replay with
//! dedup**: the daemon is a pure function of its config, so a resumed
//! run re-simulates the identical stream and simply skips appending any
//! terminal record whose seq is already on disk. The journal ends up
//! with exactly one terminal record per admitted task — none lost, none
//! doubled — which is the invariant the property tests and the CI
//! SIGKILL smoke assert.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use rds_core::{Error, Result};
use rds_par::wire::{parse_flat_object, push_f64, push_json_string, Value};

use crate::config::ServeConfig;

/// How an admitted task left the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TerminalKind {
    /// Completed successfully.
    Done,
    /// Dropped by deadline-based shedding.
    Shed,
    /// Exhausted its retry budget.
    Failed,
}

impl TerminalKind {
    fn tag(self) -> &'static str {
        match self {
            TerminalKind::Done => "done",
            TerminalKind::Shed => "shed",
            TerminalKind::Failed => "failed",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "done" => Some(TerminalKind::Done),
            "shed" => Some(TerminalKind::Shed),
            "failed" => Some(TerminalKind::Failed),
            _ => None,
        }
    }
}

/// One terminal record read back from disk.
#[derive(Debug, Clone, PartialEq)]
pub struct TerminalRecord {
    /// Admission sequence number.
    pub seq: u64,
    /// How the task left the system.
    pub kind: TerminalKind,
    /// Arrival time.
    pub arrival: f64,
    /// Completion / shed / give-up time.
    pub at: f64,
    /// Attempts consumed (0 for sheds).
    pub attempts: u32,
    /// Machine that completed it (`done` only).
    pub machine: Option<usize>,
}

/// The drain terminator, when the run quiesced cleanly.
#[derive(Debug, Clone, PartialEq)]
pub struct DrainRecord {
    /// Virtual time of quiescence.
    pub at: f64,
    /// Tasks admitted over the run.
    pub admitted: u64,
    /// Terminal counts: completed, shed, failed.
    pub completed: u64,
    /// Tasks shed.
    pub shed: u64,
    /// Tasks that exhausted retries.
    pub failed: u64,
}

/// Everything a journal file contains.
#[derive(Debug)]
pub struct ServeLog {
    /// Terminal records in append order (dedup already applied on read:
    /// first record per seq wins).
    pub records: Vec<TerminalRecord>,
    /// The drain terminator, if the run quiesced.
    pub drain: Option<DrainRecord>,
    /// Raw on-disk records that shared a seq with an earlier one. The
    /// writer's dedup makes this 0 in any journal it produced; the
    /// exactly-once property tests assert exactly that.
    pub duplicates: usize,
}

impl ServeLog {
    /// Seqs that completed, sorted.
    pub fn done_seqs(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .records
            .iter()
            .filter(|r| r.kind == TerminalKind::Done)
            .map(|r| r.seq)
            .collect();
        v.sort_unstable();
        v
    }
}

fn io_err(op: &'static str, path: &Path, e: &std::io::Error) -> Error {
    Error::Io {
        op,
        path: path.display().to_string(),
        why: e.to_string(),
    }
}

fn meta_line(cfg: &ServeConfig) -> String {
    let mut s = String::from("{\"v\":1,\"kind\":\"serve-meta\",\"digest\":");
    push_json_string(&mut s, &format!("{:016x}", cfg.digest()));
    s.push_str(",\"params\":");
    push_json_string(&mut s, &cfg.params());
    s.push_str("}\n");
    s
}

fn terminal_line(rec: &TerminalRecord) -> String {
    let mut s = String::from("{\"kind\":");
    push_json_string(&mut s, rec.kind.tag());
    s.push_str(&format!(",\"seq\":{}", rec.seq));
    s.push_str(",\"arrival\":");
    push_f64(&mut s, rec.arrival);
    s.push_str(",\"at\":");
    push_f64(&mut s, rec.at);
    s.push_str(&format!(",\"attempts\":{}", rec.attempts));
    if let Some(m) = rec.machine {
        s.push_str(&format!(",\"machine\":{m}"));
    }
    s.push_str("}\n");
    s
}

fn drain_line(rec: &DrainRecord) -> String {
    let mut s = String::from("{\"kind\":\"drain\",\"at\":");
    push_f64(&mut s, rec.at);
    s.push_str(&format!(
        ",\"admitted\":{},\"completed\":{},\"shed\":{},\"failed\":{}}}\n",
        rec.admitted, rec.completed, rec.shed, rec.failed
    ));
    s
}

fn terminal_from_map(map: &std::collections::BTreeMap<String, Value>) -> Option<TerminalRecord> {
    Some(TerminalRecord {
        seq: map.get("seq")?.as_u64()?,
        kind: TerminalKind::from_tag(map.get("kind")?.as_str()?)?,
        arrival: map.get("arrival")?.as_f64()?,
        at: map.get("at")?.as_f64()?,
        attempts: map.get("attempts")?.as_u64()? as u32,
        machine: match map.get("machine") {
            Some(v) => Some(v.as_u64()? as usize),
            None => None,
        },
    })
}

fn drain_from_map(map: &std::collections::BTreeMap<String, Value>) -> Option<DrainRecord> {
    Some(DrainRecord {
        at: map.get("at")?.as_f64()?,
        admitted: map.get("admitted")?.as_u64()?,
        completed: map.get("completed")?.as_u64()?,
        shed: map.get("shed")?.as_u64()?,
        failed: map.get("failed")?.as_u64()?,
    })
}

struct Scan {
    digest: String,
    records: Vec<TerminalRecord>,
    drain: Option<DrainRecord>,
    good_bytes: u64,
    torn: bool,
}

/// Parses a journal file, tolerating a torn final line (crash artifact)
/// but rejecting corruption anywhere else.
fn scan(path: &Path) -> Result<Scan> {
    let mut text = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| io_err("read", path, &e))?;

    let mut digest = None;
    let mut records: Vec<TerminalRecord> = Vec::new();
    let mut drain = None;
    let mut good_bytes = 0u64;
    let mut offset = 0usize;
    let mut line_no = 0usize;
    let mut rest = &text[..];
    while !rest.is_empty() {
        line_no += 1;
        let (line, consumed, terminated) = match rest.find('\n') {
            Some(i) => (&rest[..i], i + 1, true),
            None => (rest, rest.len(), false),
        };
        let is_last = offset + consumed >= text.len();
        let parsed = parse_flat_object(line).and_then(|map| {
            if line_no == 1 {
                if map.get("kind")?.as_str()? != "serve-meta" {
                    return None;
                }
                digest = Some(map.get("digest")?.as_str()?.to_string());
                Some(())
            } else if map.get("kind")?.as_str() == Some("drain") {
                drain = Some(drain_from_map(&map)?);
                Some(())
            } else {
                records.push(terminal_from_map(&map)?);
                Some(())
            }
        });
        match parsed {
            Some(()) if terminated => {
                good_bytes = (offset + consumed) as u64;
            }
            Some(()) => {
                // Parsable but the newline terminator was cut off: torn.
                if line_no == 1 {
                    digest = None;
                } else if drain.take().is_none() {
                    records.pop();
                }
            }
            None if is_last => {}
            None => {
                return Err(Error::JournalCorrupt {
                    line: line_no,
                    why: if line_no == 1 {
                        "first line is not a valid serve-meta record".to_string()
                    } else {
                        "unparsable serve record before the final line".to_string()
                    },
                });
            }
        }
        offset += consumed;
        rest = &text[offset..];
    }

    let digest = digest.ok_or(Error::JournalCorrupt {
        line: 1,
        why: "journal has no serve-meta line".to_string(),
    })?;
    let torn = good_bytes < text.len() as u64;
    Ok(Scan {
        digest,
        records,
        drain,
        good_bytes,
        torn,
    })
}

/// Buffered, batch-fsync'd writer over the serve journal.
#[derive(Debug)]
pub struct ServeJournal {
    file: File,
    path: PathBuf,
    buf: String,
    buffered: usize,
    fsync_every: usize,
    /// Terminal kinds already on disk, keyed by seq — the dedup set
    /// replay consults before appending.
    already: HashMap<u64, TerminalKind>,
}

impl ServeJournal {
    /// Creates (truncating) a fresh journal: meta line written and
    /// synced immediately, so even an instant crash leaves a valid file.
    ///
    /// # Errors
    /// [`Error::Io`] on any filesystem failure.
    pub fn create(path: impl Into<PathBuf>, cfg: &ServeConfig) -> Result<ServeJournal> {
        let path = path.into();
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).map_err(|e| io_err("create-dir", &path, &e))?;
        }
        let mut file = File::create(&path).map_err(|e| io_err("create", &path, &e))?;
        file.write_all(meta_line(cfg).as_bytes())
            .and_then(|()| file.sync_data())
            .map_err(|e| io_err("append", &path, &e))?;
        Ok(ServeJournal {
            file,
            path,
            buf: String::new(),
            buffered: 0,
            fsync_every: cfg.fsync_every.max(1),
            already: HashMap::new(),
        })
    }

    /// Opens an existing journal for crash recovery (creates a fresh one
    /// when the file does not exist). A torn final line is truncated
    /// away; the dedup set is loaded from the surviving records.
    ///
    /// # Errors
    /// - [`Error::JournalCorrupt`] for mid-file corruption;
    /// - [`Error::InvalidInstance`] when the on-disk digest disagrees
    ///   with `cfg` (the journal belongs to a different run);
    /// - [`Error::Io`] on filesystem failures.
    pub fn resume(path: impl Into<PathBuf>, cfg: &ServeConfig) -> Result<ServeJournal> {
        let path = path.into();
        if !path.exists() {
            return Self::create(path, cfg);
        }
        let scanned = scan(&path)?;
        let expect = format!("{:016x}", cfg.digest());
        if scanned.digest != expect {
            return Err(Error::InvalidInstance {
                why: format!(
                    "serve journal {} was written under config digest {} \
                     but this run has digest {expect}",
                    path.display(),
                    scanned.digest,
                ),
            });
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| io_err("open", &path, &e))?;
        if scanned.torn {
            file.set_len(scanned.good_bytes)
                .map_err(|e| io_err("truncate", &path, &e))?;
        }
        file.seek(SeekFrom::End(0))
            .map_err(|e| io_err("seek", &path, &e))?;
        let mut already = HashMap::new();
        for r in &scanned.records {
            already.entry(r.seq).or_insert(r.kind);
        }
        Ok(ServeJournal {
            file,
            path,
            buf: String::new(),
            buffered: 0,
            fsync_every: cfg.fsync_every.max(1),
            already,
        })
    }

    /// The terminal kind already journaled for `seq`, if any.
    pub fn already(&self, seq: u64) -> Option<TerminalKind> {
        self.already.get(&seq).copied()
    }

    /// Number of terminal records known (on disk + buffered).
    pub fn terminal_count(&self) -> usize {
        self.already.len()
    }

    /// Appends a terminal record unless `seq` already has one (the
    /// replay dedup). Returns `true` when the record was actually
    /// appended.
    ///
    /// # Errors
    /// [`Error::Io`] if the batch flush fails.
    pub fn append_terminal(&mut self, rec: &TerminalRecord) -> Result<bool> {
        if self.already.contains_key(&rec.seq) {
            return Ok(false);
        }
        self.already.insert(rec.seq, rec.kind);
        self.buf.push_str(&terminal_line(rec));
        self.buffered += 1;
        if rds_obs::enabled() {
            rds_obs::global().counter("serve.journal.appends").inc();
        }
        if self.buffered >= self.fsync_every {
            self.sync()?;
        }
        Ok(true)
    }

    /// Appends the drain terminator and syncs everything to disk.
    ///
    /// # Errors
    /// [`Error::Io`] on any filesystem failure.
    pub fn seal(&mut self, rec: &DrainRecord) -> Result<()> {
        self.buf.push_str(&drain_line(rec));
        self.buffered += 1;
        self.sync()
    }

    /// Flushes the buffered batch with one write + fsync.
    ///
    /// # Errors
    /// [`Error::Io`] on any filesystem failure.
    pub fn sync(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let obs = rds_obs::enabled().then(|| rds_obs::global().histogram("serve.journal.fsync"));
        let started = std::time::Instant::now();
        self.file
            .write_all(self.buf.as_bytes())
            .and_then(|()| self.file.sync_data())
            .map_err(|e| io_err("append", &self.path, &e))?;
        if let Some(h) = obs {
            h.record(started.elapsed());
        }
        self.buf.clear();
        self.buffered = 0;
        Ok(())
    }

    /// Drops the unsynced buffer — the test hook that emulates SIGKILL
    /// (a killed process loses exactly its in-memory batch; the synced
    /// prefix survives).
    pub fn drop_unsynced(&mut self) {
        self.buf.clear();
        self.buffered = 0;
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads a journal without opening it for writing, deduping by seq
    /// (first record wins, matching replay semantics).
    ///
    /// # Errors
    /// Same corruption/io errors as [`ServeJournal::resume`].
    pub fn read(path: impl AsRef<Path>) -> Result<ServeLog> {
        let scanned = scan(path.as_ref())?;
        let raw = scanned.records.len();
        let mut seen = std::collections::HashSet::new();
        let records: Vec<TerminalRecord> = scanned
            .records
            .into_iter()
            .filter(|r| seen.insert(r.seq))
            .collect();
        Ok(ServeLog {
            duplicates: raw - records.len(),
            records,
            drain: scanned.drain,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rds-serve-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn cfg() -> ServeConfig {
        ServeConfig::poisson(4, 2, 2.0, 100)
    }

    fn rec(seq: u64, kind: TerminalKind) -> TerminalRecord {
        TerminalRecord {
            seq,
            kind,
            arrival: 0.25 * seq as f64,
            at: 1.0 + seq as f64,
            attempts: 1,
            machine: (kind == TerminalKind::Done).then_some(seq as usize % 4),
        }
    }

    #[test]
    fn round_trips_records_and_drain() {
        let path = tmp("roundtrip.jsonl");
        let c = cfg();
        let mut j = ServeJournal::create(&path, &c).unwrap();
        assert!(j.append_terminal(&rec(0, TerminalKind::Done)).unwrap());
        assert!(j.append_terminal(&rec(1, TerminalKind::Shed)).unwrap());
        assert!(j.append_terminal(&rec(2, TerminalKind::Failed)).unwrap());
        j.seal(&DrainRecord {
            at: 9.0,
            admitted: 3,
            completed: 1,
            shed: 1,
            failed: 1,
        })
        .unwrap();
        let log = ServeJournal::read(&path).unwrap();
        assert_eq!(log.records.len(), 3);
        assert_eq!(log.records[0], rec(0, TerminalKind::Done));
        assert_eq!(log.records[1].machine, None);
        assert_eq!(log.drain.as_ref().unwrap().admitted, 3);
        assert_eq!(log.done_seqs(), vec![0]);
    }

    #[test]
    fn dedup_skips_existing_seqs_across_resume() {
        let path = tmp("dedup.jsonl");
        let c = cfg();
        let mut j = ServeJournal::create(&path, &c).unwrap();
        j.append_terminal(&rec(0, TerminalKind::Done)).unwrap();
        j.append_terminal(&rec(1, TerminalKind::Done)).unwrap();
        j.sync().unwrap();
        drop(j);
        let mut j = ServeJournal::resume(&path, &c).unwrap();
        assert_eq!(j.already(1), Some(TerminalKind::Done));
        // Replay re-produces seq 1; the append is suppressed.
        assert!(!j.append_terminal(&rec(1, TerminalKind::Done)).unwrap());
        assert!(j.append_terminal(&rec(2, TerminalKind::Done)).unwrap());
        j.sync().unwrap();
        let log = ServeJournal::read(&path).unwrap();
        assert_eq!(log.done_seqs(), vec![0, 1, 2]);
    }

    #[test]
    fn unsynced_tail_is_lost_and_replay_heals_it() {
        let path = tmp("tail.jsonl");
        let mut c = cfg();
        c.fsync_every = 100; // keep everything buffered
        let mut j = ServeJournal::create(&path, &c).unwrap();
        j.append_terminal(&rec(0, TerminalKind::Done)).unwrap();
        j.sync().unwrap();
        j.append_terminal(&rec(1, TerminalKind::Done)).unwrap();
        j.drop_unsynced(); // SIGKILL
        drop(j);
        let log = ServeJournal::read(&path).unwrap();
        assert_eq!(log.done_seqs(), vec![0]);
        // Resume replays both; only seq 1 is re-appended.
        let mut j = ServeJournal::resume(&path, &c).unwrap();
        assert!(!j.append_terminal(&rec(0, TerminalKind::Done)).unwrap());
        assert!(j.append_terminal(&rec(1, TerminalKind::Done)).unwrap());
        j.sync().unwrap();
        assert_eq!(ServeJournal::read(&path).unwrap().done_seqs(), vec![0, 1]);
    }

    #[test]
    fn torn_final_line_is_truncated_on_resume() {
        let path = tmp("torn.jsonl");
        let c = cfg();
        let mut j = ServeJournal::create(&path, &c).unwrap();
        j.append_terminal(&rec(0, TerminalKind::Done)).unwrap();
        j.sync().unwrap();
        drop(j);
        // Simulate a write cut mid-record.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"kind\":\"done\",\"seq\":1,\"arr").unwrap();
        drop(f);
        let j = ServeJournal::resume(&path, &c).unwrap();
        assert_eq!(j.already(0), Some(TerminalKind::Done));
        assert_eq!(j.already(1), None);
        drop(j);
        assert_eq!(ServeJournal::read(&path).unwrap().records.len(), 1);
    }

    #[test]
    fn config_mismatch_is_rejected() {
        let path = tmp("mismatch.jsonl");
        let c = cfg();
        drop(ServeJournal::create(&path, &c).unwrap());
        let mut other = c.clone();
        other.seed = 777;
        let err = ServeJournal::resume(&path, &other).unwrap_err();
        assert!(matches!(err, Error::InvalidInstance { .. }));
    }

    #[test]
    fn mid_file_corruption_is_fatal() {
        let path = tmp("corrupt.jsonl");
        let c = cfg();
        let mut j = ServeJournal::create(&path, &c).unwrap();
        j.append_terminal(&rec(0, TerminalKind::Done)).unwrap();
        j.sync().unwrap();
        drop(j);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("garbage line\n");
        text.push_str(&terminal_line(&rec(1, TerminalKind::Done)));
        std::fs::write(&path, text).unwrap();
        assert!(matches!(
            ServeJournal::read(&path),
            Err(Error::JournalCorrupt { line: 3, .. })
        ));
    }
}
