//! `rds-serve`: the persistent streaming scheduler daemon.
//!
//! Everything else in this workspace is batch: build an instance, run
//! a campaign, exit. This crate is the online mode ROADMAP item 1 asks
//! for — tasks *arrive continuously* ([`rds_workloads::arrivals`]),
//! replica-placement decisions are made incrementally with bounded
//! state, and the engine runs as a persistent event loop measuring
//! response time, flow time, and queue depth instead of makespan.
//!
//! The headline is the robustness layer around the loop:
//!
//! - a **bounded admission queue** with explicit backpressure and typed
//!   rejection ([`Rejection`]) — work is never dropped silently;
//! - **overload policies**: the [`overload`] state machine degrades
//!   replication `k` and sheds deadline-expired work under pressure,
//!   restoring full replication on recovery (hysteresis watermarks);
//! - **per-task deadlines** with bounded retry/backoff riding the PR 2
//!   watchdog machinery ([`rds_par::WatchdogPolicy`]);
//! - **graceful drain** on SIGTERM/SIGINT ([`signal`]): stop admission
//!   → run down in-flight work → seal the fsync'd [`journal`];
//! - **crash recovery**: the daemon is deterministic given its config,
//!   so `--resume` replays the stream and the journal dedups terminal
//!   records — no admitted task is lost or run twice, even after
//!   SIGKILL (proven by the drain property tests and the CI smoke);
//! - **liveness/readiness introspection** ([`Health`]).
//!
//! Wang/Joshi/Wornell ("Efficient Task Replication for Fast Response
//! Times") supplies the replication-for-latency theory; Zavou et al.
//! ("Online Distributed Scheduling on a Fault-prone Parallel System")
//! frames the online fault-prone setting this daemon lives in.

#![warn(missing_docs)]
// `signal` binds two C symbols (no libc crate in the offline build);
// every other module is `forbid(unsafe_code)`-clean.
#![deny(unsafe_code)]

pub mod config;
pub mod daemon;
pub mod journal;
pub mod overload;
pub mod protocol;
pub mod signal;
pub mod stats;

pub use config::ServeConfig;
pub use daemon::{Control, Daemon, Health, ServeReport};
pub use journal::{DrainRecord, ServeJournal, ServeLog, TerminalKind, TerminalRecord};
pub use overload::{Admission, OverloadState, Rejection};
pub use protocol::serve_lines;
pub use stats::StatsDigest;
