//! The overload state machine: `Accepting → Backpressure → Shedding →
//! Draining`, with hysteresis so the daemon does not thrash at a
//! watermark boundary.
//!
//! Queue depth (admitted tasks not yet started) drives the first three
//! states; `Draining` is entered only by an explicit drain request and
//! is absorbing. Each state changes *policy*, never correctness:
//!
//! - **Accepting** — full replication `k`, admit everything below cap.
//! - **Backpressure** — replication degrades to `degraded_replication`
//!   (graceful degradation: fewer replicas per task means the backlog
//!   drains faster at the cost of placement flexibility); admissions
//!   continue, the state is visible to clients via readiness.
//! - **Shedding** — additionally, arrivals that provably cannot meet
//!   their deadline are rejected (typed), and queued tasks whose
//!   deadline has already expired are shed at dispatch time — every
//!   shed is journaled and counted, never silent.
//! - **Draining** — intake closed; in-flight and queued work runs to
//!   completion, then the journal is sealed.

use crate::config::ServeConfig;

/// The daemon's admission state. Ordering is severity: `Accepting <
/// Backpressure < Shedding < Draining`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OverloadState {
    /// Healthy: full replication, admit below cap.
    Accepting,
    /// Degraded replication; clients should slow down.
    Backpressure,
    /// Deadline-based load shedding engaged.
    Shedding,
    /// Intake closed; running down to empty (absorbing).
    Draining,
}

impl OverloadState {
    /// Short stable label for logs/metrics.
    pub fn label(self) -> &'static str {
        match self {
            OverloadState::Accepting => "accepting",
            OverloadState::Backpressure => "backpressure",
            OverloadState::Shedding => "shedding",
            OverloadState::Draining => "draining",
        }
    }
}

/// Why an arrival was not admitted. Every rejection is typed and
/// counted — the admission layer never drops work silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// The bounded queue is at `queue_cap`.
    QueueFull,
    /// Shedding is engaged and the projected start time already misses
    /// the task's deadline — admitting it would only waste queue space.
    DeadlineUnmeetable,
    /// The daemon is draining; intake is closed.
    Draining,
}

impl Rejection {
    /// Short stable label for logs/metrics.
    pub fn label(self) -> &'static str {
        match self {
            Rejection::QueueFull => "queue-full",
            Rejection::DeadlineUnmeetable => "deadline-unmeetable",
            Rejection::Draining => "draining",
        }
    }
}

/// Outcome of offering one arrival to the admission layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Admitted with this sequence number.
    Admitted(u64),
    /// Rejected, typed.
    Rejected(Rejection),
}

/// Tracks the overload state against the configured watermarks.
#[derive(Debug)]
pub struct OverloadTracker {
    state: OverloadState,
    degrade_hi: usize,
    degrade_lo: usize,
    shed_hi: usize,
    shed_lo: usize,
    /// Times the daemon entered a degraded state (Backpressure or
    /// Shedding) from Accepting.
    pub degraded_entries: u64,
    /// Total state transitions.
    pub transitions: u64,
}

impl OverloadTracker {
    /// A tracker in `Accepting` with the config's watermarks.
    pub fn new(cfg: &ServeConfig) -> Self {
        OverloadTracker {
            state: OverloadState::Accepting,
            degrade_hi: cfg.degrade_hi,
            degrade_lo: cfg.degrade_lo,
            shed_hi: cfg.shed_hi,
            shed_lo: cfg.shed_lo,
            degraded_entries: 0,
            transitions: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> OverloadState {
        self.state
    }

    /// Irreversibly enters `Draining`. Returns `true` on the first call.
    pub fn drain(&mut self) -> bool {
        if self.state == OverloadState::Draining {
            return false;
        }
        self.state = OverloadState::Draining;
        self.transitions += 1;
        true
    }

    /// Re-evaluates the state for the current queue depth; returns the
    /// new state if a transition fired. Hysteresis: escalation uses the
    /// `_hi` watermarks, recovery the `_lo` ones.
    pub fn observe_depth(&mut self, depth: usize) -> Option<OverloadState> {
        let next = match self.state {
            OverloadState::Draining => return None,
            OverloadState::Accepting => {
                if depth >= self.shed_hi {
                    OverloadState::Shedding
                } else if depth >= self.degrade_hi {
                    OverloadState::Backpressure
                } else {
                    return None;
                }
            }
            OverloadState::Backpressure => {
                if depth >= self.shed_hi {
                    OverloadState::Shedding
                } else if depth <= self.degrade_lo {
                    OverloadState::Accepting
                } else {
                    return None;
                }
            }
            OverloadState::Shedding => {
                if depth <= self.degrade_lo {
                    OverloadState::Accepting
                } else if depth <= self.shed_lo {
                    OverloadState::Backpressure
                } else {
                    return None;
                }
            }
        };
        if self.state == OverloadState::Accepting && next > OverloadState::Accepting {
            self.degraded_entries += 1;
        }
        self.state = next;
        self.transitions += 1;
        Some(next)
    }

    /// `true` while the state degrades replication.
    pub fn degraded(&self) -> bool {
        matches!(
            self.state,
            OverloadState::Backpressure | OverloadState::Shedding
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServeConfig;

    fn tracker() -> OverloadTracker {
        let mut cfg = ServeConfig::poisson(4, 2, 1.0, 10);
        cfg.queue_cap = 100;
        cfg.degrade_hi = 50;
        cfg.degrade_lo = 40;
        cfg.shed_hi = 75;
        cfg.shed_lo = 60;
        OverloadTracker::new(&cfg)
    }

    #[test]
    fn escalates_and_recovers_with_hysteresis() {
        let mut t = tracker();
        assert_eq!(t.observe_depth(49), None);
        assert_eq!(t.observe_depth(50), Some(OverloadState::Backpressure));
        // Between lo and hi: sticky.
        assert_eq!(t.observe_depth(45), None);
        assert_eq!(t.observe_depth(74), None);
        assert_eq!(t.observe_depth(75), Some(OverloadState::Shedding));
        assert_eq!(t.observe_depth(61), None);
        assert_eq!(t.observe_depth(60), Some(OverloadState::Backpressure));
        assert_eq!(t.observe_depth(40), Some(OverloadState::Accepting));
        assert_eq!(t.degraded_entries, 1);
        assert_eq!(t.transitions, 4);
    }

    #[test]
    fn jumps_straight_to_shedding_on_spike() {
        let mut t = tracker();
        assert_eq!(t.observe_depth(90), Some(OverloadState::Shedding));
        assert!(t.degraded());
        // Deep recovery skips Backpressure.
        assert_eq!(t.observe_depth(10), Some(OverloadState::Accepting));
        assert!(!t.degraded());
    }

    #[test]
    fn draining_is_absorbing() {
        let mut t = tracker();
        assert!(t.drain());
        assert!(!t.drain());
        assert_eq!(t.observe_depth(99), None);
        assert_eq!(t.state(), OverloadState::Draining);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(OverloadState::Shedding.label(), "shedding");
        assert_eq!(Rejection::QueueFull.label(), "queue-full");
        assert_eq!(Rejection::DeadlineUnmeetable.label(), "deadline-unmeetable");
    }
}
