//! A line protocol over the daemon — the socket-less "simple
//! line-protocol mode" of `rds serve --stdin`.
//!
//! One command per line, one reply per line:
//!
//! | command        | effect                                            |
//! |----------------|---------------------------------------------------|
//! | `task <est>`   | offer an arrival now → `ok <seq> …` / `reject <why>` |
//! | `step <dt>`    | advance the virtual clock by `dt`, running events |
//! | `stat`         | print a liveness/readiness line                   |
//! | `drain`        | close intake, run down, print summary, exit       |
//! | `quit`         | stop immediately without draining (crash-like)    |
//!
//! The protocol is transport-agnostic (`BufRead` in, `Write` out) so
//! tests drive it with in-memory buffers and the CLI with stdio.

use std::io::{BufRead, Write};

use rds_core::{Error, Result};

use crate::daemon::{Daemon, ServeReport};
use crate::overload::Admission;

fn io_err(e: &std::io::Error) -> Error {
    Error::Io {
        op: "protocol",
        path: "<stream>".to_string(),
        why: e.to_string(),
    }
}

/// Runs the protocol until `drain`/`quit`/EOF (EOF drains gracefully —
/// closing stdin is a clean shutdown).
///
/// # Errors
/// Stream I/O failures, journal failures, or daemon invariant errors.
pub fn serve_lines<R: BufRead, W: Write>(
    daemon: &mut Daemon,
    input: R,
    mut out: W,
) -> Result<ServeReport> {
    daemon.external_arrivals();
    for line in input.lines() {
        let line = line.map_err(|e| io_err(&e))?;
        let mut parts = line.split_whitespace();
        match parts.next() {
            None => {}
            Some("task") => match parts.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(est) => match daemon.offer(est) {
                    Ok(Admission::Admitted(seq)) => {
                        let h = daemon.health();
                        writeln!(out, "ok {seq} state={} depth={}", h.state.label(), h.depth)
                            .map_err(|e| io_err(&e))?;
                    }
                    Ok(Admission::Rejected(r)) => {
                        writeln!(out, "reject {}", r.label()).map_err(|e| io_err(&e))?;
                    }
                    Err(e) => {
                        writeln!(out, "err {e}").map_err(|e| io_err(&e))?;
                    }
                },
                None => {
                    writeln!(out, "err task needs a numeric estimate").map_err(|e| io_err(&e))?;
                }
            },
            Some("step") => match parts.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(dt) if dt.is_finite() && dt >= 0.0 => {
                    daemon.step_until(daemon.now() + dt)?;
                    let h = daemon.health();
                    writeln!(
                        out,
                        "t={:.3} depth={} running={}",
                        h.now, h.depth, h.running
                    )
                    .map_err(|e| io_err(&e))?;
                }
                _ => {
                    writeln!(out, "err step needs a non-negative duration")
                        .map_err(|e| io_err(&e))?;
                }
            },
            Some("stat") => {
                writeln!(out, "{}", daemon.health().line()).map_err(|e| io_err(&e))?;
            }
            Some("drain") => {
                let report = daemon.drain_now()?;
                writeln!(
                    out,
                    "drained t={:.3} admitted={} completed={} shed={} failed={}",
                    report.makespan, report.admitted, report.completed, report.shed, report.failed
                )
                .map_err(|e| io_err(&e))?;
                return Ok(report);
            }
            Some("quit") => {
                writeln!(out, "bye").map_err(|e| io_err(&e))?;
                return daemon.drain_now();
            }
            Some(other) => {
                writeln!(out, "err unknown command: {other}").map_err(|e| io_err(&e))?;
            }
        }
    }
    daemon.drain_now()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServeConfig;

    fn daemon() -> Daemon {
        let mut cfg = ServeConfig::poisson(2, 1, 1.0, 0);
        cfg.count = 0;
        Daemon::new(cfg).unwrap()
    }

    fn drive(input: &str) -> (ServeReport, String) {
        let mut d = daemon();
        let mut out = Vec::new();
        let report = serve_lines(&mut d, input.as_bytes(), &mut out).unwrap();
        (report, String::from_utf8(out).unwrap())
    }

    #[test]
    fn tasks_step_and_drain() {
        let (report, out) = drive("task 1.0\ntask 2.0\nstep 0.5\nstat\ndrain\n");
        assert_eq!(report.admitted, 2);
        assert_eq!(report.completed, 2);
        assert!(out.contains("ok 0"));
        assert!(out.contains("ok 1"));
        assert!(out.contains("t=0.500"));
        assert!(out.contains("state=accepting"));
        assert!(out.contains("drained"));
    }

    #[test]
    fn bad_input_gets_err_lines_not_panics() {
        let (report, out) = drive("task\ntask abc\nstep -1\nfoo\ntask -3\ndrain\n");
        assert_eq!(report.admitted, 0);
        assert_eq!(out.matches("err").count(), 5);
    }

    #[test]
    fn eof_drains_cleanly() {
        let (report, _) = drive("task 1.0\n");
        assert_eq!(report.admitted, 1);
        assert_eq!(report.completed, 1);
        assert!(!report.halted);
    }
}
