//! SIGTERM/SIGINT → graceful drain, with no external crates.
//!
//! The build environment is offline (no `libc`/`signal-hook`), so this
//! module binds the two C symbols it needs directly. The handler is
//! async-signal-safe: it only stores to a static atomic, which the
//! daemon's control callback polls between events. SIGKILL needs no
//! handler — crash recovery is the journal's job.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

static DRAIN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::DRAIN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // POSIX `signal(2)`: adequate here because the handler only
        // sets a flag and both signals get the same disposition.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        DRAIN.store(true, Ordering::Release);
    }

    pub fn install() {
        // SAFETY: `signal` is async-signal-safe to install, and the
        // handler only performs an atomic store — no allocation, no
        // locks, no formatting.
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs SIGTERM/SIGINT handlers that request a graceful drain
/// (no-op on non-unix platforms). Idempotent.
pub fn install() {
    imp::install();
}

/// `true` once a drain-requesting signal has been delivered.
pub fn drain_requested() -> bool {
    DRAIN.load(Ordering::Acquire)
}

/// Clears the flag (tests; or a supervisor reusing the process).
pub fn reset() {
    DRAIN.store(false, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_resets() {
        reset();
        assert!(!drain_requested());
        DRAIN.store(true, Ordering::Release);
        assert!(drain_requested());
        reset();
        assert!(!drain_requested());
    }

    #[cfg(unix)]
    #[test]
    fn handler_catches_a_real_sigterm() {
        install();
        reset();
        // Raise SIGTERM against ourselves through the installed handler.
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        // SAFETY: raising a signal whose handler is installed above.
        unsafe {
            raise(15);
        }
        assert!(drain_requested());
        reset();
    }
}
