//! Bounded-memory streaming statistics for an unbounded run.
//!
//! A long-running daemon cannot keep every response time: the reservoir
//! holds a fixed-size uniform sample (Vitter's Algorithm R, seeded) for
//! quantiles plus exact count/mean/max, and the time series keeps a
//! fixed point budget by doubling its sampling stride whenever it
//! fills — memory stays O(cap) over millions of tasks.

use rand::rngs::StdRng;
use rand::Rng;
use rds_workloads::rng as wrng;

/// Seeded fixed-capacity uniform sample with exact moments.
#[derive(Debug)]
pub struct Reservoir {
    buf: Vec<f64>,
    cap: usize,
    seen: u64,
    dropped: u64,
    sum: f64,
    max: f64,
    rng: StdRng,
}

impl Reservoir {
    /// A reservoir holding at most `cap` samples.
    pub fn new(cap: usize, seed: u64) -> Self {
        Reservoir {
            buf: Vec::with_capacity(cap.min(4096)),
            cap: cap.max(1),
            seen: 0,
            dropped: 0,
            sum: 0.0,
            max: f64::NEG_INFINITY,
            rng: wrng::rng(seed),
        }
    }

    /// Records one observation. Non-finite samples (NaN, ±∞) are counted
    /// in [`Self::dropped`] and excluded from every statistic: a single
    /// NaN must not poison the mean or scramble the quantile sort.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            self.dropped += 1;
            return;
        }
        self.seen += 1;
        self.sum += x;
        if x > self.max {
            self.max = x;
        }
        if self.buf.len() < self.cap {
            self.buf.push(x);
        } else {
            let j = self.rng.gen_range(0..self.seen);
            if (j as usize) < self.cap {
                self.buf[j as usize] = x;
            }
        }
    }

    /// Exact number of (finite) observations.
    pub fn count(&self) -> u64 {
        self.seen
    }

    /// Number of non-finite samples rejected at the door.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Exact mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.seen == 0 {
            0.0
        } else {
            self.sum / self.seen as f64
        }
    }

    /// Exact maximum (0 when empty).
    pub fn max(&self) -> f64 {
        if self.seen == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Approximate `q`-quantile from the sample (0 when empty).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.buf.is_empty() {
            return 0.0;
        }
        let mut sorted = self.buf.clone();
        // The reservoir only admits finite samples, but sort with a total
        // order anyway so no float input can ever scramble the ranks.
        sorted.sort_by(f64::total_cmp);
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }

    /// Compact summary for reports.
    pub fn digest(&self) -> StatsDigest {
        StatsDigest {
            count: self.count(),
            mean: self.mean(),
            max: self.max(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            dropped: self.dropped(),
        }
    }
}

/// Summary of one metric over the run.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsDigest {
    /// Observations recorded.
    pub count: u64,
    /// Exact mean.
    pub mean: f64,
    /// Exact maximum.
    pub max: f64,
    /// Sampled median.
    pub p50: f64,
    /// Sampled 95th percentile.
    pub p95: f64,
    /// Sampled 99th percentile.
    pub p99: f64,
    /// Non-finite samples rejected before aggregation.
    pub dropped: u64,
}

/// Bounded time series: keeps every `stride`-th point; when full, drops
/// every other retained point and doubles the stride.
#[derive(Debug)]
pub struct BoundedSeries {
    points: Vec<(f64, f64)>,
    cap: usize,
    stride: u64,
    count: u64,
}

impl BoundedSeries {
    /// A series retaining at most `cap` points.
    pub fn new(cap: usize) -> Self {
        BoundedSeries {
            points: Vec::new(),
            cap: cap.max(2),
            stride: 1,
            count: 0,
        }
    }

    /// Offers one `(x, y)` point; retained iff it lands on the stride.
    pub fn push(&mut self, x: f64, y: f64) {
        if self.count.is_multiple_of(self.stride) {
            if self.points.len() >= self.cap {
                let mut keep = 0usize;
                self.points.retain(|_| {
                    keep += 1;
                    keep % 2 == 1
                });
                self.stride *= 2;
            }
            if self.count.is_multiple_of(self.stride) {
                self.points.push((x, y));
            }
        }
        self.count += 1;
    }

    /// The retained points in arrival order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Consumes the series.
    pub fn into_points(self) -> Vec<(f64, f64)> {
        self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservoir_exact_moments_bounded_memory() {
        let mut r = Reservoir::new(100, 7);
        for i in 0..10_000 {
            r.push(i as f64);
        }
        assert_eq!(r.count(), 10_000);
        assert!((r.mean() - 4999.5).abs() < 1e-9);
        assert_eq!(r.max(), 9999.0);
        assert!(r.buf.len() == 100);
        // Quantiles of a uniform ramp are near their index.
        let p50 = r.quantile(0.5);
        assert!((p50 - 5000.0).abs() < 1500.0, "p50 {p50} off");
    }

    #[test]
    fn reservoir_is_seeded() {
        let mk = || {
            let mut r = Reservoir::new(10, 3);
            for i in 0..1000 {
                r.push(i as f64);
            }
            r.buf
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn non_finite_samples_cannot_poison_quantiles() {
        // Regression: `partial_cmp().unwrap_or(Equal)` used to leave the
        // sample unsorted in the presence of NaN, silently corrupting
        // every quantile; ∞ additionally poisoned mean and max.
        let mut r = Reservoir::new(64, 11);
        for i in 0..32 {
            r.push(i as f64);
            r.push(f64::NAN);
            r.push(f64::INFINITY);
            r.push(f64::NEG_INFINITY);
        }
        assert_eq!(r.count(), 32);
        assert_eq!(r.dropped(), 96);
        let d = r.digest();
        assert_eq!(d.count, 32);
        assert_eq!(d.dropped, 96);
        for (name, v) in [
            ("mean", d.mean),
            ("max", d.max),
            ("p50", d.p50),
            ("p95", d.p95),
            ("p99", d.p99),
        ] {
            assert!(v.is_finite(), "{name} is {v}");
        }
        assert_eq!(d.max, 31.0);
        assert!((d.p50 - 15.5).abs() <= 1.0, "p50 {}", d.p50);
        // Quantiles are monotone again once the sort is total.
        assert!(d.p50 <= d.p95 && d.p95 <= d.p99);
    }

    #[test]
    fn series_never_exceeds_cap() {
        let mut s = BoundedSeries::new(64);
        for i in 0..100_000 {
            s.push(i as f64, (i * 2) as f64);
        }
        assert!(s.points().len() <= 64);
        assert!(s.points().len() >= 16);
        // Still spans the whole range.
        assert_eq!(s.points()[0].0, 0.0);
        assert!(s.points().last().unwrap().0 > 90_000.0);
    }
}
