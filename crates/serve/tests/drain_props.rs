//! Drain/crash correctness properties for the serve daemon.
//!
//! The contract under test: across SIGTERM drain, SIGKILL crash, and
//! `--resume` replay, **every admitted task is completed or
//! checkpointed exactly once**, and shedding never drops a task
//! silently — every rejection is typed and counted, every shed is
//! journaled.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use rds_serve::{Control, Daemon, ServeConfig, ServeJournal, ServeLog, TerminalKind};
use rds_workloads::{ArrivalProcess, EstimateDistribution};

static UNIQ: AtomicU64 = AtomicU64::new(0);

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rds-drain-props-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "{tag}-{}.jsonl",
        UNIQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A small config space that still exercises overload, retries, and
/// batched fsync.
fn cfg_strategy() -> impl Strategy<Value = ServeConfig> {
    (
        (
            1usize..5,     // machines
            1usize..3,     // replication (clamped to machines)
            0.5f64..12.0,  // rate
            40u64..160,    // count
            any::<bool>(), // inject failures?
            2.0f64..60.0,  // deadline_factor
        ),
        (
            1usize..48,    // fsync_every
            any::<u64>(),  // seed
            any::<bool>(), // bursty?
        ),
    )
        .prop_map(
            |((m, k, rate, count, inject, deadline_factor), (fsync_every, seed, bursty))| {
                let fail_rate = if inject { 0.15 } else { 0.0 };
                let mut cfg = ServeConfig::poisson(m, k.min(m), rate, count);
                if bursty {
                    cfg.process = ArrivalProcess::Bursty {
                        base_rate: rate,
                        burst_rate: rate * 4.0,
                        period: 20.0,
                        burst_fraction: 0.25,
                    };
                }
                cfg.estimates = EstimateDistribution::Uniform { lo: 0.2, hi: 1.8 };
                cfg.queue_cap = 48;
                cfg.degrade_hi = 20;
                cfg.degrade_lo = 12;
                cfg.shed_hi = 32;
                cfg.shed_lo = 24;
                cfg.fail_rate = fail_rate;
                cfg.max_attempts = 2;
                cfg.deadline_factor = deadline_factor;
                cfg.fsync_every = fsync_every;
                cfg.seed = seed;
                cfg
            },
        )
}

/// Exactly-once over the journal: one terminal record per admitted seq,
/// no duplicates in the raw file, no gaps below the admission horizon.
fn assert_exactly_once(log: &ServeLog, admitted: u64) {
    assert_eq!(log.duplicates, 0, "journal holds duplicate terminal seqs");
    assert_eq!(
        log.records.len() as u64,
        admitted,
        "terminal records != admitted tasks"
    );
    let mut seqs: Vec<u64> = log.records.iter().map(|r| r.seq).collect();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len() as u64, admitted);
    if let Some(&max) = seqs.last() {
        assert_eq!(max, admitted - 1, "seq gap below the admission horizon");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SIGKILL-crash at an arbitrary event, then resume: the journal
    /// ends with exactly one terminal record per admitted task, and the
    /// completed set equals the uninterrupted run's.
    #[test]
    fn crash_resume_is_exactly_once(cfg in cfg_strategy(), crash_at in 1u64..400) {
        // Uninterrupted reference run.
        let ref_path = tmp("ref");
        let mut d = Daemon::with_journal(cfg.clone(), &ref_path, false).unwrap();
        let ref_report = d.run(&mut |_| Control::Continue).unwrap();
        let ref_log = ServeJournal::read(&ref_path).unwrap();
        assert_exactly_once(&ref_log, ref_report.admitted);

        // Crash mid-stream (Halt = SIGKILL stand-in: unsynced journal
        // tail is dropped), then resume and run to completion.
        let path = tmp("crash");
        let mut d = Daemon::with_journal(cfg.clone(), &path, false).unwrap();
        let mut polls = 0u64;
        let crashed = d
            .run(&mut |_| {
                polls += 1;
                if polls == crash_at { Control::Halt } else { Control::Continue }
            })
            .unwrap();
        let mut d = Daemon::with_journal(cfg.clone(), &path, true).unwrap();
        let resumed = d.run(&mut |_| Control::Continue).unwrap();

        let log = ServeJournal::read(&path).unwrap();
        assert_exactly_once(&log, resumed.admitted);
        prop_assert_eq!(log.done_seqs(), ref_log.done_seqs());
        prop_assert_eq!(resumed.admitted, ref_report.admitted);
        // The crash may have lost only unsynced work, never synced work.
        prop_assert!(crashed.halted || polls < crash_at);
        prop_assert_eq!(
            log.drain.as_ref().map(|dr| (dr.admitted, dr.completed)),
            Some((resumed.admitted, resumed.completed))
        );
    }

    /// SIGTERM drain at an arbitrary poll: intake closes, everything
    /// admitted reaches exactly one terminal record (zero lost), and a
    /// restart against the sealed journal loses nothing either.
    #[test]
    fn drain_loses_nothing(cfg in cfg_strategy(), drain_at in 1u64..300) {
        let path = tmp("drain");
        let mut d = Daemon::with_journal(cfg.clone(), &path, false).unwrap();
        let mut polls = 0u64;
        let report = d
            .run(&mut |_| {
                polls += 1;
                if polls == drain_at { Control::Drain } else { Control::Continue }
            })
            .unwrap();
        prop_assert!(!report.halted);
        prop_assert_eq!(
            report.admitted,
            report.completed + report.shed + report.failed,
            "drained run lost tasks: {:?}", report
        );
        let log = ServeJournal::read(&path).unwrap();
        assert_exactly_once(&log, report.admitted);

        // Restart with --resume after the clean drain: replay admits the
        // full stream; previously journaled seqs keep their records and
        // the tail is filled in — still exactly once for every task.
        let mut d = Daemon::with_journal(cfg.clone(), &path, true).unwrap();
        let resumed = d.run(&mut |_| Control::Continue).unwrap();
        let log = ServeJournal::read(&path).unwrap();
        assert_exactly_once(&log, resumed.admitted);
        prop_assert!(resumed.admitted >= report.admitted);
    }

    /// Shedding and rejection are never silent: counters reconcile with
    /// the journal record-by-record and with the arrival stream.
    #[test]
    fn shedding_is_typed_and_counted(cfg in cfg_strategy()) {
        let path = tmp("shed");
        let mut d = Daemon::with_journal(cfg.clone(), &path, false).unwrap();
        let report = d.run(&mut |_| Control::Continue).unwrap();
        let log = ServeJournal::read(&path).unwrap();

        let done = log.records.iter().filter(|r| r.kind == TerminalKind::Done).count() as u64;
        let shed = log.records.iter().filter(|r| r.kind == TerminalKind::Shed).count() as u64;
        let failed = log.records.iter().filter(|r| r.kind == TerminalKind::Failed).count() as u64;
        prop_assert_eq!(done, report.completed);
        prop_assert_eq!(shed, report.shed);
        prop_assert_eq!(failed, report.failed);

        // Every arrival is accounted for: admitted or rejected, typed.
        prop_assert_eq!(
            report.admitted
                + report.rejected_full
                + report.rejected_deadline
                + report.rejected_draining,
            cfg.count
        );
        // Terminal accounting is total.
        prop_assert_eq!(
            report.admitted,
            report.completed + report.shed + report.failed
        );
    }
}

/// Deterministic (non-proptest) end-to-end: crash twice at different
/// points, resume each time, and converge to the reference run.
#[test]
fn double_crash_still_converges() {
    let mut cfg = ServeConfig::poisson(3, 2, 6.0, 200);
    cfg.queue_cap = 32;
    cfg.degrade_hi = 16;
    cfg.degrade_lo = 8;
    cfg.shed_hi = 24;
    cfg.shed_lo = 20;
    cfg.deadline_factor = 6.0;
    cfg.fail_rate = 0.1;
    cfg.fsync_every = 7;
    cfg.seed = 99;

    let ref_path = tmp("ref2");
    let ref_report = Daemon::with_journal(cfg.clone(), &ref_path, false)
        .unwrap()
        .run(&mut |_| Control::Continue)
        .unwrap();
    let ref_log = ServeJournal::read(&ref_path).unwrap();

    let path = tmp("double");
    for crash_at in [37u64, 113] {
        let mut polls = 0u64;
        let resume = path.exists() && crash_at != 37;
        let mut d = Daemon::with_journal(cfg.clone(), &path, resume).unwrap();
        let _ = d
            .run(&mut |_| {
                polls += 1;
                if polls == crash_at {
                    Control::Halt
                } else {
                    Control::Continue
                }
            })
            .unwrap();
    }
    let mut d = Daemon::with_journal(cfg.clone(), &path, true).unwrap();
    let resumed = d.run(&mut |_| Control::Continue).unwrap();
    let log = ServeJournal::read(&path).unwrap();
    assert_eq!(log.duplicates, 0);
    assert_eq!(log.done_seqs(), ref_log.done_seqs());
    assert_eq!(resumed.admitted, ref_report.admitted);
    assert_eq!(log.records.len() as u64, resumed.admitted);
}
