//! Reusable scratch storage for the engine hot path.
//!
//! Every empirical result in the paper is a Monte-Carlo campaign:
//! thousands of engine runs per (instance, placement) pair where only
//! the realization changes. Allocating `pending`, the slot log, the
//! trace, and the event queue from scratch each run puts the
//! allocator on the hottest path in the repo. A [`SimArena`] owns that
//! storage once; [`crate::Engine::run_in`] resets and refills it, so in
//! steady state (same instance shape run after run) a trial performs
//! **zero** heap allocations — the `engine_throughput` bench in
//! `rds-bench` counts them to prove it, and CI regresses on the count.
//!
//! Executed slots are not recorded separately at all: a `Start` trace
//! event carries the slot's task, machine, and start time, and the
//! matching `Complete` carries its end, so the slot list is fully
//! derivable. [`SimArena::per_machine_slots`] materializes it on
//! demand (reports, validation); the hot loop writes only the trace's
//! struct-of-arrays columns instead of a second, redundant slot log.
//!
//! Typical use: one arena per worker thread, reused across trials
//! (`rds_par::parallel_map_with` hands each worker a long-lived arena):
//!
//! ```
//! use rds_core::prelude::*;
//! use rds_sim::{Engine, OrderedDispatcher, SimArena};
//!
//! let inst = Instance::from_estimates(&[3.0, 2.0, 2.0, 1.0], 2)?;
//! let placement = Placement::everywhere(&inst);
//! let mut arena = SimArena::with_capacity(inst.n(), inst.m());
//! let mut dispatcher = OrderedDispatcher::fifo(&inst);
//! for _trial in 0..3 {
//!     let real = Realization::exact(&inst); // varies per trial in practice
//!     let engine = Engine::new(&inst, &placement, &real)?;
//!     dispatcher.reset();
//!     let makespan = engine.run_in(&mut arena, &mut dispatcher)?;
//!     assert_eq!(makespan.get(), 4.0);
//!     assert_eq!(arena.trace().starts(), 4);
//! }
//! # Ok::<(), rds_core::Error>(())
//! ```

use crate::dispatcher::HotTask;
use crate::engine::SimResult;
use crate::event::{EventQueue, IdleEvent, QueueMode};
use crate::faults::FaultScratch;
use crate::trace::{Trace, TraceEvent};
use rds_core::{Schedule, Slot, Time};

/// Scratch storage for one engine run, reusable across runs.
///
/// After a successful [`crate::Engine::run_in`], the arena holds that
/// run's outputs until the next run overwrites them: [`Self::trace`]
/// and [`Self::makespan`] read them in place (no copies);
/// [`Self::per_machine_slots`] derives the executed slot lists from
/// the trace, and [`Self::to_sim_result`] clones everything into an
/// owned [`SimResult`] for callers that need one.
#[derive(Debug, Default)]
pub struct SimArena {
    /// Packed per-task hot records: pending flag, eligibility span,
    /// and actual duration in one 16-byte line-friendly struct. The
    /// engine refills it each run from the realization and placement.
    pub(crate) pending: Vec<HotTask>,
    /// Machine count of the last prepared run (sizes derived views).
    pub(crate) m: usize,
    /// Chronological event trace of the last run.
    pub(crate) trace: Trace,
    /// The idle-event queue (heap or calendar backend).
    pub(crate) queue: EventQueue,
    /// Scratch for one dispatch round (all events at one timestamp).
    pub(crate) round: Vec<IdleEvent>,
    /// Which event-queue backend runs should use.
    pub(crate) queue_mode: QueueMode,
    /// Reusable state for the fault-injecting resilience engine.
    pub(crate) fault_scratch: FaultScratch,
    /// Makespan of the last completed run.
    pub(crate) makespan: Time,
}

impl SimArena {
    /// An empty arena; storage grows on first use and is kept thereafter.
    pub fn new() -> Self {
        Self::default()
    }

    /// An arena pre-sized for instances of `n` tasks on `m` machines:
    /// `pending` holds `n` hot records, the trace holds the engine's `2n + m`
    /// event bound, and the queue holds the `m` events the engine needs
    /// at most (one outstanding idle event per machine).
    pub fn with_capacity(n: usize, m: usize) -> Self {
        SimArena {
            pending: Vec::with_capacity(n),
            m: 0,
            trace: Trace::with_capacity(2 * n + m),
            queue: EventQueue::with_capacity(m),
            round: Vec::with_capacity(m.min(64)),
            queue_mode: QueueMode::Auto,
            fault_scratch: FaultScratch::default(),
            makespan: Time::ZERO,
        }
    }

    /// Selects the event-queue backend for subsequent runs (default
    /// [`QueueMode::Auto`]). The backends are schedule-identical; this
    /// knob exists for benchmarks and the differential proptests.
    pub fn set_queue_mode(&mut self, mode: QueueMode) {
        self.queue_mode = mode;
    }

    /// The configured event-queue backend policy.
    pub fn queue_mode(&self) -> QueueMode {
        self.queue_mode
    }

    /// Resets every buffer for a fresh `(n, m)` run, keeping storage.
    /// Steady state (same shape as the previous run) allocates nothing;
    /// a larger shape grows the buffers once and keeps the new capacity.
    ///
    /// `bucket_width` arms the calendar queue for this run (`None`
    /// selects the heap); the engine derives it from the realization's
    /// mean task duration and the configured [`QueueMode`].
    pub(crate) fn prepare(&mut self, n: usize, m: usize, bucket_width: Option<f64>) {
        // Cleared, not refilled: the engine repopulates the hot records
        // in one sequential pass over the realization and placement, so
        // filling defaults here would write the column twice.
        self.pending.clear();
        self.pending.reserve(n);
        self.m = m;
        self.trace.clear();
        self.trace.reserve(2 * n + m);
        match bucket_width {
            Some(w) => self.queue.reset_bucketed(m, w),
            None => self.queue.reset_all_idle(m),
        }
        self.round.clear();
        self.makespan = Time::ZERO;
    }

    /// Makespan of the last completed run.
    #[inline]
    pub fn makespan(&self) -> Time {
        self.makespan
    }

    /// Event trace of the last run, read in place.
    #[inline]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Materializes the last run's executed slots per machine (each in
    /// execution order) from the trace: a `Start` event opens the slot,
    /// the matching `Complete` closes it. This allocates; the hot loop
    /// itself records nothing beyond the trace columns.
    pub fn per_machine_slots(&self) -> Vec<Vec<Slot>> {
        let mut out: Vec<Vec<Slot>> = vec![Vec::new(); self.m];
        // `(machine, position)` of each task's open slot, for end fixup.
        let mut open: Vec<(u32, u32)> = vec![(u32::MAX, 0); self.pending.len()];
        for ev in self.trace.iter() {
            match ev {
                TraceEvent::Start {
                    time,
                    task,
                    machine,
                } => {
                    let mi = machine.index();
                    open[task.index()] = (mi as u32, out[mi].len() as u32);
                    out[mi].push(Slot {
                        task,
                        start: time,
                        end: time,
                    });
                }
                TraceEvent::Complete { time, task, .. } => {
                    let (mi, si) = open[task.index()];
                    out[mi as usize][si as usize].end = time;
                }
                _ => {}
            }
        }
        out
    }

    /// Clones the last run's outputs into an owned [`SimResult`] —
    /// identical to what [`crate::Engine::run`] would have returned.
    /// This allocates; hot paths should read the arena in place instead.
    pub fn to_sim_result(&self) -> SimResult {
        SimResult {
            schedule: Schedule::from_slots(self.per_machine_slots()),
            makespan: self.makespan,
            trace: self.trace.clone(),
        }
    }

    /// Moves the last run's outputs out as a [`SimResult`]; the slot
    /// log's storage stays in the arena for the next run.
    pub(crate) fn take_result(&mut self) -> SimResult {
        SimResult {
            schedule: Schedule::from_slots(self.per_machine_slots()),
            makespan: self.makespan,
            trace: std::mem::take(&mut self.trace),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_core::{MachineId, TaskId};

    #[test]
    fn prepare_resets_dirty_state_and_resizes() {
        let mut arena = SimArena::with_capacity(4, 2);
        arena.prepare(4, 2, None);
        arena
            .pending
            .resize(4, crate::dispatcher::HotTask::pending_only(true));
        arena.pending[1].mark_started();
        arena.trace.push(crate::trace::TraceEvent::Starved {
            time: Time::ZERO,
            machine: MachineId::new(0),
        });
        arena.makespan = Time::of(9.0);
        arena.queue.pop();

        // Shrink to a smaller shape: everything must come back pristine.
        arena.prepare(2, 1, None);
        assert!(arena.pending.is_empty());
        assert!(arena.pending.capacity() >= 2);
        assert_eq!(arena.m, 1);
        assert!(arena.trace.is_empty());
        assert_eq!(arena.makespan, Time::ZERO);
        assert_eq!(arena.queue.len(), 1);

        // Grow again: shape follows, state still pristine.
        arena.prepare(6, 3, None);
        assert!(arena.pending.capacity() >= 6);
        assert_eq!(arena.m, 3);
        assert_eq!(arena.queue.len(), 3);
    }

    #[test]
    fn steady_state_prepare_keeps_capacity() {
        let mut arena = SimArena::with_capacity(8, 4);
        arena.prepare(8, 4, None);
        let pending_cap = arena.pending.capacity();
        arena.prepare(8, 4, None);
        assert_eq!(arena.pending.capacity(), pending_cap);
    }

    #[test]
    fn per_machine_slots_derive_from_trace_in_execution_order() {
        use crate::trace::TraceEvent;
        let mut arena = SimArena::with_capacity(3, 3);
        arena.prepare(3, 3, None);
        arena
            .pending
            .resize(3, crate::dispatcher::HotTask::pending_only(true));
        let start = |task: usize, machine: usize, t: f64| TraceEvent::Start {
            time: Time::of(t),
            task: TaskId::new(task),
            machine: MachineId::new(machine),
        };
        let complete = |task: usize, machine: usize, t: f64| TraceEvent::Complete {
            time: Time::of(t),
            task: TaskId::new(task),
            machine: MachineId::new(machine),
            actual: Time::of(1.0),
        };
        arena.trace.push(start(0, 2, 0.0));
        arena.trace.push(start(1, 0, 0.0));
        arena.trace.push(complete(1, 0, 1.0));
        arena.trace.push(start(2, 0, 1.0));
        arena.trace.push(complete(0, 2, 2.0));
        arena.trace.push(complete(2, 0, 3.0));
        let per = arena.per_machine_slots();
        assert_eq!(per.len(), 3);
        assert_eq!(per[0].len(), 2);
        assert_eq!(per[0][0].task, TaskId::new(1));
        assert_eq!(per[0][0].end, Time::of(1.0));
        assert_eq!(per[0][1].task, TaskId::new(2));
        assert_eq!(per[0][1].end, Time::of(3.0));
        assert_eq!(per[1], vec![]);
        assert_eq!(per[2][0].task, TaskId::new(0));
        assert_eq!(per[2][0].start, Time::ZERO);
        assert_eq!(per[2][0].end, Time::of(2.0));
    }
}
