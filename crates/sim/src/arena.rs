//! Reusable scratch storage for the engine hot path.
//!
//! Every empirical result in the paper is a Monte-Carlo campaign:
//! thousands of engine runs per (instance, placement) pair where only
//! the realization changes. Allocating `pending`, the per-machine slot
//! lists, the trace, and the event heap from scratch each run puts the
//! allocator on the hottest path in the repo. A [`SimArena`] owns that
//! storage once; [`crate::Engine::run_in`] resets and refills it, so in
//! steady state (same instance shape run after run) a trial performs
//! **zero** heap allocations — the `engine_throughput` bench in
//! `rds-bench` counts them to prove it, and CI regresses on the count.
//!
//! Typical use: one arena per worker thread, reused across trials
//! (`rds_par::parallel_map_with` hands each worker a long-lived arena):
//!
//! ```
//! use rds_core::prelude::*;
//! use rds_sim::{Engine, OrderedDispatcher, SimArena};
//!
//! let inst = Instance::from_estimates(&[3.0, 2.0, 2.0, 1.0], 2)?;
//! let placement = Placement::everywhere(&inst);
//! let mut arena = SimArena::with_capacity(inst.n(), inst.m());
//! let mut dispatcher = OrderedDispatcher::fifo(&inst);
//! for _trial in 0..3 {
//!     let real = Realization::exact(&inst); // varies per trial in practice
//!     let engine = Engine::new(&inst, &placement, &real)?;
//!     dispatcher.reset();
//!     let makespan = engine.run_in(&mut arena, &mut dispatcher)?;
//!     assert_eq!(makespan.get(), 4.0);
//!     assert_eq!(arena.trace().starts(), 4);
//! }
//! # Ok::<(), rds_core::Error>(())
//! ```

use crate::engine::SimResult;
use crate::event::EventQueue;
use crate::trace::Trace;
use rds_core::{Schedule, Slot, Time};

/// Scratch storage for one engine run, reusable across runs.
///
/// After a successful [`crate::Engine::run_in`], the arena holds that
/// run's outputs until the next run overwrites them: [`Self::slots`],
/// [`Self::trace`], and [`Self::makespan`] read them in place (no
/// copies); [`Self::to_sim_result`] clones them into an owned
/// [`SimResult`] for callers that need one.
#[derive(Debug, Default)]
pub struct SimArena {
    /// `pending[j]` is `true` while task `j` has not been started.
    pub(crate) pending: Vec<bool>,
    /// Executed slots per machine, in execution order.
    pub(crate) slots: Vec<Vec<Slot>>,
    /// Chronological event trace of the last run.
    pub(crate) trace: Trace,
    /// The idle-event heap.
    pub(crate) queue: EventQueue,
    /// Makespan of the last completed run.
    pub(crate) makespan: Time,
}

impl SimArena {
    /// An empty arena; storage grows on first use and is kept thereafter.
    pub fn new() -> Self {
        Self::default()
    }

    /// An arena pre-sized for instances of `n` tasks on `m` machines:
    /// `pending` holds `n` flags, the trace holds the engine's `2n + m`
    /// event bound, and the heap holds the `m` events the engine needs
    /// at most (one outstanding idle event per machine).
    pub fn with_capacity(n: usize, m: usize) -> Self {
        SimArena {
            pending: Vec::with_capacity(n),
            slots: std::iter::repeat_with(Vec::new).take(m).collect(),
            trace: Trace::with_capacity(2 * n + m),
            queue: EventQueue::with_capacity(m),
            makespan: Time::ZERO,
        }
    }

    /// Resets every buffer for a fresh `(n, m)` run, keeping storage.
    /// Steady state (same shape as the previous run) allocates nothing;
    /// a larger shape grows the buffers once and keeps the new capacity.
    pub(crate) fn prepare(&mut self, n: usize, m: usize) {
        self.pending.clear();
        self.pending.resize(n, true);
        self.slots.truncate(m);
        for q in &mut self.slots {
            q.clear();
        }
        while self.slots.len() < m {
            self.slots.push(Vec::new());
        }
        self.trace.clear();
        self.trace.reserve(2 * n + m);
        self.queue.reset_all_idle(m);
        self.makespan = Time::ZERO;
    }

    /// Makespan of the last completed run.
    #[inline]
    pub fn makespan(&self) -> Time {
        self.makespan
    }

    /// Event trace of the last run, read in place.
    #[inline]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Executed slots per machine from the last run, read in place.
    #[inline]
    pub fn slots(&self) -> &[Vec<Slot>] {
        &self.slots
    }

    /// Clones the last run's outputs into an owned [`SimResult`] —
    /// identical to what [`crate::Engine::run`] would have returned.
    /// This allocates; hot paths should read the arena in place instead.
    pub fn to_sim_result(&self) -> SimResult {
        SimResult {
            schedule: Schedule::from_slots(self.slots.clone()),
            makespan: self.makespan,
            trace: self.trace.clone(),
        }
    }

    /// Moves the last run's outputs out as a [`SimResult`], leaving the
    /// arena empty (its next run re-grows the moved buffers).
    pub(crate) fn take_result(&mut self) -> SimResult {
        SimResult {
            schedule: Schedule::from_slots(std::mem::take(&mut self.slots)),
            makespan: self.makespan,
            trace: std::mem::take(&mut self.trace),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_core::{MachineId, TaskId};

    #[test]
    fn prepare_resets_dirty_state_and_resizes() {
        let mut arena = SimArena::with_capacity(4, 2);
        arena.prepare(4, 2);
        arena.pending[1] = false;
        arena.slots[0].push(Slot {
            task: TaskId::new(1),
            start: Time::ZERO,
            end: Time::of(1.0),
        });
        arena.trace.push(crate::trace::TraceEvent::Starved {
            time: Time::ZERO,
            machine: MachineId::new(0),
        });
        arena.makespan = Time::of(9.0);
        arena.queue.pop();

        // Shrink to a smaller shape: everything must come back pristine.
        arena.prepare(2, 1);
        assert_eq!(arena.pending, vec![true, true]);
        assert_eq!(arena.slots.len(), 1);
        assert!(arena.slots[0].is_empty());
        assert!(arena.trace.is_empty());
        assert_eq!(arena.makespan, Time::ZERO);
        assert_eq!(arena.queue.len(), 1);

        // Grow again: shape follows, state still pristine.
        arena.prepare(6, 3);
        assert_eq!(arena.pending.len(), 6);
        assert_eq!(arena.slots.len(), 3);
        assert_eq!(arena.queue.len(), 3);
    }

    #[test]
    fn steady_state_prepare_keeps_capacity() {
        let mut arena = SimArena::with_capacity(8, 4);
        arena.prepare(8, 4);
        let pending_cap = arena.pending.capacity();
        arena.prepare(8, 4);
        assert_eq!(arena.pending.capacity(), pending_cap);
    }
}
