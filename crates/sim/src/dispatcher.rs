//! Online dispatch policies for phase 2.
//!
//! A [`Dispatcher`] is invoked by the engine every time a machine becomes
//! idle and answers "which pending task should this machine start?". It
//! sees only scheduler-visible information (estimates, placement, what
//! has completed so far) — never the actual time of an unfinished task,
//! which is how the engine enforces the semi-clairvoyant model.

use rds_core::{Instance, MachineId, Placement, PlacementIndex, TaskId, Time};

/// Read-only scheduler-visible state handed to the dispatcher.
pub struct SimView<'a> {
    /// The instance (estimates, sizes).
    pub instance: &'a Instance,
    /// The phase-1 placement restricting eligibility.
    pub placement: &'a Placement,
    /// `pending[j]` is `true` while task `j` has not been started.
    pub pending: &'a [bool],
}

impl SimView<'_> {
    /// `true` if task `t` is still pending and may run on `machine`.
    pub fn eligible(&self, t: TaskId, machine: MachineId) -> bool {
        self.pending[t.index()] && self.placement.allows(t, machine)
    }
}

/// An online dispatch policy.
pub trait Dispatcher {
    /// Picks the task `machine` should start at time `now`, or `None` to
    /// leave it idle (a machine left idle is never offered work again,
    /// since all tasks are released at time zero and eligibility is
    /// static).
    fn next_task(&mut self, machine: MachineId, now: Time, view: &SimView<'_>) -> Option<TaskId>;

    /// Observation hook: `task` completed on `machine` at `now`, having
    /// taken `actual` time (this is the moment the actual time becomes
    /// known to the scheduler).
    fn on_complete(&mut self, task: TaskId, machine: MachineId, actual: Time, now: Time) {
        let _ = (task, machine, actual, now);
    }

    /// Observation hook: a previously started `task` was lost (its
    /// machine failed) and is pending again. Dispatchers that skip
    /// started tasks must make it eligible once more.
    fn on_requeue(&mut self, task: TaskId) {
        let _ = task;
    }
}

/// Dispatches tasks following a fixed priority order: the idle machine
/// receives the first pending task in `order` that its placement allows.
///
/// - order = task-id order → Graham's online List Scheduling;
/// - order = estimate-descending → online LPT (`LPT-No Restriction`'s
///   phase 2, and the within-group policy of `LS-Group` if so configured).
///
/// Two internal execution paths produce identical dispatch decisions
/// (the `indexed_dispatch_matches_scan` property test proves it):
///
/// - **scan** (the default): one global fast-forward cursor plus a
///   linear scan, amortized O(1) under the everywhere placement but O(n)
///   per idle event under restricted placements;
/// - **indexed** ([`OrderedDispatcher::indexed`] /
///   [`OrderedDispatcher::auto`]): the priority order pre-restricted per
///   machine from a [`PlacementIndex`], with one fast-forward cursor per
///   machine — amortized O(1) for k-replica and grouped placements too,
///   the paper's main workloads.
#[derive(Debug, Clone)]
pub struct OrderedDispatcher {
    order: Vec<TaskId>,
    /// Index of the first possibly-pending entry (fast-forward cursor
    /// valid for the everywhere-placement case; general placements scan).
    cursor: usize,
    /// `pos_in_order[j]` = position of task `j` in `order`
    /// (`ABSENT` when the order does not contain `j`), so a requeue
    /// rewinds the cursor in O(1) instead of rescanning from zero.
    pos_in_order: Vec<u32>,
    /// Per-machine restriction of `order`, when built.
    index: Option<IndexedOrder>,
}

/// Sentinel for "task not present in this priority order".
const ABSENT: u32 = u32::MAX;

/// The priority order restricted per machine (CSR layout over order
/// positions), plus one fast-forward cursor per machine.
#[derive(Debug, Clone)]
struct IndexedOrder {
    /// `offsets[i]..offsets[i+1]` bounds machine `i`'s slice of `ranks`;
    /// length `m + 1`.
    offsets: Vec<u32>,
    /// Positions into `order`, ascending within each machine — machine
    /// `i`'s eligible tasks in priority order.
    ranks: Vec<u32>,
    /// Absolute per-machine cursors into `ranks`; entries left of a
    /// cursor are known-started (unless a requeue rewound it).
    cursors: Vec<u32>,
}

impl IndexedOrder {
    fn build(pos_in_order: &[u32], index: &PlacementIndex) -> Self {
        let m = index.m();
        let mut offsets = Vec::with_capacity(m + 1);
        offsets.push(0u32);
        let mut ranks = Vec::with_capacity(index.total_replicas());
        for i in 0..m {
            let start = ranks.len();
            ranks.extend(
                index
                    .tasks_on(MachineId::new(i))
                    .map(|t| pos_in_order.get(t.index()).copied().unwrap_or(ABSENT))
                    .filter(|&r| r != ABSENT),
            );
            // The CSR row is ascending by task id; re-sort by priority
            // rank so each row replays `order` restricted to the machine.
            ranks[start..].sort_unstable();
            offsets.push(ranks.len() as u32);
        }
        let cursors = offsets[..m].to_vec();
        IndexedOrder {
            offsets,
            ranks,
            cursors,
        }
    }
}

impl OrderedDispatcher {
    /// Dispatcher following the given priority order (scan path).
    pub fn new(order: Vec<TaskId>) -> Self {
        let max_task = order.iter().map(|t| t.index() + 1).max().unwrap_or(0);
        let mut pos_in_order = vec![ABSENT; max_task];
        for (pos, t) in order.iter().enumerate() {
            pos_in_order[t.index()] = pos as u32;
        }
        OrderedDispatcher {
            order,
            cursor: 0,
            pos_in_order,
            index: None,
        }
    }

    /// Task-id (FIFO) order — Graham's List Scheduling.
    pub fn fifo(instance: &Instance) -> Self {
        Self::new(instance.task_ids().collect())
    }

    /// Non-increasing estimate order — online LPT.
    pub fn lpt_by_estimate(instance: &Instance) -> Self {
        Self::new(instance.ids_by_estimate_desc())
    }

    /// Dispatcher on the indexed path: `order` restricted per machine
    /// from the placement's eligibility index. Must be driven against
    /// the same placement the index was built from — the engine's
    /// feasibility check rejects anything else.
    pub fn indexed(order: Vec<TaskId>, index: &PlacementIndex) -> Self {
        let mut d = Self::new(order);
        d.index = Some(IndexedOrder::build(&d.pos_in_order, index));
        d
    }

    /// Picks the execution path for `placement`: indexed when the
    /// placement is restricted enough that per-machine lists pay for
    /// themselves ([`PlacementIndex::worth_indexing`]), the plain scan
    /// otherwise (dense placements are already amortized O(1)).
    pub fn auto(order: Vec<TaskId>, placement: &Placement) -> Self {
        if PlacementIndex::worth_indexing(placement) {
            Self::indexed(order, &PlacementIndex::build(placement))
        } else {
            Self::new(order)
        }
    }

    /// `true` when dispatching through per-machine indexed lists.
    pub fn is_indexed(&self) -> bool {
        self.index.is_some()
    }

    /// Rewinds every cursor so the dispatcher can serve a fresh run,
    /// without reallocating any internal storage — the reuse hook for
    /// Monte-Carlo campaigns that re-run one (instance, placement) pair
    /// across many realizations.
    pub fn reset(&mut self) {
        self.cursor = 0;
        if let Some(idx) = &mut self.index {
            let m = idx.cursors.len();
            idx.cursors.copy_from_slice(&idx.offsets[..m]);
        }
    }
}

impl Dispatcher for OrderedDispatcher {
    fn next_task(&mut self, machine: MachineId, _now: Time, view: &SimView<'_>) -> Option<TaskId> {
        if let Some(idx) = &mut self.index {
            // Indexed path: every entry in the machine's row is eligible
            // by construction, so pending is the only filter, and the
            // per-machine cursor makes the advance amortized O(1).
            let i = machine.index();
            let hi = idx.offsets[i + 1];
            let mut c = idx.cursors[i];
            while c < hi {
                let t = self.order[idx.ranks[c as usize] as usize];
                if view.pending[t.index()] {
                    idx.cursors[i] = c;
                    return Some(t);
                }
                c += 1;
            }
            idx.cursors[i] = c;
            return None;
        }
        // Scan path: advance the global cursor past started tasks to keep
        // the common case (everywhere placement) O(1) amortized.
        while self.cursor < self.order.len() && !view.pending[self.order[self.cursor].index()] {
            self.cursor += 1;
        }
        self.order[self.cursor..]
            .iter()
            .copied()
            .find(|&t| view.eligible(t, machine))
    }

    fn on_requeue(&mut self, task: TaskId) {
        // A started task became pending again: any cursor that passed its
        // order position must rewind — but only to that position, not to
        // zero, so a long fault campaign doesn't pay a full rescan per
        // machine failure.
        let Some(&pos) = self.pos_in_order.get(task.index()) else {
            return;
        };
        if pos == ABSENT {
            return;
        }
        self.cursor = self.cursor.min(pos as usize);
        if let Some(idx) = &mut self.index {
            for i in 0..idx.cursors.len() {
                let lo = idx.offsets[i] as usize;
                let hi = idx.offsets[i + 1] as usize;
                // The row holds `pos` iff the machine hosts the task;
                // rows are rank-sorted, so a binary search finds it.
                if let Ok(k) = idx.ranks[lo..hi].binary_search(&pos) {
                    idx.cursors[i] = idx.cursors[i].min((lo + k) as u32);
                }
            }
        }
    }
}

/// Dispatches a fixed task→machine assignment (no runtime choice):
/// each machine runs its preassigned tasks in the given per-machine order.
/// This is `LPT-No Choice`'s phase 2, and `SABO_Δ`'s.
#[derive(Debug, Clone)]
pub struct PinnedDispatcher {
    queues: Vec<Vec<TaskId>>, // per machine, in reverse execution order
}

impl PinnedDispatcher {
    /// Builds per-machine queues from a per-task machine vector, running
    /// each machine's tasks in task-id order. A counting pass sizes each
    /// queue exactly, so no queue ever reallocates while filling.
    pub fn new(machine_of: &[MachineId], m: usize) -> Self {
        let mut counts = vec![0usize; m];
        for id in machine_of {
            counts[id.index()] += 1;
        }
        let mut queues: Vec<Vec<TaskId>> = counts.into_iter().map(Vec::with_capacity).collect();
        // Filling in reverse task-id order means popping from the back
        // yields task-id order, with no post-hoc reverse pass.
        for (j, id) in machine_of.iter().enumerate().rev() {
            queues[id.index()].push(TaskId::new(j));
        }
        PinnedDispatcher { queues }
    }
}

impl Dispatcher for PinnedDispatcher {
    fn next_task(&mut self, machine: MachineId, _now: Time, view: &SimView<'_>) -> Option<TaskId> {
        let q = &mut self.queues[machine.index()];
        while let Some(&t) = q.last() {
            if view.pending[t.index()] {
                return Some(t);
            }
            q.pop();
        }
        None
    }

    // Note: a pinned task requeued after its machine failed is stranded
    // by construction (its queue entry was popped and no other machine
    // holds it); the failure engine reports it. No cursor to reset.
}

/// Two-stage dispatcher for `ABO_Δ`: first drain a pinned set (the
/// memory-intensive tasks), then serve the replicated time-intensive
/// tasks from a priority order.
#[derive(Debug, Clone)]
pub struct StagedDispatcher {
    pinned: PinnedDispatcher,
    ordered: OrderedDispatcher,
}

impl StagedDispatcher {
    /// `pinned_of[j] = Some(machine)` for stage-1 tasks; stage-2 tasks
    /// (the `None`s) are served in `order` afterwards.
    pub fn new(pinned_of: &[Option<MachineId>], m: usize, order: Vec<TaskId>) -> Self {
        let mut counts = vec![0usize; m];
        for id in pinned_of.iter().flatten() {
            counts[id.index()] += 1;
        }
        let mut queues: Vec<Vec<TaskId>> = counts.into_iter().map(Vec::with_capacity).collect();
        for (j, id) in pinned_of.iter().enumerate().rev() {
            if let Some(id) = id {
                queues[id.index()].push(TaskId::new(j));
            }
        }
        StagedDispatcher {
            pinned: PinnedDispatcher { queues },
            ordered: OrderedDispatcher::new(order),
        }
    }
}

impl Dispatcher for StagedDispatcher {
    fn next_task(&mut self, machine: MachineId, now: Time, view: &SimView<'_>) -> Option<TaskId> {
        self.pinned
            .next_task(machine, now, view)
            .or_else(|| self.ordered.next_task(machine, now, view))
    }

    fn on_requeue(&mut self, task: TaskId) {
        self.ordered.on_requeue(task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_core::{Instance, Placement};

    fn setup(n: usize, m: usize) -> (Instance, Placement) {
        let inst = Instance::from_estimates(&vec![1.0; n], m).unwrap();
        let p = Placement::everywhere(&inst);
        (inst, p)
    }

    #[test]
    fn ordered_respects_pending_and_order() {
        let (inst, p) = setup(3, 2);
        let mut pending = vec![true; 3];
        let mut d = OrderedDispatcher::fifo(&inst);
        let view = SimView {
            instance: &inst,
            placement: &p,
            pending: &pending,
        };
        assert_eq!(
            d.next_task(MachineId::new(0), Time::ZERO, &view),
            Some(TaskId::new(0))
        );
        pending[0] = false;
        let view = SimView {
            instance: &inst,
            placement: &p,
            pending: &pending,
        };
        assert_eq!(
            d.next_task(MachineId::new(1), Time::ZERO, &view),
            Some(TaskId::new(1))
        );
    }

    #[test]
    fn ordered_skips_ineligible_machines() {
        let inst = Instance::from_estimates(&[1.0, 1.0], 2).unwrap();
        let p = Placement::pinned(&inst, &[MachineId::new(1), MachineId::new(0)]).unwrap();
        let pending = vec![true; 2];
        let mut d = OrderedDispatcher::fifo(&inst);
        let view = SimView {
            instance: &inst,
            placement: &p,
            pending: &pending,
        };
        // Machine 0 cannot take task 0 (pinned to machine 1); gets task 1.
        assert_eq!(
            d.next_task(MachineId::new(0), Time::ZERO, &view),
            Some(TaskId::new(1))
        );
    }

    #[test]
    fn pinned_serves_only_own_queue() {
        let (inst, p) = setup(4, 2);
        let machine_of = [
            MachineId::new(0),
            MachineId::new(1),
            MachineId::new(0),
            MachineId::new(1),
        ];
        let mut d = PinnedDispatcher::new(&machine_of, 2);
        let pending = vec![true; 4];
        let view = SimView {
            instance: &inst,
            placement: &p,
            pending: &pending,
        };
        assert_eq!(
            d.next_task(MachineId::new(0), Time::ZERO, &view),
            Some(TaskId::new(0))
        );
        assert_eq!(
            d.next_task(MachineId::new(1), Time::ZERO, &view),
            Some(TaskId::new(1))
        );
    }

    #[test]
    fn requeue_rewinds_cursor_to_task_position_only() {
        // Start tasks 0..4 so the fast-forward cursor sits at 3 (it
        // advances lazily, at the start of the *next* call), then requeue
        // task 2: the cursor must rewind to exactly 2, so the next
        // dispatch returns task 2 without rescanning 0 and 1.
        let (inst, p) = setup(5, 1);
        let mut d = OrderedDispatcher::fifo(&inst);
        let mut pending = vec![true; 5];
        for j in 0..4 {
            let view = SimView {
                instance: &inst,
                placement: &p,
                pending: &pending,
            };
            assert_eq!(
                d.next_task(MachineId::new(0), Time::ZERO, &view),
                Some(TaskId::new(j))
            );
            pending[j] = false;
        }
        assert_eq!(d.cursor, 3);
        pending[2] = true; // the machine running task 2 failed
        d.on_requeue(TaskId::new(2));
        assert_eq!(d.cursor, 2, "rewind to the task's position, not zero");
        let view = SimView {
            instance: &inst,
            placement: &p,
            pending: &pending,
        };
        assert_eq!(
            d.next_task(MachineId::new(0), Time::ZERO, &view),
            Some(TaskId::new(2))
        );
        // Requeue of an earlier task still rewinds further back…
        d.on_requeue(TaskId::new(0));
        assert_eq!(d.cursor, 0);
        // …and a later position never moves the cursor forward.
        d.on_requeue(TaskId::new(4));
        assert_eq!(d.cursor, 0);
    }

    #[test]
    fn requeue_of_task_outside_order_is_a_noop() {
        let mut d = OrderedDispatcher::new(vec![TaskId::new(1), TaskId::new(0)]);
        d.cursor = 1;
        d.on_requeue(TaskId::new(7)); // never in the order
        assert_eq!(d.cursor, 1);
    }

    #[test]
    fn indexed_dispatch_matches_scan_decisions() {
        // Tasks 0,2 on machines {0,1}; tasks 1,3 on machines {2,3};
        // replay identical dispatch sequences through both paths.
        let inst = Instance::from_estimates(&[1.0; 4], 4).unwrap();
        let sets = vec![
            rds_core::MachineSet::Span { start: 0, end: 2 },
            rds_core::MachineSet::Span { start: 2, end: 4 },
            rds_core::MachineSet::Span { start: 0, end: 2 },
            rds_core::MachineSet::Span { start: 2, end: 4 },
        ];
        let p = Placement::new(&inst, sets).unwrap();
        let order: Vec<TaskId> = inst.task_ids().collect();
        let mut scan = OrderedDispatcher::new(order.clone());
        let mut indexed = OrderedDispatcher::auto(order, &p);
        assert!(indexed.is_indexed());
        let mut pending = vec![true; 4];
        for machine in [0usize, 2, 1, 3, 0] {
            let view = SimView {
                instance: &inst,
                placement: &p,
                pending: &pending,
            };
            let a = scan.next_task(MachineId::new(machine), Time::ZERO, &view);
            let view = SimView {
                instance: &inst,
                placement: &p,
                pending: &pending,
            };
            let b = indexed.next_task(MachineId::new(machine), Time::ZERO, &view);
            assert_eq!(a, b, "machine {machine}");
            if let Some(t) = a {
                pending[t.index()] = false;
            }
        }
    }

    #[test]
    fn indexed_requeue_rewinds_only_hosting_machines() {
        let inst = Instance::from_estimates(&[1.0; 4], 2).unwrap();
        // Tasks 0,1 on machine 0; tasks 2,3 on machine 1.
        let pins = [
            MachineId::new(0),
            MachineId::new(0),
            MachineId::new(1),
            MachineId::new(1),
        ];
        let p = Placement::pinned(&inst, &pins).unwrap();
        let order: Vec<TaskId> = inst.task_ids().collect();
        let mut d = OrderedDispatcher::auto(order, &p);
        assert!(d.is_indexed());
        let mut pending = vec![true; 4];
        // Drain machine 0 fully and machine 1 once.
        for (machine, expect) in [(0, 0), (0, 1), (1, 2)] {
            let view = SimView {
                instance: &inst,
                placement: &p,
                pending: &pending,
            };
            let got = d
                .next_task(MachineId::new(machine), Time::ZERO, &view)
                .unwrap();
            assert_eq!(got.index(), expect);
            pending[expect] = false;
        }
        // Requeue task 1 (hosted only on machine 0): machine 0 sees it
        // again, machine 1's cursor is untouched and yields task 3.
        pending[1] = true;
        d.on_requeue(TaskId::new(1));
        let view = SimView {
            instance: &inst,
            placement: &p,
            pending: &pending,
        };
        assert_eq!(
            d.next_task(MachineId::new(0), Time::ZERO, &view),
            Some(TaskId::new(1))
        );
        let view = SimView {
            instance: &inst,
            placement: &p,
            pending: &pending,
        };
        assert_eq!(
            d.next_task(MachineId::new(1), Time::ZERO, &view),
            Some(TaskId::new(3))
        );
    }

    #[test]
    fn reset_restores_a_fresh_dispatcher_without_rebuilding() {
        let inst = Instance::from_estimates(&[1.0; 3], 2).unwrap();
        let pins = [MachineId::new(0), MachineId::new(1), MachineId::new(0)];
        let p = Placement::pinned(&inst, &pins).unwrap();
        for mut d in [
            OrderedDispatcher::fifo(&inst),
            OrderedDispatcher::auto(inst.task_ids().collect(), &p),
        ] {
            let mut pending = vec![true; 3];
            let view = SimView {
                instance: &inst,
                placement: &p,
                pending: &pending,
            };
            let first = d.next_task(MachineId::new(0), Time::ZERO, &view);
            assert_eq!(first, Some(TaskId::new(0)));
            pending[0] = false;
            pending[2] = false;
            let view = SimView {
                instance: &inst,
                placement: &p,
                pending: &pending,
            };
            assert_eq!(d.next_task(MachineId::new(0), Time::ZERO, &view), None);
            // A reset must serve the next trial exactly like a rebuild.
            d.reset();
            let pending = vec![true; 3];
            let view = SimView {
                instance: &inst,
                placement: &p,
                pending: &pending,
            };
            assert_eq!(
                d.next_task(MachineId::new(0), Time::ZERO, &view),
                Some(TaskId::new(0))
            );
        }
    }

    #[test]
    fn staged_drains_pinned_before_ordered() {
        let (inst, p) = setup(3, 1);
        let pinned_of = [Some(MachineId::new(0)), None, None];
        let mut d = StagedDispatcher::new(&pinned_of, 1, vec![TaskId::new(2), TaskId::new(1)]);
        let mut pending = vec![true; 3];
        let view = SimView {
            instance: &inst,
            placement: &p,
            pending: &pending,
        };
        assert_eq!(
            d.next_task(MachineId::new(0), Time::ZERO, &view),
            Some(TaskId::new(0))
        );
        pending[0] = false;
        let view = SimView {
            instance: &inst,
            placement: &p,
            pending: &pending,
        };
        // Then the ordered stage, in the given (2 before 1) order.
        assert_eq!(
            d.next_task(MachineId::new(0), Time::ZERO, &view),
            Some(TaskId::new(2))
        );
    }
}
