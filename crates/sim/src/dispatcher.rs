//! Online dispatch policies for phase 2.
//!
//! A [`Dispatcher`] is invoked by the engine every time a machine becomes
//! idle and answers "which pending task should this machine start?". It
//! sees only scheduler-visible information (estimates, placement, what
//! has completed so far) — never the actual time of an unfinished task,
//! which is how the engine enforces the semi-clairvoyant model.

use rds_core::{
    Error, Instance, MachineId, MachineSet, NetworkTopology, Placement, PlacementIndex, Result,
    TaskId, Time,
};

/// Started flag, stored in bit 31 of [`HotTask::hi`].
const STARTED: u32 = 1 << 31;
/// Span-end sentinel meaning "eligibility needs [`Placement::allows`]".
const NON_SPAN: u32 = STARTED - 1;

/// Packed per-task record for the dispatch hot loop: the pending flag,
/// the eligibility span, and the actual processing time share one
/// 16-byte record. At n=10^6 the dispatcher's pending check, the
/// engine's feasibility check, and the duration lookup would each be an
/// independent cache miss on separate arrays; packed together, the
/// scan's pending read warms the very line the engine reads next.
///
/// The span covers the `One`/`Span`/`All` placement shapes (the paper's
/// strategies); arbitrary mask placements store a sentinel and fall
/// back to [`Placement::allows`]. The faults engine, which tracks its
/// own per-attempt durations, fills only the pending flag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotTask {
    /// Actual processing time (zero on the faults path, which never
    /// reads it — its durations are per-attempt, not per-task).
    actual: f64,
    /// Eligibility span start (meaningless under the sentinel).
    lo: u32,
    /// Bits 0..31: span end (exclusive) or [`NON_SPAN`]; bit 31: the
    /// started flag.
    hi: u32,
}

impl HotTask {
    /// Record for a pending task with the given actual time and
    /// placement set (`m` resolves the `All` span).
    pub fn new(actual: Time, set: &MachineSet, m: usize) -> Self {
        let (lo, hi) = match *set {
            MachineSet::One(id) => (id.index() as u32, id.index() as u32 + 1),
            MachineSet::Span { start, end } => (start, end),
            MachineSet::All => (0, m as u32),
            MachineSet::Mask(_) => (0, NON_SPAN),
        };
        debug_assert!(hi <= NON_SPAN, "machine count must fit in 31 bits");
        HotTask {
            actual: actual.get(),
            lo,
            hi,
        }
    }

    /// Record for a slotted run whose dispatcher embeds task ids
    /// ([`Dispatcher::embeds_task_ids`]): the span field carries the
    /// task id instead, so a dispatch resolves probe, duration, and
    /// identity from one cache line. Span eligibility is deliberately
    /// absent — the embedding dispatcher vouches for it.
    pub fn slotted(actual: Time, task: u32) -> Self {
        HotTask {
            actual: actual.get(),
            lo: task,
            hi: NON_SPAN,
        }
    }

    /// The embedded task id of a [`Self::slotted`] record.
    #[inline]
    pub(crate) fn slot_task(&self) -> u32 {
        self.lo
    }

    /// Record carrying only the pending flag (faults path).
    pub fn pending_only(pending: bool) -> Self {
        HotTask {
            actual: 0.0,
            lo: 0,
            hi: if pending {
                NON_SPAN
            } else {
                NON_SPAN | STARTED
            },
        }
    }

    /// `true` while the task has not been started.
    #[inline]
    pub fn is_pending(&self) -> bool {
        self.hi & STARTED == 0
    }

    /// Marks the task started.
    #[inline]
    pub(crate) fn mark_started(&mut self) {
        self.hi |= STARTED;
    }

    /// The task's actual processing time.
    #[inline]
    pub(crate) fn actual(&self) -> Time {
        Time::of(self.actual)
    }

    /// Span eligibility; `None` when the record holds the sentinel and
    /// the caller must consult the placement.
    #[inline]
    pub(crate) fn span_allows(&self, machine: u32) -> Option<bool> {
        let end = self.hi & !STARTED;
        if end == NON_SPAN {
            None
        } else {
            Some(self.lo <= machine && machine < end)
        }
    }
}

/// Read-only scheduler-visible state handed to the dispatcher.
pub struct SimView<'a> {
    /// The instance (estimates, sizes).
    pub instance: &'a Instance,
    /// The phase-1 placement restricting eligibility.
    pub placement: &'a Placement,
    /// One hot record per task. Layout depends on [`Self::by_slot`]:
    /// task-id order (`tasks[j]` is task `j`) when `false`, the
    /// dispatcher's [`Dispatcher::hot_order`] when `true`.
    pub tasks: &'a [HotTask],
    /// `true` when the engine laid `tasks` out in the dispatcher's own
    /// [`Dispatcher::hot_order`] — records then live at their *order
    /// position*, not their task id. Dispatch walks order positions
    /// monotonically, so in that layout the probe frontier is a
    /// sequential sweep instead of one random DRAM-latency read per
    /// task at n = 10^6. Dispatchers that declare a layout must index
    /// `tasks` by position whenever this is set.
    pub by_slot: bool,
}

impl SimView<'_> {
    /// `true` while task `t` has not been started.
    #[inline]
    pub fn is_pending(&self, t: TaskId) -> bool {
        self.tasks[t.index()].is_pending()
    }

    /// `true` if task `t` is still pending and may run on `machine`.
    #[inline]
    pub fn eligible(&self, t: TaskId, machine: MachineId) -> bool {
        let h = &self.tasks[t.index()];
        h.is_pending()
            && h.span_allows(machine.index() as u32)
                .unwrap_or_else(|| self.placement.allows(t, machine))
    }
}

/// An online dispatch policy.
pub trait Dispatcher {
    /// Picks the task `machine` should start at time `now`, or `None` to
    /// leave it idle (a machine left idle is never offered work again,
    /// since all tasks are released at time zero and eligibility is
    /// static).
    fn next_task(&mut self, machine: MachineId, now: Time, view: &SimView<'_>) -> Option<TaskId>;

    /// Observation hook: `task` completed on `machine` at `now`, having
    /// taken `actual` time (this is the moment the actual time becomes
    /// known to the scheduler).
    fn on_complete(&mut self, task: TaskId, machine: MachineId, actual: Time, now: Time) {
        let _ = (task, machine, actual, now);
    }

    /// Observation hook: a previously started `task` was lost (its
    /// machine failed) and is pending again. Dispatchers that skip
    /// started tasks must make it eligible once more.
    fn on_requeue(&mut self, task: TaskId) {
        let _ = task;
    }

    /// The dispatcher's preferred hot-column layout: slot `s` should
    /// hold the record of task `hot_order()[s]`. Returning `Some`
    /// promises the slice is a permutation of every task id and commits
    /// the dispatcher to (a) indexing `view.tasks` by order position
    /// whenever `view.by_slot` is set, and (b) reporting that position
    /// from [`Self::last_slot`] after each successful dispatch. `None`
    /// (the default) keeps the task-id layout.
    fn hot_order(&self) -> Option<&[TaskId]> {
        None
    }

    /// Slot — in the [`Self::hot_order`] layout — of the task returned
    /// by the immediately preceding [`Self::next_task`] call, or
    /// `u32::MAX` for identity-layout dispatchers. The engine uses it
    /// to reach the task's hot record without a task-id→slot lookup.
    fn last_slot(&self) -> u32 {
        u32::MAX
    }

    /// `true` when the dispatcher reads task ids out of the hot records
    /// themselves (slotted runs only). The engine then fills the column
    /// with [`HotTask::slotted`] records — id in place of the span — and
    /// trusts the dispatcher for placement eligibility, skipping the
    /// per-dispatch span check; `RDS_VALIDATE` still verifies the full
    /// schedule against the placement after the run. This keeps each
    /// dispatch on a single hot-column cache line at n = 10^6, where a
    /// second indexed column would cost a DRAM-latency miss per event.
    fn embeds_task_ids(&self) -> bool {
        false
    }

    /// Best-effort cache warm-up for an upcoming dispatch on `machine`.
    /// The engine calls this for every event in its look-ahead window
    /// before dispatching any of them: the hook's loads are mutually
    /// independent, so their DRAM misses overlap instead of serializing
    /// one dependent miss per event — the difference between ~114 ns and
    /// ~15 ns per frontier touch at n = 10^6. Must not change any
    /// observable dispatcher state.
    fn warm(&self, machine: MachineId, view: &SimView<'_>) {
        let _ = (machine, view);
    }
}

/// Dispatches tasks following a fixed priority order: the idle machine
/// receives the first pending task in `order` that its placement allows.
///
/// - order = task-id order → Graham's online List Scheduling;
/// - order = estimate-descending → online LPT (`LPT-No Restriction`'s
///   phase 2, and the within-group policy of `LS-Group` if so configured).
///
/// Two internal execution paths produce identical dispatch decisions
/// (the `indexed_dispatch_matches_scan` property test proves it):
///
/// - **scan** (the default): one global fast-forward cursor plus a
///   linear scan, amortized O(1) under the everywhere placement but O(n)
///   per idle event under restricted placements;
/// - **indexed** ([`OrderedDispatcher::indexed`] /
///   [`OrderedDispatcher::auto`]): the priority order pre-restricted per
///   machine from a [`PlacementIndex`], with one fast-forward cursor per
///   machine — amortized O(1) for k-replica and grouped placements too,
///   the paper's main workloads.
#[derive(Debug, Clone)]
pub struct OrderedDispatcher {
    order: Vec<TaskId>,
    /// Index of the first possibly-pending entry (fast-forward cursor
    /// valid for the everywhere-placement case; general placements scan).
    cursor: usize,
    /// `pos_in_order[j]` = position of task `j` in `order`
    /// (`ABSENT` when the order does not contain `j`), so a requeue
    /// rewinds the cursor in O(1) instead of rescanning from zero.
    pos_in_order: Vec<u32>,
    /// Per-machine restriction of `order`, when built.
    index: Option<IndexedOrder>,
    /// `true` when `order` is a full permutation of the task ids, so it
    /// can serve as the engine's hot-column layout.
    layout_ok: bool,
    /// CSR-order hot layout (`csr_layout[c]` = task of CSR entry `c`),
    /// available when the deduplicated rows *partition* the task set —
    /// every span workload. In that layout each row probes its own
    /// contiguous hot-column segment strictly left to right, so the
    /// active working set is one cache line per row instead of a
    /// multi-megabyte random band. Preferred over the order layout.
    csr_layout: Option<Vec<TaskId>>,
    /// Order position of the last dispatched task (`u32::MAX` outside
    /// a slotted run) — the [`Dispatcher::last_slot`] answer.
    last: u32,
}

/// Sentinel for "task not present in this priority order".
const ABSENT: u32 = u32::MAX;

/// The priority order restricted per machine (CSR layout over order
/// positions), plus one fast-forward cursor per machine.
#[derive(Debug, Clone)]
struct IndexedOrder {
    /// Machine → row id. Machines whose candidate lists are identical
    /// (e.g. every machine of one span group) share a row — and with it
    /// one cursor, so a task started by one sibling never costs the
    /// others a re-probe of its (cold, random) pending record. Under the
    /// paper's span placements this halves the hot-path pending reads
    /// and the `tasks` column footprint at n = 10^6.
    row: Vec<u32>,
    /// `offsets[r]..offsets[r+1]` bounds row `r`'s slice of `ranks`;
    /// length `rows + 1`.
    offsets: Vec<u32>,
    /// Positions into `order`, ascending within each row — the row's
    /// eligible tasks in priority order. Kept for the requeue
    /// rewind's binary search; the dispatch scan reads `tasks`.
    ranks: Vec<u32>,
    /// `tasks[c]` = `order[ranks[c]].index()`: the task at each rank
    /// position, precomputed so the hot scan reads one sequential
    /// column instead of bouncing through `order` — at n=10^6 that
    /// indirection is a cache miss per scan step.
    tasks: Vec<u32>,
    /// Absolute per-row cursors into `ranks`; entries left of a cursor
    /// are known-started (unless a requeue rewound it). Sharing a
    /// cursor is sound because "started" is monotone within a run: the
    /// first pending entry at or after the shared cursor is the same
    /// task every sibling's private scan would have found.
    cursors: Vec<u32>,
    /// Per-machine `(cursor, end)` frontier over the machine's row
    /// segment, used by the CSR-layout dispatch path: the whole probe
    /// state is one 8-byte read away from the machine id, with no
    /// row/offsets hops on the dependent chain. Private cursors re-skip
    /// a started entry at most once per sibling — still amortized O(1)
    /// per dispatch since rows hold at most a handful of machines.
    mframe: Vec<(u32, u32)>,
}

impl IndexedOrder {
    fn build(order: &[TaskId], pos_in_order: &[u32], index: &PlacementIndex) -> Self {
        let m = index.m();
        let mut row = Vec::with_capacity(m);
        let mut offsets = vec![0u32];
        let mut ranks: Vec<u32> = Vec::new();
        let mut scratch: Vec<u32> = Vec::new();
        let mut seen: std::collections::HashMap<Vec<u32>, u32> = std::collections::HashMap::new();
        for i in 0..m {
            scratch.clear();
            scratch.extend(
                index
                    .tasks_on(MachineId::new(i))
                    .map(|t| pos_in_order.get(t.index()).copied().unwrap_or(ABSENT))
                    .filter(|&r| r != ABSENT),
            );
            // The CSR row is ascending by task id; re-sort by priority
            // rank so each row replays `order` restricted to the machine.
            scratch.sort_unstable();
            let next = offsets.len() as u32 - 1;
            let r = *seen.entry(scratch.clone()).or_insert_with(|| {
                ranks.extend_from_slice(&scratch);
                offsets.push(ranks.len() as u32);
                next
            });
            row.push(r);
        }
        let tasks = ranks
            .iter()
            .map(|&r| order[r as usize].index() as u32)
            .collect();
        let rows = offsets.len() - 1;
        let cursors = offsets[..rows].to_vec();
        let mframe = row
            .iter()
            .map(|&r| (offsets[r as usize], offsets[r as usize + 1]))
            .collect();
        IndexedOrder {
            row,
            offsets,
            ranks,
            tasks,
            cursors,
            mframe,
        }
    }
}

impl OrderedDispatcher {
    /// Dispatcher following the given priority order (scan path).
    pub fn new(order: Vec<TaskId>) -> Self {
        let max_task = order.iter().map(|t| t.index() + 1).max().unwrap_or(0);
        let mut pos_in_order = vec![ABSENT; max_task];
        for (pos, t) in order.iter().enumerate() {
            pos_in_order[t.index()] = pos as u32;
        }
        // A full permutation of 0..n (no gap, no duplicate — a duplicate
        // forces a gap at equal lengths) can double as the hot layout.
        let layout_ok = pos_in_order.len() == order.len() && !pos_in_order.contains(&ABSENT);
        OrderedDispatcher {
            order,
            cursor: 0,
            pos_in_order,
            index: None,
            layout_ok,
            csr_layout: None,
            last: u32::MAX,
        }
    }

    /// Task-id (FIFO) order — Graham's List Scheduling.
    pub fn fifo(instance: &Instance) -> Self {
        Self::new(instance.task_ids().collect())
    }

    /// Non-increasing estimate order — online LPT.
    pub fn lpt_by_estimate(instance: &Instance) -> Self {
        Self::new(instance.ids_by_estimate_desc())
    }

    /// Dispatcher on the indexed path: `order` restricted per machine
    /// from the placement's eligibility index. Must be driven against
    /// the same placement the index was built from — the engine's
    /// feasibility check rejects anything else.
    pub fn indexed(order: Vec<TaskId>, index: &PlacementIndex) -> Self {
        let mut d = Self::new(order);
        let idx = IndexedOrder::build(&d.order, &d.pos_in_order, index);
        // The CSR layout is valid when the deduplicated rows cover each
        // task exactly once (then `tasks` is a permutation of the ids).
        if d.layout_ok && idx.tasks.len() == d.order.len() {
            let mut seen = vec![false; d.order.len()];
            let partition = idx.tasks.iter().all(|&t| {
                let s = &mut seen[t as usize];
                !std::mem::replace(s, true)
            });
            if partition {
                d.csr_layout = Some(idx.tasks.iter().map(|&t| TaskId::new(t as usize)).collect());
            }
        }
        d.index = Some(idx);
        d
    }

    /// Picks the execution path for `placement`: indexed when the
    /// placement is restricted enough that per-machine lists pay for
    /// themselves ([`PlacementIndex::worth_indexing`]), the plain scan
    /// otherwise (dense placements are already amortized O(1)).
    pub fn auto(order: Vec<TaskId>, placement: &Placement) -> Self {
        if PlacementIndex::worth_indexing(placement) {
            Self::indexed(order, &PlacementIndex::build(placement))
        } else {
            Self::new(order)
        }
    }

    /// `true` when dispatching through per-machine indexed lists.
    pub fn is_indexed(&self) -> bool {
        self.index.is_some()
    }

    /// Rewinds every cursor so the dispatcher can serve a fresh run,
    /// without reallocating any internal storage — the reuse hook for
    /// Monte-Carlo campaigns that re-run one (instance, placement) pair
    /// across many realizations.
    pub fn reset(&mut self) {
        self.cursor = 0;
        self.last = u32::MAX;
        if let Some(idx) = &mut self.index {
            let rows = idx.cursors.len();
            idx.cursors.copy_from_slice(&idx.offsets[..rows]);
            for (i, f) in idx.mframe.iter_mut().enumerate() {
                f.0 = idx.offsets[idx.row[i] as usize];
            }
        }
    }
}

impl Dispatcher for OrderedDispatcher {
    fn next_task(&mut self, machine: MachineId, _now: Time, view: &SimView<'_>) -> Option<TaskId> {
        self.last = u32::MAX;
        // In a slotted run the hot column is in *our* declared layout —
        // CSR entry order when available, order-position otherwise; in
        // an unslotted run records live at their task ids.
        let by_slot = view.by_slot;
        let csr_slots = self.csr_layout.is_some();
        if let Some(idx) = &mut self.index {
            if by_slot && csr_slots {
                // CSR fast path: the machine's whole probe state is its
                // `(cursor, end)` pair, and the probe index IS the slot,
                // so each dispatch is one metadata read plus a strictly
                // left-to-right sweep of the machine's own hot-column
                // segment — the access pattern that keeps n = 10^6 runs
                // cache-resident.
                let (mut c, hi) = idx.mframe[machine.index()];
                while c < hi {
                    let rec = &view.tasks[c as usize];
                    if rec.is_pending() {
                        idx.mframe[machine.index()].0 = c;
                        self.last = c;
                        return Some(TaskId::new(rec.slot_task() as usize));
                    }
                    c += 1;
                }
                idx.mframe[machine.index()].0 = c;
                return None;
            }
            // Indexed path: every entry in the machine's row is eligible
            // by construction, so pending is the only filter, and the
            // shared per-row cursor makes the advance amortized O(1)
            // across all machines sharing the row. Under the CSR layout
            // the probe IS the cursor position: each row sweeps its own
            // contiguous hot-column segment left to right, the access
            // pattern that keeps n = 10^6 runs cache-resident.
            let r = idx.row[machine.index()] as usize;
            let hi = idx.offsets[r + 1];
            let mut c = idx.cursors[r];
            while c < hi {
                let slot = if !by_slot {
                    idx.tasks[c as usize]
                } else if csr_slots {
                    c
                } else {
                    idx.ranks[c as usize]
                };
                if view.tasks[slot as usize].is_pending() {
                    idx.cursors[r] = c;
                    if by_slot {
                        self.last = slot;
                    }
                    return Some(TaskId::new(idx.tasks[c as usize] as usize));
                }
                c += 1;
            }
            idx.cursors[r] = c;
            return None;
        }
        // Scan path: advance the global cursor past started tasks to keep
        // the common case (everywhere placement) O(1) amortized. A task's
        // slot in our layout is simply its order position.
        while self.cursor < self.order.len() {
            let slot = if by_slot {
                self.cursor
            } else {
                self.order[self.cursor].index()
            };
            if view.tasks[slot].is_pending() {
                break;
            }
            self.cursor += 1;
        }
        for k in self.cursor..self.order.len() {
            let t = self.order[k];
            let h = &view.tasks[if by_slot { k } else { t.index() }];
            let ok = h.is_pending()
                && h.span_allows(machine.index() as u32)
                    .unwrap_or_else(|| view.placement.allows(t, machine));
            if ok {
                if by_slot {
                    self.last = k as u32;
                }
                return Some(t);
            }
        }
        None
    }

    fn hot_order(&self) -> Option<&[TaskId]> {
        if let Some(csr) = &self.csr_layout {
            return Some(csr.as_slice());
        }
        self.layout_ok.then_some(self.order.as_slice())
    }

    fn embeds_task_ids(&self) -> bool {
        self.csr_layout.is_some()
    }

    fn warm(&self, machine: MachineId, view: &SimView<'_>) {
        // Touch the machine's current frontier record so the real probe
        // hits a warm line. `black_box` forces the 16-byte load without
        // letting the optimizer see the value is unused.
        if self.csr_layout.is_none() {
            return;
        }
        let Some(idx) = &self.index else { return };
        let (c, hi) = idx.mframe[machine.index()];
        if c < hi {
            std::hint::black_box(view.tasks[c as usize]);
        }
    }

    fn last_slot(&self) -> u32 {
        self.last
    }

    fn on_requeue(&mut self, task: TaskId) {
        // A started task became pending again: any cursor that passed its
        // order position must rewind — but only to that position, not to
        // zero, so a long fault campaign doesn't pay a full rescan per
        // machine failure.
        let Some(&pos) = self.pos_in_order.get(task.index()) else {
            return;
        };
        if pos == ABSENT {
            return;
        }
        self.cursor = self.cursor.min(pos as usize);
        if let Some(idx) = &mut self.index {
            for r in 0..idx.cursors.len() {
                let lo = idx.offsets[r] as usize;
                let hi = idx.offsets[r + 1] as usize;
                // The row holds `pos` iff its machines host the task;
                // rows are rank-sorted, so a binary search finds it.
                if let Ok(k) = idx.ranks[lo..hi].binary_search(&pos) {
                    idx.cursors[r] = idx.cursors[r].min((lo + k) as u32);
                }
            }
            // Keep the per-machine CSR frontiers no further right than
            // their (already rewound) shared row cursor — a smaller
            // cursor is always sound, it just re-scans a few entries.
            for (i, f) in idx.mframe.iter_mut().enumerate() {
                f.0 = f.0.min(idx.cursors[idx.row[i] as usize]);
            }
        }
    }
}

/// Locality-aware dispatch: the idle machine receives, among the
/// pending tasks its placement allows, the one with the *cheapest
/// transfer* from its data home ([`Placement::primary`]) — ties broken
/// by the priority order. A busier-but-local replica therefore beats a
/// remote one, the data-locality objective of Zhao et al.
///
/// The transfer the dispatcher minimizes is exactly what
/// [`crate::Engine::run_hetero`] charges when the task starts, so the
/// policy and the cost model agree by construction.
///
/// Collapse guarantee: under an all-zero topology every candidate costs
/// `0.0`, the scan returns the *first* pending eligible task in order —
/// precisely [`OrderedDispatcher`]'s scan decision — so the zero-latency
/// run is schedule-identical to the baseline dispatcher (the
/// `hetero_props` differential proptests pin this down).
#[derive(Debug, Clone)]
pub struct LocalityDispatcher {
    order: Vec<TaskId>,
    /// Fast-forward cursor past known-started order positions.
    cursor: usize,
    topology: NetworkTopology,
    /// `homes[j]` = primary machine of task `j`.
    homes: Vec<u32>,
}

impl LocalityDispatcher {
    /// Dispatcher over `order` charging transfers per `topology`, with
    /// each task's home taken from `placement`.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] when the topology's machine count
    /// differs from the placement's.
    pub fn new(
        order: Vec<TaskId>,
        placement: &Placement,
        topology: NetworkTopology,
    ) -> Result<Self> {
        if topology.m() != placement.m() {
            return Err(Error::InvalidParameter {
                what: "network topology covers a different machine count than the placement",
            });
        }
        let homes = (0..placement.n())
            .map(|j| placement.primary(TaskId::new(j)).index() as u32)
            .collect();
        Ok(LocalityDispatcher {
            order,
            cursor: 0,
            topology,
            homes,
        })
    }

    /// Task-id (FIFO) priority with locality tie-breaking.
    ///
    /// # Errors
    /// Same contract as [`Self::new`].
    pub fn fifo(
        instance: &Instance,
        placement: &Placement,
        topology: NetworkTopology,
    ) -> Result<Self> {
        Self::new(instance.task_ids().collect(), placement, topology)
    }

    /// Non-increasing estimate (LPT) priority with locality
    /// tie-breaking.
    ///
    /// # Errors
    /// Same contract as [`Self::new`].
    pub fn lpt_by_estimate(
        instance: &Instance,
        placement: &Placement,
        topology: NetworkTopology,
    ) -> Result<Self> {
        Self::new(instance.ids_by_estimate_desc(), placement, topology)
    }

    /// The transfer latency this dispatcher charges for starting `task`
    /// on `machine` (zero on the task's home machine).
    #[inline]
    pub fn transfer(&self, task: TaskId, machine: MachineId) -> f64 {
        let home = MachineId::new(self.homes[task.index()] as usize);
        self.topology.latency(home, machine)
    }
}

impl Dispatcher for LocalityDispatcher {
    fn next_task(&mut self, machine: MachineId, _now: Time, view: &SimView<'_>) -> Option<TaskId> {
        // No hot_order is declared, so records always live at task ids.
        debug_assert!(!view.by_slot, "LocalityDispatcher never declares a layout");
        while self.cursor < self.order.len()
            && !view.tasks[self.order[self.cursor].index()].is_pending()
        {
            self.cursor += 1;
        }
        let mut best: Option<(f64, TaskId)> = None;
        for k in self.cursor..self.order.len() {
            let t = self.order[k];
            let h = &view.tasks[t.index()];
            let ok = h.is_pending()
                && h.span_allows(machine.index() as u32)
                    .unwrap_or_else(|| view.placement.allows(t, machine));
            if !ok {
                continue;
            }
            let cost = self.transfer(t, machine);
            if cost == 0.0 {
                // A local candidate cannot be beaten, and scanning in
                // priority order makes this the best-ranked local one.
                return Some(t);
            }
            // Strict `<` keeps the earliest-ranked task among equal
            // costs, matching the (cost, rank) lexicographic minimum.
            if best.is_none_or(|(c, _)| cost < c) {
                best = Some((cost, t));
            }
        }
        best.map(|(_, t)| t)
    }

    fn on_requeue(&mut self, _task: TaskId) {
        // Faults are rare on this path; a full rescan is simplest and
        // always sound.
        self.cursor = 0;
    }
}

/// Dispatches a fixed task→machine assignment (no runtime choice):
/// each machine runs its preassigned tasks in the given per-machine order.
/// This is `LPT-No Choice`'s phase 2, and `SABO_Δ`'s.
#[derive(Debug, Clone)]
pub struct PinnedDispatcher {
    queues: Vec<Vec<TaskId>>, // per machine, in reverse execution order
}

impl PinnedDispatcher {
    /// Builds per-machine queues from a per-task machine vector, running
    /// each machine's tasks in task-id order. A counting pass sizes each
    /// queue exactly, so no queue ever reallocates while filling.
    pub fn new(machine_of: &[MachineId], m: usize) -> Self {
        let mut counts = vec![0usize; m];
        for id in machine_of {
            counts[id.index()] += 1;
        }
        let mut queues: Vec<Vec<TaskId>> = counts.into_iter().map(Vec::with_capacity).collect();
        // Filling in reverse task-id order means popping from the back
        // yields task-id order, with no post-hoc reverse pass.
        for (j, id) in machine_of.iter().enumerate().rev() {
            queues[id.index()].push(TaskId::new(j));
        }
        PinnedDispatcher { queues }
    }
}

impl Dispatcher for PinnedDispatcher {
    fn next_task(&mut self, machine: MachineId, _now: Time, view: &SimView<'_>) -> Option<TaskId> {
        let q = &mut self.queues[machine.index()];
        while let Some(&t) = q.last() {
            if view.is_pending(t) {
                return Some(t);
            }
            q.pop();
        }
        None
    }

    // Note: a pinned task requeued after its machine failed is stranded
    // by construction (its queue entry was popped and no other machine
    // holds it); the failure engine reports it. No cursor to reset.
}

/// Two-stage dispatcher for `ABO_Δ`: first drain a pinned set (the
/// memory-intensive tasks), then serve the replicated time-intensive
/// tasks from a priority order.
#[derive(Debug, Clone)]
pub struct StagedDispatcher {
    pinned: PinnedDispatcher,
    ordered: OrderedDispatcher,
}

impl StagedDispatcher {
    /// `pinned_of[j] = Some(machine)` for stage-1 tasks; stage-2 tasks
    /// (the `None`s) are served in `order` afterwards.
    pub fn new(pinned_of: &[Option<MachineId>], m: usize, order: Vec<TaskId>) -> Self {
        let mut counts = vec![0usize; m];
        for id in pinned_of.iter().flatten() {
            counts[id.index()] += 1;
        }
        let mut queues: Vec<Vec<TaskId>> = counts.into_iter().map(Vec::with_capacity).collect();
        for (j, id) in pinned_of.iter().enumerate().rev() {
            if let Some(id) = id {
                queues[id.index()].push(TaskId::new(j));
            }
        }
        StagedDispatcher {
            pinned: PinnedDispatcher { queues },
            ordered: OrderedDispatcher::new(order),
        }
    }
}

impl Dispatcher for StagedDispatcher {
    fn next_task(&mut self, machine: MachineId, now: Time, view: &SimView<'_>) -> Option<TaskId> {
        self.pinned
            .next_task(machine, now, view)
            .or_else(|| self.ordered.next_task(machine, now, view))
    }

    fn on_requeue(&mut self, task: TaskId) {
        self.ordered.on_requeue(task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_core::{Instance, Placement};

    fn setup(n: usize, m: usize) -> (Instance, Placement) {
        let inst = Instance::from_estimates(&vec![1.0; n], m).unwrap();
        let p = Placement::everywhere(&inst);
        (inst, p)
    }

    #[test]
    fn ordered_respects_pending_and_order() {
        let (inst, p) = setup(3, 2);
        let mut pending = vec![HotTask::pending_only(true); 3];
        let mut d = OrderedDispatcher::fifo(&inst);
        let view = SimView {
            instance: &inst,
            placement: &p,
            tasks: &pending,
            by_slot: false,
        };
        assert_eq!(
            d.next_task(MachineId::new(0), Time::ZERO, &view),
            Some(TaskId::new(0))
        );
        pending[0].mark_started();
        let view = SimView {
            instance: &inst,
            placement: &p,
            tasks: &pending,
            by_slot: false,
        };
        assert_eq!(
            d.next_task(MachineId::new(1), Time::ZERO, &view),
            Some(TaskId::new(1))
        );
    }

    #[test]
    fn ordered_skips_ineligible_machines() {
        let inst = Instance::from_estimates(&[1.0, 1.0], 2).unwrap();
        let p = Placement::pinned(&inst, &[MachineId::new(1), MachineId::new(0)]).unwrap();
        let pending = vec![HotTask::pending_only(true); 2];
        let mut d = OrderedDispatcher::fifo(&inst);
        let view = SimView {
            instance: &inst,
            placement: &p,
            tasks: &pending,
            by_slot: false,
        };
        // Machine 0 cannot take task 0 (pinned to machine 1); gets task 1.
        assert_eq!(
            d.next_task(MachineId::new(0), Time::ZERO, &view),
            Some(TaskId::new(1))
        );
    }

    #[test]
    fn pinned_serves_only_own_queue() {
        let (inst, p) = setup(4, 2);
        let machine_of = [
            MachineId::new(0),
            MachineId::new(1),
            MachineId::new(0),
            MachineId::new(1),
        ];
        let mut d = PinnedDispatcher::new(&machine_of, 2);
        let pending = vec![HotTask::pending_only(true); 4];
        let view = SimView {
            instance: &inst,
            placement: &p,
            tasks: &pending,
            by_slot: false,
        };
        assert_eq!(
            d.next_task(MachineId::new(0), Time::ZERO, &view),
            Some(TaskId::new(0))
        );
        assert_eq!(
            d.next_task(MachineId::new(1), Time::ZERO, &view),
            Some(TaskId::new(1))
        );
    }

    #[test]
    fn requeue_rewinds_cursor_to_task_position_only() {
        // Start tasks 0..4 so the fast-forward cursor sits at 3 (it
        // advances lazily, at the start of the *next* call), then requeue
        // task 2: the cursor must rewind to exactly 2, so the next
        // dispatch returns task 2 without rescanning 0 and 1.
        let (inst, p) = setup(5, 1);
        let mut d = OrderedDispatcher::fifo(&inst);
        let mut pending = vec![HotTask::pending_only(true); 5];
        for j in 0..4 {
            let view = SimView {
                instance: &inst,
                placement: &p,
                tasks: &pending,
                by_slot: false,
            };
            assert_eq!(
                d.next_task(MachineId::new(0), Time::ZERO, &view),
                Some(TaskId::new(j))
            );
            pending[j].mark_started();
        }
        assert_eq!(d.cursor, 3);
        pending[2] = HotTask::pending_only(true); // the machine running task 2 failed
        d.on_requeue(TaskId::new(2));
        assert_eq!(d.cursor, 2, "rewind to the task's position, not zero");
        let view = SimView {
            instance: &inst,
            placement: &p,
            tasks: &pending,
            by_slot: false,
        };
        assert_eq!(
            d.next_task(MachineId::new(0), Time::ZERO, &view),
            Some(TaskId::new(2))
        );
        // Requeue of an earlier task still rewinds further back…
        d.on_requeue(TaskId::new(0));
        assert_eq!(d.cursor, 0);
        // …and a later position never moves the cursor forward.
        d.on_requeue(TaskId::new(4));
        assert_eq!(d.cursor, 0);
    }

    #[test]
    fn requeue_of_task_outside_order_is_a_noop() {
        let mut d = OrderedDispatcher::new(vec![TaskId::new(1), TaskId::new(0)]);
        d.cursor = 1;
        d.on_requeue(TaskId::new(7)); // never in the order
        assert_eq!(d.cursor, 1);
    }

    #[test]
    fn indexed_dispatch_matches_scan_decisions() {
        // Tasks 0,2 on machines {0,1}; tasks 1,3 on machines {2,3};
        // replay identical dispatch sequences through both paths.
        let inst = Instance::from_estimates(&[1.0; 4], 4).unwrap();
        let sets = vec![
            rds_core::MachineSet::Span { start: 0, end: 2 },
            rds_core::MachineSet::Span { start: 2, end: 4 },
            rds_core::MachineSet::Span { start: 0, end: 2 },
            rds_core::MachineSet::Span { start: 2, end: 4 },
        ];
        let p = Placement::new(&inst, sets).unwrap();
        let order: Vec<TaskId> = inst.task_ids().collect();
        let mut scan = OrderedDispatcher::new(order.clone());
        let mut indexed = OrderedDispatcher::auto(order, &p);
        assert!(indexed.is_indexed());
        let mut pending = vec![HotTask::pending_only(true); 4];
        for machine in [0usize, 2, 1, 3, 0] {
            let view = SimView {
                instance: &inst,
                placement: &p,
                tasks: &pending,
                by_slot: false,
            };
            let a = scan.next_task(MachineId::new(machine), Time::ZERO, &view);
            let view = SimView {
                instance: &inst,
                placement: &p,
                tasks: &pending,
                by_slot: false,
            };
            let b = indexed.next_task(MachineId::new(machine), Time::ZERO, &view);
            assert_eq!(a, b, "machine {machine}");
            if let Some(t) = a {
                pending[t.index()].mark_started();
            }
        }
    }

    #[test]
    fn indexed_requeue_rewinds_only_hosting_machines() {
        let inst = Instance::from_estimates(&[1.0; 4], 2).unwrap();
        // Tasks 0,1 on machine 0; tasks 2,3 on machine 1.
        let pins = [
            MachineId::new(0),
            MachineId::new(0),
            MachineId::new(1),
            MachineId::new(1),
        ];
        let p = Placement::pinned(&inst, &pins).unwrap();
        let order: Vec<TaskId> = inst.task_ids().collect();
        let mut d = OrderedDispatcher::auto(order, &p);
        assert!(d.is_indexed());
        let mut pending = vec![HotTask::pending_only(true); 4];
        // Drain machine 0 fully and machine 1 once.
        for (machine, expect) in [(0, 0), (0, 1), (1, 2)] {
            let view = SimView {
                instance: &inst,
                placement: &p,
                tasks: &pending,
                by_slot: false,
            };
            let got = d
                .next_task(MachineId::new(machine), Time::ZERO, &view)
                .unwrap();
            assert_eq!(got.index(), expect);
            pending[expect].mark_started();
        }
        // Requeue task 1 (hosted only on machine 0): machine 0 sees it
        // again, machine 1's cursor is untouched and yields task 3.
        pending[1] = HotTask::pending_only(true);
        d.on_requeue(TaskId::new(1));
        let view = SimView {
            instance: &inst,
            placement: &p,
            tasks: &pending,
            by_slot: false,
        };
        assert_eq!(
            d.next_task(MachineId::new(0), Time::ZERO, &view),
            Some(TaskId::new(1))
        );
        let view = SimView {
            instance: &inst,
            placement: &p,
            tasks: &pending,
            by_slot: false,
        };
        assert_eq!(
            d.next_task(MachineId::new(1), Time::ZERO, &view),
            Some(TaskId::new(3))
        );
    }

    #[test]
    fn reset_restores_a_fresh_dispatcher_without_rebuilding() {
        let inst = Instance::from_estimates(&[1.0; 3], 2).unwrap();
        let pins = [MachineId::new(0), MachineId::new(1), MachineId::new(0)];
        let p = Placement::pinned(&inst, &pins).unwrap();
        for mut d in [
            OrderedDispatcher::fifo(&inst),
            OrderedDispatcher::auto(inst.task_ids().collect(), &p),
        ] {
            let mut pending = vec![HotTask::pending_only(true); 3];
            let view = SimView {
                instance: &inst,
                placement: &p,
                tasks: &pending,
                by_slot: false,
            };
            let first = d.next_task(MachineId::new(0), Time::ZERO, &view);
            assert_eq!(first, Some(TaskId::new(0)));
            pending[0].mark_started();
            pending[2].mark_started();
            let view = SimView {
                instance: &inst,
                placement: &p,
                tasks: &pending,
                by_slot: false,
            };
            assert_eq!(d.next_task(MachineId::new(0), Time::ZERO, &view), None);
            // A reset must serve the next trial exactly like a rebuild.
            d.reset();
            let pending = vec![HotTask::pending_only(true); 3];
            let view = SimView {
                instance: &inst,
                placement: &p,
                tasks: &pending,
                by_slot: false,
            };
            assert_eq!(
                d.next_task(MachineId::new(0), Time::ZERO, &view),
                Some(TaskId::new(0))
            );
        }
    }

    #[test]
    fn locality_prefers_local_task_over_rank() {
        let inst = Instance::from_estimates(&[4.0, 3.0], 2).unwrap();
        let sets = vec![
            rds_core::MachineSet::All,                      // home m0
            rds_core::MachineSet::Span { start: 1, end: 2 } // home m1
        ];
        let p = Placement::new(&inst, sets).unwrap();
        let topo = NetworkTopology::uniform(2, 10.0).unwrap();
        let mut d = LocalityDispatcher::fifo(&inst, &p, topo).unwrap();
        let pending = vec![
            HotTask::new(Time::of(4.0), &p.sets()[0], 2),
            HotTask::new(Time::of(3.0), &p.sets()[1], 2),
        ];
        let view = SimView {
            instance: &inst,
            placement: &p,
            tasks: &pending,
            by_slot: false,
        };
        // Machine 1: task 0 is remote (home m0, cost 10), task 1 is
        // local — the local one wins despite its lower rank.
        assert_eq!(
            d.next_task(MachineId::new(1), Time::ZERO, &view),
            Some(TaskId::new(1))
        );
        assert_eq!(d.transfer(TaskId::new(0), MachineId::new(1)), 10.0);
        assert_eq!(d.transfer(TaskId::new(1), MachineId::new(1)), 0.0);
        // Machine 0: task 0 is local and first in rank.
        assert_eq!(
            d.next_task(MachineId::new(0), Time::ZERO, &view),
            Some(TaskId::new(0))
        );
    }

    #[test]
    fn locality_picks_cheapest_remote_when_nothing_is_local() {
        use rds_core::{MachineMask, MachineSet};
        let inst = Instance::from_estimates(&[2.0, 2.0], 3).unwrap();
        let mk = |ids: &[usize]| {
            MachineSet::from_mask(
                3,
                MachineMask::from_iter_with_capacity(3, ids.iter().map(|&i| MachineId::new(i))),
            )
        };
        // Task 0 homed on m0, task 1 homed on m1; both reach m2.
        let p = Placement::new(&inst, vec![mk(&[0, 2]), mk(&[1, 2])]).unwrap();
        // m1 → m2 costs 1, m0 → m2 costs 5.
        let topo = NetworkTopology::new(
            3,
            vec![
                0.0, 5.0, 5.0, //
                5.0, 0.0, 1.0, //
                5.0, 1.0, 0.0,
            ],
        )
        .unwrap();
        let mut d = LocalityDispatcher::fifo(&inst, &p, topo).unwrap();
        let pending = vec![
            HotTask::new(Time::of(2.0), &p.sets()[0], 3),
            HotTask::new(Time::of(2.0), &p.sets()[1], 3),
        ];
        let view = SimView {
            instance: &inst,
            placement: &p,
            tasks: &pending,
            by_slot: false,
        };
        // Machine 2 sees two remote candidates: task 1's transfer (1.0)
        // undercuts task 0's (5.0), overriding rank.
        assert_eq!(
            d.next_task(MachineId::new(2), Time::ZERO, &view),
            Some(TaskId::new(1))
        );
    }

    #[test]
    fn locality_with_zero_topology_matches_ordered_scan() {
        let inst = Instance::from_estimates(&[1.0, 1.0, 1.0, 1.0], 2).unwrap();
        let p = Placement::pinned(
            &inst,
            &[
                MachineId::new(1),
                MachineId::new(0),
                MachineId::new(1),
                MachineId::new(0),
            ],
        )
        .unwrap();
        let topo = NetworkTopology::zero(2).unwrap();
        let mut loc = LocalityDispatcher::fifo(&inst, &p, topo).unwrap();
        let mut ord = OrderedDispatcher::fifo(&inst);
        let mut pending = vec![HotTask::pending_only(true); 4];
        for machine in [0usize, 1, 1, 0, 0, 1] {
            let view = SimView {
                instance: &inst,
                placement: &p,
                tasks: &pending,
                by_slot: false,
            };
            let a = loc.next_task(MachineId::new(machine), Time::ZERO, &view);
            let view = SimView {
                instance: &inst,
                placement: &p,
                tasks: &pending,
                by_slot: false,
            };
            let b = ord.next_task(MachineId::new(machine), Time::ZERO, &view);
            assert_eq!(a, b, "machine {machine}");
            if let Some(t) = a {
                pending[t.index()].mark_started();
            }
        }
    }

    #[test]
    fn locality_rejects_mismatched_topology() {
        let inst = Instance::from_estimates(&[1.0], 2).unwrap();
        let p = Placement::everywhere(&inst);
        let topo = NetworkTopology::zero(3).unwrap();
        assert!(matches!(
            LocalityDispatcher::fifo(&inst, &p, topo).unwrap_err(),
            Error::InvalidParameter { .. }
        ));
    }

    #[test]
    fn staged_drains_pinned_before_ordered() {
        let (inst, p) = setup(3, 1);
        let pinned_of = [Some(MachineId::new(0)), None, None];
        let mut d = StagedDispatcher::new(&pinned_of, 1, vec![TaskId::new(2), TaskId::new(1)]);
        let mut pending = vec![HotTask::pending_only(true); 3];
        let view = SimView {
            instance: &inst,
            placement: &p,
            tasks: &pending,
            by_slot: false,
        };
        assert_eq!(
            d.next_task(MachineId::new(0), Time::ZERO, &view),
            Some(TaskId::new(0))
        );
        pending[0].mark_started();
        let view = SimView {
            instance: &inst,
            placement: &p,
            tasks: &pending,
            by_slot: false,
        };
        // Then the ordered stage, in the given (2 before 1) order.
        assert_eq!(
            d.next_task(MachineId::new(0), Time::ZERO, &view),
            Some(TaskId::new(2))
        );
    }
}
