//! Online dispatch policies for phase 2.
//!
//! A [`Dispatcher`] is invoked by the engine every time a machine becomes
//! idle and answers "which pending task should this machine start?". It
//! sees only scheduler-visible information (estimates, placement, what
//! has completed so far) — never the actual time of an unfinished task,
//! which is how the engine enforces the semi-clairvoyant model.

use rds_core::{Instance, MachineId, Placement, TaskId, Time};

/// Read-only scheduler-visible state handed to the dispatcher.
pub struct SimView<'a> {
    /// The instance (estimates, sizes).
    pub instance: &'a Instance,
    /// The phase-1 placement restricting eligibility.
    pub placement: &'a Placement,
    /// `pending[j]` is `true` while task `j` has not been started.
    pub pending: &'a [bool],
}

impl SimView<'_> {
    /// `true` if task `t` is still pending and may run on `machine`.
    pub fn eligible(&self, t: TaskId, machine: MachineId) -> bool {
        self.pending[t.index()] && self.placement.allows(t, machine)
    }
}

/// An online dispatch policy.
pub trait Dispatcher {
    /// Picks the task `machine` should start at time `now`, or `None` to
    /// leave it idle (a machine left idle is never offered work again,
    /// since all tasks are released at time zero and eligibility is
    /// static).
    fn next_task(&mut self, machine: MachineId, now: Time, view: &SimView<'_>) -> Option<TaskId>;

    /// Observation hook: `task` completed on `machine` at `now`, having
    /// taken `actual` time (this is the moment the actual time becomes
    /// known to the scheduler).
    fn on_complete(&mut self, task: TaskId, machine: MachineId, actual: Time, now: Time) {
        let _ = (task, machine, actual, now);
    }

    /// Observation hook: a previously started `task` was lost (its
    /// machine failed) and is pending again. Dispatchers that skip
    /// started tasks must make it eligible once more.
    fn on_requeue(&mut self, task: TaskId) {
        let _ = task;
    }
}

/// Dispatches tasks following a fixed priority order: the idle machine
/// receives the first pending task in `order` that its placement allows.
///
/// - order = task-id order → Graham's online List Scheduling;
/// - order = estimate-descending → online LPT (`LPT-No Restriction`'s
///   phase 2, and the within-group policy of `LS-Group` if so configured).
#[derive(Debug, Clone)]
pub struct OrderedDispatcher {
    order: Vec<TaskId>,
    /// Index of the first possibly-pending entry (fast-forward cursor
    /// valid for the everywhere-placement case; general placements scan).
    cursor: usize,
}

impl OrderedDispatcher {
    /// Dispatcher following the given priority order.
    pub fn new(order: Vec<TaskId>) -> Self {
        OrderedDispatcher { order, cursor: 0 }
    }

    /// Task-id (FIFO) order — Graham's List Scheduling.
    pub fn fifo(instance: &Instance) -> Self {
        Self::new(instance.task_ids().collect())
    }

    /// Non-increasing estimate order — online LPT.
    pub fn lpt_by_estimate(instance: &Instance) -> Self {
        Self::new(instance.ids_by_estimate_desc())
    }
}

impl Dispatcher for OrderedDispatcher {
    fn next_task(&mut self, machine: MachineId, _now: Time, view: &SimView<'_>) -> Option<TaskId> {
        // Advance the cursor past started tasks to keep the common case
        // (everywhere placement) O(1) amortized.
        while self.cursor < self.order.len() && !view.pending[self.order[self.cursor].index()] {
            self.cursor += 1;
        }
        self.order[self.cursor..]
            .iter()
            .copied()
            .find(|&t| view.eligible(t, machine))
    }

    fn on_requeue(&mut self, _task: TaskId) {
        // A started task became pending again: the fast-forward cursor
        // may have passed it. Requeues are rare (machine failures), so
        // simply rescan from the beginning.
        self.cursor = 0;
    }
}

/// Dispatches a fixed task→machine assignment (no runtime choice):
/// each machine runs its preassigned tasks in the given per-machine order.
/// This is `LPT-No Choice`'s phase 2, and `SABO_Δ`'s.
#[derive(Debug, Clone)]
pub struct PinnedDispatcher {
    queues: Vec<Vec<TaskId>>, // per machine, in reverse execution order
}

impl PinnedDispatcher {
    /// Builds per-machine queues from a per-task machine vector, running
    /// each machine's tasks in task-id order.
    pub fn new(machine_of: &[MachineId], m: usize) -> Self {
        let mut queues = vec![Vec::new(); m];
        for (j, id) in machine_of.iter().enumerate() {
            queues[id.index()].push(TaskId::new(j));
        }
        for q in &mut queues {
            q.reverse(); // pop from the back = task-id order
        }
        PinnedDispatcher { queues }
    }
}

impl Dispatcher for PinnedDispatcher {
    fn next_task(&mut self, machine: MachineId, _now: Time, view: &SimView<'_>) -> Option<TaskId> {
        let q = &mut self.queues[machine.index()];
        while let Some(&t) = q.last() {
            if view.pending[t.index()] {
                return Some(t);
            }
            q.pop();
        }
        None
    }

    // Note: a pinned task requeued after its machine failed is stranded
    // by construction (its queue entry was popped and no other machine
    // holds it); the failure engine reports it. No cursor to reset.
}

/// Two-stage dispatcher for `ABO_Δ`: first drain a pinned set (the
/// memory-intensive tasks), then serve the replicated time-intensive
/// tasks from a priority order.
#[derive(Debug, Clone)]
pub struct StagedDispatcher {
    pinned: PinnedDispatcher,
    ordered: OrderedDispatcher,
}

impl StagedDispatcher {
    /// `pinned_of[j] = Some(machine)` for stage-1 tasks; stage-2 tasks
    /// (the `None`s) are served in `order` afterwards.
    pub fn new(pinned_of: &[Option<MachineId>], m: usize, order: Vec<TaskId>) -> Self {
        let mut queues = vec![Vec::new(); m];
        for (j, id) in pinned_of.iter().enumerate() {
            if let Some(id) = id {
                queues[id.index()].push(TaskId::new(j));
            }
        }
        for q in &mut queues {
            q.reverse();
        }
        StagedDispatcher {
            pinned: PinnedDispatcher { queues },
            ordered: OrderedDispatcher::new(order),
        }
    }
}

impl Dispatcher for StagedDispatcher {
    fn next_task(&mut self, machine: MachineId, now: Time, view: &SimView<'_>) -> Option<TaskId> {
        self.pinned
            .next_task(machine, now, view)
            .or_else(|| self.ordered.next_task(machine, now, view))
    }

    fn on_requeue(&mut self, task: TaskId) {
        self.ordered.on_requeue(task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_core::{Instance, Placement};

    fn setup(n: usize, m: usize) -> (Instance, Placement) {
        let inst = Instance::from_estimates(&vec![1.0; n], m).unwrap();
        let p = Placement::everywhere(&inst);
        (inst, p)
    }

    #[test]
    fn ordered_respects_pending_and_order() {
        let (inst, p) = setup(3, 2);
        let mut pending = vec![true; 3];
        let mut d = OrderedDispatcher::fifo(&inst);
        let view = SimView {
            instance: &inst,
            placement: &p,
            pending: &pending,
        };
        assert_eq!(
            d.next_task(MachineId::new(0), Time::ZERO, &view),
            Some(TaskId::new(0))
        );
        pending[0] = false;
        let view = SimView {
            instance: &inst,
            placement: &p,
            pending: &pending,
        };
        assert_eq!(
            d.next_task(MachineId::new(1), Time::ZERO, &view),
            Some(TaskId::new(1))
        );
    }

    #[test]
    fn ordered_skips_ineligible_machines() {
        let inst = Instance::from_estimates(&[1.0, 1.0], 2).unwrap();
        let p = Placement::pinned(&inst, &[MachineId::new(1), MachineId::new(0)]).unwrap();
        let pending = vec![true; 2];
        let mut d = OrderedDispatcher::fifo(&inst);
        let view = SimView {
            instance: &inst,
            placement: &p,
            pending: &pending,
        };
        // Machine 0 cannot take task 0 (pinned to machine 1); gets task 1.
        assert_eq!(
            d.next_task(MachineId::new(0), Time::ZERO, &view),
            Some(TaskId::new(1))
        );
    }

    #[test]
    fn pinned_serves_only_own_queue() {
        let (inst, p) = setup(4, 2);
        let machine_of = [
            MachineId::new(0),
            MachineId::new(1),
            MachineId::new(0),
            MachineId::new(1),
        ];
        let mut d = PinnedDispatcher::new(&machine_of, 2);
        let pending = vec![true; 4];
        let view = SimView {
            instance: &inst,
            placement: &p,
            pending: &pending,
        };
        assert_eq!(
            d.next_task(MachineId::new(0), Time::ZERO, &view),
            Some(TaskId::new(0))
        );
        assert_eq!(
            d.next_task(MachineId::new(1), Time::ZERO, &view),
            Some(TaskId::new(1))
        );
    }

    #[test]
    fn staged_drains_pinned_before_ordered() {
        let (inst, p) = setup(3, 1);
        let pinned_of = [Some(MachineId::new(0)), None, None];
        let mut d = StagedDispatcher::new(&pinned_of, 1, vec![TaskId::new(2), TaskId::new(1)]);
        let mut pending = vec![true; 3];
        let view = SimView {
            instance: &inst,
            placement: &p,
            pending: &pending,
        };
        assert_eq!(
            d.next_task(MachineId::new(0), Time::ZERO, &view),
            Some(TaskId::new(0))
        );
        pending[0] = false;
        let view = SimView {
            instance: &inst,
            placement: &p,
            pending: &pending,
        };
        // Then the ordered stage, in the given (2 before 1) order.
        assert_eq!(
            d.next_task(MachineId::new(0), Time::ZERO, &view),
            Some(TaskId::new(2))
        );
    }
}
