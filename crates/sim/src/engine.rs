//! The discrete-event phase-2 execution engine.
//!
//! The engine owns the clock and the pending set; the [`Dispatcher`] owns
//! the policy. Machines start idle at time zero; every time one becomes
//! idle the dispatcher is consulted. Actual processing times are looked
//! up only when a task *starts* (to schedule its completion event) and
//! are reported to the dispatcher only at *completion* — the dispatcher
//! itself never sees them earlier, enforcing semi-clairvoyance
//! structurally.

use crate::arena::SimArena;
use crate::dispatcher::{Dispatcher, HotTask, SimView};
use crate::event::{EventQueue, IdleEvent, QueueMode};
use crate::trace::{Trace, TraceEvent};
use rds_core::{
    Error, Instance, MachineId, MachineSpeeds, NetworkTopology, Placement, Realization, Result,
    Schedule, TaskId, Time,
};

/// Below this task count the heap always wins — the calendar's reset
/// and width prepass cost more than `log m` pops save.
const AUTO_BUCKET_MIN_TASKS: usize = 4096;

/// Below this machine count bucketing cannot beat a tiny heap.
const AUTO_BUCKET_MIN_MACHINES: usize = 8;

/// Look-ahead window: how many events (whole timestamp groups) the
/// event loop accumulates before dispatching, so the per-event frontier
/// warm-ups ([`Dispatcher::warm`]) issue independent loads whose cache
/// misses overlap. Sized to the depth a core can keep in flight.
const EVENT_WINDOW: usize = 8;

/// Resolved heterogeneity context of one run, internal to the engine.
///
/// Unit speeds resolve to an empty slice and a free network to `None`,
/// so the `HET = true` loop applies *no* float operation in those cases
/// and the uniform/zero metamorphic collapse to the baseline engine is
/// bit-identical by construction.
struct HeteroCtx<'a> {
    /// Per-machine speeds, or empty for the identical-machines model.
    speeds: &'a [f64],
    /// Transfer matrix plus each task's data-home machine
    /// ([`Placement::primary`]), or `None` when transfers are free.
    locality: Option<(&'a NetworkTopology, Vec<u32>)>,
}

/// Result of one simulated execution.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// The executed schedule (slots per machine, with start/end times).
    pub schedule: Schedule,
    /// The achieved makespan.
    pub makespan: Time,
    /// Chronological event trace.
    pub trace: Trace,
}

/// Discrete-event executor for one (instance, placement, realization).
#[derive(Debug)]
pub struct Engine<'a> {
    instance: &'a Instance,
    placement: &'a Placement,
    realization: &'a Realization,
}

impl<'a> Engine<'a> {
    /// Creates an engine for the given execution context.
    ///
    /// # Errors
    /// - [`Error::TaskCountMismatch`] when the pieces disagree on the
    ///   task count;
    /// - [`Error::InvalidParameter`] when the task or machine count
    ///   exceeds the event queue's `u32` id range
    ///   ([`EventQueue::check_capacity`] — an id that large would alias
    ///   a queue sentinel and silently corrupt the calendar).
    pub fn new(
        instance: &'a Instance,
        placement: &'a Placement,
        realization: &'a Realization,
    ) -> Result<Self> {
        EventQueue::check_capacity(instance.n(), instance.m())?;
        // Name the component that actually disagreed: `min()` of the two
        // counts could report the *matching* one on a one-sided mismatch.
        if placement.n() != instance.n() {
            return Err(Error::TaskCountMismatch {
                what: "placement",
                expected: instance.n(),
                got: placement.n(),
            });
        }
        if realization.n() != instance.n() {
            return Err(Error::TaskCountMismatch {
                what: "realization",
                expected: instance.n(),
                got: realization.n(),
            });
        }
        Ok(Engine {
            instance,
            placement,
            realization,
        })
    }

    /// Runs the simulation to completion under `dispatcher`.
    ///
    /// # Errors
    /// - [`Error::InfeasibleAssignment`] if the dispatcher picks a task
    ///   not placed on the idle machine;
    /// - [`Error::TaskOutOfRange`] if it picks an unknown task;
    /// - [`Error::InvalidParameter`] if it picks an already-started task
    ///   or leaves tasks unscheduled although machines could run them.
    pub fn run(&self, dispatcher: &mut dyn Dispatcher) -> Result<SimResult> {
        let mut arena = SimArena::with_capacity(self.instance.n(), self.instance.m());
        self.run_in(&mut arena, dispatcher)?;
        Ok(arena.take_result())
    }

    /// Runs the simulation to completion under `dispatcher`, using
    /// `arena` as scratch and output storage. This is the allocation-free
    /// entry point for Monte-Carlo campaigns: reusing one arena across
    /// runs of the same instance shape performs zero heap allocations per
    /// run. Returns the makespan; the executed slots and the trace stay
    /// readable in the arena until the next run ([`SimArena::slots`],
    /// [`SimArena::trace`], [`SimArena::to_sim_result`]).
    ///
    /// Generic over the dispatcher type so concrete dispatchers get a
    /// devirtualized, inlinable dispatch call in the event loop (`&mut
    /// dyn Dispatcher` still works through the `?Sized` bound).
    ///
    /// # Errors
    /// Same contract as [`Engine::run`].
    pub fn run_in<D: Dispatcher + ?Sized>(
        &self,
        arena: &mut SimArena,
        dispatcher: &mut D,
    ) -> Result<Time> {
        // Monomorphize the loop on the instrumentation flag: the
        // `OBS = false` instantiation contains no guard code at all, so
        // disabled instrumentation costs one atomic load per *run*
        // (the `obs_overhead` bench in rds-bench certifies < 2%).
        // `HET = false` likewise folds the heterogeneity math away, so
        // the homogeneous hot path is byte-for-byte the PR 9 loop.
        if rds_obs::enabled() {
            self.run_inner::<true, false, D>(arena, dispatcher, None)
        } else {
            self.run_inner::<false, false, D>(arena, dispatcher, None)
        }
    }

    /// Runs the simulation under heterogeneous machine speeds and/or a
    /// transfer-latency topology. A task with actual work `p` started
    /// on machine `i` occupies it for `p / s_i + L(home, i)` where
    /// `home` is the task's primary replica ([`Placement::primary`]) —
    /// the one-time cost of pulling the data to a non-home replica.
    /// `None` (or unit speeds / a zero topology) collapses exactly to
    /// [`Engine::run`]: no heterogeneity float op is applied at all in
    /// the `None` cases, and `p / 1.0` and `d + 0.0` are bit-identical
    /// otherwise.
    ///
    /// # Errors
    /// - [`Error::InvalidParameter`] when `speeds` or `topology` covers
    ///   a different machine count than the instance;
    /// - the same dispatcher-misbehavior errors as [`Engine::run`].
    pub fn run_hetero(
        &self,
        dispatcher: &mut dyn Dispatcher,
        speeds: Option<&MachineSpeeds>,
        topology: Option<&NetworkTopology>,
    ) -> Result<SimResult> {
        let mut arena = SimArena::with_capacity(self.instance.n(), self.instance.m());
        self.run_hetero_in(&mut arena, dispatcher, speeds, topology)?;
        Ok(arena.take_result())
    }

    /// Arena-reusing variant of [`Engine::run_hetero`] (the analogue of
    /// [`Engine::run_in`]). The per-task home column is derived from
    /// the placement once per call when a topology is present.
    ///
    /// # Errors
    /// Same contract as [`Engine::run_hetero`].
    pub fn run_hetero_in<D: Dispatcher + ?Sized>(
        &self,
        arena: &mut SimArena,
        dispatcher: &mut D,
        speeds: Option<&MachineSpeeds>,
        topology: Option<&NetworkTopology>,
    ) -> Result<Time> {
        let m = self.instance.m();
        if speeds.is_some_and(|s| s.m() != m) {
            return Err(Error::InvalidParameter {
                what: "machine speeds cover a different machine count than the instance",
            });
        }
        if topology.is_some_and(|t| t.m() != m) {
            return Err(Error::InvalidParameter {
                what: "network topology covers a different machine count than the instance",
            });
        }
        let locality = topology.map(|t| {
            let homes = (0..self.instance.n())
                .map(|j| self.placement.primary(TaskId::new(j)).index() as u32)
                .collect();
            (t, homes)
        });
        let ctx = HeteroCtx {
            speeds: speeds.map_or(&[][..], MachineSpeeds::speeds),
            locality,
        };
        if rds_obs::enabled() {
            self.run_inner::<true, true, D>(arena, dispatcher, Some(&ctx))
        } else {
            self.run_inner::<false, true, D>(arena, dispatcher, Some(&ctx))
        }
    }

    /// Bucket width for the calendar queue, or `None` to use the heap.
    ///
    /// The width targets ~1 event per bucket: completions are spaced by
    /// roughly `mean actual / m` on a busy cluster. A degenerate hint
    /// (zero or non-finite mean) falls back to the heap, as does any
    /// instance too small for the calendar's reset cost to pay off.
    fn bucket_width(&self, mode: QueueMode, n: usize, m: usize) -> Option<f64> {
        match mode {
            QueueMode::Heap => None,
            QueueMode::Auto if n < AUTO_BUCKET_MIN_TASKS || m < AUTO_BUCKET_MIN_MACHINES => None,
            QueueMode::Auto | QueueMode::Bucketed => {
                let total: f64 = self.realization.times().iter().map(|t| t.get()).sum();
                let width = total / (n as f64 * m as f64);
                (width.is_finite() && width > 0.0).then_some(width)
            }
        }
    }

    fn run_inner<const OBS: bool, const HET: bool, D: Dispatcher + ?Sized>(
        &self,
        arena: &mut SimArena,
        dispatcher: &mut D,
        hetero: Option<&HeteroCtx<'_>>,
    ) -> Result<Time> {
        let n = self.instance.n();
        let m = self.instance.m();
        let bucket_width = self.bucket_width(arena.queue_mode(), n, m);
        arena.prepare(n, m, bucket_width);
        // Pack each task's hot data — pending flag, eligibility span,
        // actual duration — into one 16-byte record, filled in a single
        // sequential pass. Every later touch (dispatcher scan, engine
        // feasibility check, completion scheduling) then reads the one
        // cache line this pass wrote, instead of three scattered arrays.
        // Fill the hot column — in the dispatcher's own layout when it
        // declares one (records at order positions, making its probe
        // frontier a sequential sweep), in task-id order otherwise.
        let embeds = dispatcher.embeds_task_ids();
        let by_slot = {
            let actuals = self.realization.times();
            let sets = self.placement.sets();
            match dispatcher.hot_order() {
                Some(ord) if ord.len() == n => {
                    if embeds {
                        // Id-embedding records: the span field carries the
                        // task id so a dispatch never leaves this line.
                        arena.pending.extend(
                            ord.iter()
                                .map(|t| HotTask::slotted(actuals[t.index()], t.index() as u32)),
                        );
                    } else {
                        arena.pending.extend(ord.iter().map(|t| {
                            let j = t.index();
                            HotTask::new(actuals[j], &sets[j], m)
                        }));
                    }
                    true
                }
                _ => {
                    arena
                        .pending
                        .extend((0..n).map(|j| HotTask::new(actuals[j], &sets[j], m)));
                    false
                }
            }
        };
        // An id-embedding slotted run has no span data in the records;
        // the dispatcher vouches for eligibility (RDS_VALIDATE still
        // checks the finished schedule against the placement).
        let trusted = by_slot && embeds;
        let SimArena {
            pending,
            trace,
            queue,
            round,
            ..
        } = arena;
        let mut remaining = n;
        let mut makespan = Time::ZERO;

        // Metric handles are resolved once per run. `OBS` is a const:
        // in the disabled instantiation every guard below folds away.
        let obs = OBS.then(|| {
            let g = rds_obs::global();
            (
                g.counter("engine.events"),
                g.counter("engine.dispatch"),
                g.counter("engine.starved"),
            )
        });
        let _run_span = rds_obs::span_if(OBS, "engine.run");

        // Batched event loop: the queue is drained in whole timestamp
        // groups (each in ascending machine order), and up to
        // `EVENT_WINDOW` events' worth of groups are accumulated before
        // any of them dispatches. Group boundaries keep the global
        // `(time, machine)` order intact: everything in the window
        // precedes everything still queued, and a dispatch whose
        // completion lands *inside* the window is order-inserted there
        // (the zero-duration re-entry is the `pos == i` special case of
        // that rule) — so the trace is byte-identical to the
        // one-pop-at-a-time loop. The window exists for memory-level
        // parallelism: `Dispatcher::warm` touches each upcoming event's
        // frontier line with independent loads, overlapping DRAM misses
        // that a serial loop would pay one dependent latency each.
        while queue.pop_round(round) {
            while round.len() < EVENT_WINDOW && queue.append_round(round) {}
            if round.len() > 1 && remaining > 0 {
                let view = SimView {
                    instance: self.instance,
                    placement: self.placement,
                    tasks: pending,
                    by_slot,
                };
                for ev in round.iter() {
                    dispatcher.warm(ev.machine, &view);
                }
            }
            let mut i = 0;
            while i < round.len() {
                let IdleEvent {
                    time,
                    machine,
                    finished,
                    actual: finished_actual,
                } = round[i];
                i += 1;
                let _event_span = rds_obs::span_if(OBS, "engine.event");
                if let Some((events, _, _)) = &obs {
                    events.inc();
                }
                // Report the completion that made this machine idle. The
                // finishing task's identity travels in the event itself, so
                // no float comparison can silently drop a `Complete`.
                if let Some(task) = finished {
                    let actual = finished_actual;
                    trace.push(TraceEvent::Complete {
                        time,
                        task,
                        machine,
                        actual,
                    });
                    dispatcher.on_complete(task, machine, actual, time);
                }
                if remaining == 0 {
                    continue;
                }
                let view = SimView {
                    instance: self.instance,
                    placement: self.placement,
                    tasks: pending,
                    by_slot,
                };
                if let Some((_, dispatch, _)) = &obs {
                    dispatch.inc();
                }
                let choice = {
                    let _dispatch_span = rds_obs::span_if(OBS, "engine.dispatch");
                    dispatcher.next_task(machine, time, &view)
                };
                match choice {
                    Some(task) => {
                        if task.index() >= n {
                            return Err(Error::TaskOutOfRange {
                                task: task.index(),
                                n,
                            });
                        }
                        // In a slotted run the record lives at the order
                        // position the dispatcher just reported; its
                        // layout contract guarantees the slot is valid.
                        let si = if by_slot {
                            let s = dispatcher.last_slot();
                            if s as usize >= n {
                                return Err(Error::InvalidParameter {
                                    what: "slotted dispatcher did not report the task's slot",
                                });
                            }
                            s as usize
                        } else {
                            task.index()
                        };
                        let hot = pending[si];
                        if !hot.is_pending() {
                            return Err(Error::InvalidParameter {
                                what: "dispatcher returned an already-started task",
                            });
                        }
                        let allowed = trusted
                            || hot
                                .span_allows(machine.index() as u32)
                                .unwrap_or_else(|| self.placement.allows(task, machine));
                        if !allowed {
                            return Err(Error::InfeasibleAssignment {
                                task: task.index(),
                                machine: machine.index(),
                            });
                        }
                        pending[si].mark_started();
                        remaining -= 1;
                        let actual = hot.actual();
                        // Wall-clock occupancy: the actual work, speed-
                        // stretched and transfer-charged on the hetero
                        // path (`HET` is const — the homogeneous
                        // instantiation contains none of this).
                        let dur = match (HET, hetero) {
                            (true, Some(h)) => {
                                let mut d = actual.get();
                                if !h.speeds.is_empty() {
                                    d /= h.speeds[machine.index()];
                                }
                                if let Some((topo, homes)) = &h.locality {
                                    let home = MachineId::new(homes[task.index()] as usize);
                                    d += topo.latency(home, machine);
                                }
                                Time::new(d)?
                            }
                            _ => actual,
                        };
                        let end = time + dur;
                        trace.push(TraceEvent::Start {
                            time,
                            task,
                            machine,
                        });
                        makespan = makespan.max(end);
                        let next = IdleEvent {
                            time: end,
                            machine,
                            finished: Some(task),
                            actual: dur,
                        };
                        // An event no later than the window's tail must
                        // run from the window to keep global order; the
                        // queue only ever holds strictly later groups.
                        let tail = round.last().map_or(Time::ZERO, |e| e.time);
                        if end <= tail {
                            let pos = i + round[i..]
                                .partition_point(|e| (e.time, e.machine) < (end, machine));
                            round.insert(pos, next);
                        } else {
                            queue.push(next);
                        }
                    }
                    None => {
                        trace.push(TraceEvent::Starved { time, machine });
                        if let Some((_, _, starved)) = &obs {
                            starved.inc();
                        }
                    }
                }
            }
        }

        if remaining > 0 {
            // Some pending task was eligible nowhere (or the dispatcher
            // starved every machine that could run it).
            return Err(Error::InvalidParameter {
                what: "simulation ended with unscheduled tasks",
            });
        }
        arena.makespan = makespan;
        if crate::validate::enabled() {
            // Validation is debug-/opt-in-only, so materializing the slot
            // log into a Schedule here never touches the production path.
            // Hetero runs skip the duration check: speed-stretched and
            // transfer-charged slots deliberately differ from the
            // realization's actuals (the conformance parity arm checks
            // those durations against an independent reference instead).
            let schedule = Schedule::from_slots(arena.per_machine_slots());
            let checks = if HET {
                crate::validate::Checks {
                    durations: false,
                    ..crate::validate::Checks::engine()
                }
            } else {
                crate::validate::Checks::engine()
            };
            crate::validate::check_schedule(
                self.instance,
                self.placement,
                self.realization,
                &schedule,
                &checks,
            )?;
        }
        Ok(makespan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatcher::{LocalityDispatcher, OrderedDispatcher};
    use rds_core::Uncertainty;

    #[test]
    fn fifo_everywhere_matches_hand_computation() {
        let inst = Instance::from_estimates(&[3.0, 3.0, 2.0], 2).unwrap();
        let p = Placement::everywhere(&inst);
        let r = Realization::exact(&inst);
        let engine = Engine::new(&inst, &p, &r).unwrap();
        let res = engine.run(&mut OrderedDispatcher::fifo(&inst)).unwrap();
        // t0→p0, t1→p1, first idle is p1@3? both idle at 3, tie → p0:
        // actually p0 idle at 3 (tie, machine 0 first) takes t2 → ends 5.
        assert_eq!(res.makespan, Time::of(5.0));
        res.schedule.validate(&inst, &r).unwrap();
        assert_eq!(res.trace.starts(), 3);
    }

    #[test]
    fn completion_reveals_actual_times_to_dispatcher() {
        // A dispatcher that records completions; verify ordering.
        struct Recorder {
            inner: OrderedDispatcher,
            seen: Vec<(usize, f64)>,
        }
        impl Dispatcher for Recorder {
            fn next_task(
                &mut self,
                machine: MachineId,
                now: Time,
                view: &SimView<'_>,
            ) -> Option<TaskId> {
                self.inner.next_task(machine, now, view)
            }
            fn on_complete(&mut self, task: TaskId, _m: MachineId, actual: Time, _now: Time) {
                self.seen.push((task.index(), actual.get()));
            }
        }
        let inst = Instance::from_estimates(&[2.0, 1.0], 1).unwrap();
        let unc = Uncertainty::of(2.0);
        let real = Realization::from_factors(&inst, unc, &[2.0, 1.0]).unwrap();
        let p = Placement::everywhere(&inst);
        let engine = Engine::new(&inst, &p, &real).unwrap();
        let mut d = Recorder {
            inner: OrderedDispatcher::fifo(&inst),
            seen: Vec::new(),
        };
        engine.run(&mut d).unwrap();
        assert_eq!(d.seen, vec![(0, 4.0), (1, 1.0)]);
    }

    #[test]
    fn infeasible_dispatch_is_rejected() {
        struct Rogue;
        impl Dispatcher for Rogue {
            fn next_task(
                &mut self,
                _machine: MachineId,
                _now: Time,
                _view: &SimView<'_>,
            ) -> Option<TaskId> {
                Some(TaskId::new(0))
            }
        }
        let inst = Instance::from_estimates(&[1.0], 2).unwrap();
        // Task 0 pinned to machine 1; machine 0 is asked first and Rogue
        // returns task 0 anyway.
        let p = Placement::pinned(&inst, &[MachineId::new(1)]).unwrap();
        let r = Realization::exact(&inst);
        let engine = Engine::new(&inst, &p, &r).unwrap();
        let err = engine.run(&mut Rogue).unwrap_err();
        assert!(matches!(
            err,
            Error::InfeasibleAssignment {
                task: 0,
                machine: 0
            }
        ));
    }

    #[test]
    fn lazy_dispatcher_leaves_tasks_unscheduled() {
        struct Lazy;
        impl Dispatcher for Lazy {
            fn next_task(
                &mut self,
                _machine: MachineId,
                _now: Time,
                _view: &SimView<'_>,
            ) -> Option<TaskId> {
                None
            }
        }
        let inst = Instance::from_estimates(&[1.0], 1).unwrap();
        let p = Placement::everywhere(&inst);
        let r = Realization::exact(&inst);
        let engine = Engine::new(&inst, &p, &r).unwrap();
        assert!(matches!(
            engine.run(&mut Lazy).unwrap_err(),
            Error::InvalidParameter { .. }
        ));
    }

    #[test]
    fn starved_machines_are_traced_not_fatal() {
        // Both tasks pinned to machine 0: machine 1 starves harmlessly
        // while work remains pending elsewhere.
        let inst = Instance::from_estimates(&[2.0, 1.0], 2).unwrap();
        let p = Placement::pinned(&inst, &[MachineId::new(0), MachineId::new(0)]).unwrap();
        let r = Realization::exact(&inst);
        let engine = Engine::new(&inst, &p, &r).unwrap();
        let res = engine.run(&mut OrderedDispatcher::fifo(&inst)).unwrap();
        assert_eq!(res.makespan, Time::of(3.0));
        assert!(res
            .trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::Starved { .. })));
    }

    #[test]
    fn speeds_stretch_durations() {
        // Machine 1 runs twice as fast: its 4.0-work task takes 2.0, so
        // it also absorbs the third task and finishes exactly with m0.
        let inst = Instance::from_estimates(&[4.0, 4.0, 4.0], 2).unwrap();
        let p = Placement::everywhere(&inst);
        let r = Realization::exact(&inst);
        let engine = Engine::new(&inst, &p, &r).unwrap();
        let speeds = MachineSpeeds::new(vec![1.0, 2.0]).unwrap();
        let res = engine
            .run_hetero(&mut OrderedDispatcher::fifo(&inst), Some(&speeds), None)
            .unwrap();
        assert_eq!(res.makespan, Time::of(4.0));
        let m1 = res.schedule.slots(MachineId::new(1));
        assert_eq!(m1.len(), 2);
        assert_eq!(m1[0].end, Time::of(2.0));
    }

    #[test]
    fn transfer_latency_is_charged_on_remote_start() {
        // Both tasks homed on m0 (everywhere placement → primary 0):
        // m1's pick pays the 10.0 transfer on top of its work.
        let inst = Instance::from_estimates(&[2.0, 2.0], 2).unwrap();
        let p = Placement::everywhere(&inst);
        let r = Realization::exact(&inst);
        let topo = NetworkTopology::uniform(2, 10.0).unwrap();
        let engine = Engine::new(&inst, &p, &r).unwrap();
        let mut d = LocalityDispatcher::fifo(&inst, &p, topo.clone()).unwrap();
        let res = engine.run_hetero(&mut d, None, Some(&topo)).unwrap();
        assert_eq!(res.makespan, Time::of(12.0));
        assert_eq!(res.schedule.slots(MachineId::new(0))[0].end, Time::of(2.0));
        assert_eq!(res.schedule.slots(MachineId::new(1))[0].end, Time::of(12.0));
    }

    #[test]
    fn unit_speeds_and_zero_topology_collapse_to_baseline() {
        let inst = Instance::from_estimates(&[3.0, 3.0, 2.0, 1.0], 2).unwrap();
        let p = Placement::everywhere(&inst);
        let r = Realization::exact(&inst);
        let engine = Engine::new(&inst, &p, &r).unwrap();
        let base = engine
            .run(&mut OrderedDispatcher::lpt_by_estimate(&inst))
            .unwrap();
        let speeds = MachineSpeeds::uniform(2).unwrap();
        let topo = NetworkTopology::zero(2).unwrap();
        let mut d = LocalityDispatcher::lpt_by_estimate(&inst, &p, topo.clone()).unwrap();
        let het = engine
            .run_hetero(&mut d, Some(&speeds), Some(&topo))
            .unwrap();
        assert_eq!(het.makespan, base.makespan);
        assert_eq!(het.trace.events(), base.trace.events());
    }

    #[test]
    fn hetero_rejects_mismatched_machine_counts() {
        let inst = Instance::from_estimates(&[1.0], 2).unwrap();
        let p = Placement::everywhere(&inst);
        let r = Realization::exact(&inst);
        let engine = Engine::new(&inst, &p, &r).unwrap();
        let speeds = MachineSpeeds::uniform(3).unwrap();
        assert!(matches!(
            engine
                .run_hetero(&mut OrderedDispatcher::fifo(&inst), Some(&speeds), None)
                .unwrap_err(),
            Error::InvalidParameter { .. }
        ));
        let topo = NetworkTopology::zero(3).unwrap();
        assert!(matches!(
            engine
                .run_hetero(&mut OrderedDispatcher::fifo(&inst), None, Some(&topo))
                .unwrap_err(),
            Error::InvalidParameter { .. }
        ));
    }

    #[test]
    fn mismatched_placement_is_named_with_its_count() {
        let inst = Instance::from_estimates(&[1.0, 2.0], 2).unwrap();
        let other = Instance::from_estimates(&[1.0], 2).unwrap();
        let p = Placement::everywhere(&other); // 1 task — the culprit
        let r = Realization::exact(&inst); // 2 tasks — matches
        let err = Engine::new(&inst, &p, &r).unwrap_err();
        assert_eq!(
            err,
            Error::TaskCountMismatch {
                what: "placement",
                expected: 2,
                got: 1,
            }
        );
    }

    #[test]
    fn mismatched_realization_is_named_with_its_count() {
        // An over-long realization: the old `min(placement.n(),
        // realization.n())` reported 2 here — the count of the component
        // that *matched* — hiding the culprit entirely.
        let inst = Instance::from_estimates(&[1.0, 2.0], 2).unwrap();
        let bigger = Instance::from_estimates(&[1.0, 2.0, 3.0], 2).unwrap();
        let p = Placement::everywhere(&inst); // 2 tasks — matches
        let r = Realization::exact(&bigger); // 3 tasks — the culprit
        let err = Engine::new(&inst, &p, &r).unwrap_err();
        assert_eq!(
            err,
            Error::TaskCountMismatch {
                what: "realization",
                expected: 2,
                got: 3,
            }
        );
    }
}
