//! The discrete-event phase-2 execution engine.
//!
//! The engine owns the clock and the pending set; the [`Dispatcher`] owns
//! the policy. Machines start idle at time zero; every time one becomes
//! idle the dispatcher is consulted. Actual processing times are looked
//! up only when a task *starts* (to schedule its completion event) and
//! are reported to the dispatcher only at *completion* — the dispatcher
//! itself never sees them earlier, enforcing semi-clairvoyance
//! structurally.

use crate::arena::SimArena;
use crate::dispatcher::{Dispatcher, SimView};
use crate::event::IdleEvent;
use crate::trace::{Trace, TraceEvent};
use rds_core::{Error, Instance, Placement, Realization, Result, Schedule, Slot, Time};

/// Result of one simulated execution.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// The executed schedule (slots per machine, with start/end times).
    pub schedule: Schedule,
    /// The achieved makespan.
    pub makespan: Time,
    /// Chronological event trace.
    pub trace: Trace,
}

/// Discrete-event executor for one (instance, placement, realization).
#[derive(Debug)]
pub struct Engine<'a> {
    instance: &'a Instance,
    placement: &'a Placement,
    realization: &'a Realization,
}

impl<'a> Engine<'a> {
    /// Creates an engine for the given execution context.
    ///
    /// # Errors
    /// Returns [`Error::TaskCountMismatch`] when the pieces disagree on
    /// the task count.
    pub fn new(
        instance: &'a Instance,
        placement: &'a Placement,
        realization: &'a Realization,
    ) -> Result<Self> {
        // Name the component that actually disagreed: `min()` of the two
        // counts could report the *matching* one on a one-sided mismatch.
        if placement.n() != instance.n() {
            return Err(Error::TaskCountMismatch {
                what: "placement",
                expected: instance.n(),
                got: placement.n(),
            });
        }
        if realization.n() != instance.n() {
            return Err(Error::TaskCountMismatch {
                what: "realization",
                expected: instance.n(),
                got: realization.n(),
            });
        }
        Ok(Engine {
            instance,
            placement,
            realization,
        })
    }

    /// Runs the simulation to completion under `dispatcher`.
    ///
    /// # Errors
    /// - [`Error::InfeasibleAssignment`] if the dispatcher picks a task
    ///   not placed on the idle machine;
    /// - [`Error::TaskOutOfRange`] if it picks an unknown task;
    /// - [`Error::InvalidParameter`] if it picks an already-started task
    ///   or leaves tasks unscheduled although machines could run them.
    pub fn run(&self, dispatcher: &mut dyn Dispatcher) -> Result<SimResult> {
        let mut arena = SimArena::with_capacity(self.instance.n(), self.instance.m());
        self.run_in(&mut arena, dispatcher)?;
        Ok(arena.take_result())
    }

    /// Runs the simulation to completion under `dispatcher`, using
    /// `arena` as scratch and output storage. This is the allocation-free
    /// entry point for Monte-Carlo campaigns: reusing one arena across
    /// runs of the same instance shape performs zero heap allocations per
    /// run. Returns the makespan; the executed slots and the trace stay
    /// readable in the arena until the next run ([`SimArena::slots`],
    /// [`SimArena::trace`], [`SimArena::to_sim_result`]).
    ///
    /// Generic over the dispatcher type so concrete dispatchers get a
    /// devirtualized, inlinable dispatch call in the event loop (`&mut
    /// dyn Dispatcher` still works through the `?Sized` bound).
    ///
    /// # Errors
    /// Same contract as [`Engine::run`].
    pub fn run_in<D: Dispatcher + ?Sized>(
        &self,
        arena: &mut SimArena,
        dispatcher: &mut D,
    ) -> Result<Time> {
        // Monomorphize the loop on the instrumentation flag: the
        // `OBS = false` instantiation contains no guard code at all, so
        // disabled instrumentation costs one atomic load per *run*
        // (the `obs_overhead` bench in rds-bench certifies < 2%).
        if rds_obs::enabled() {
            self.run_inner::<true, D>(arena, dispatcher)
        } else {
            self.run_inner::<false, D>(arena, dispatcher)
        }
    }

    fn run_inner<const OBS: bool, D: Dispatcher + ?Sized>(
        &self,
        arena: &mut SimArena,
        dispatcher: &mut D,
    ) -> Result<Time> {
        let n = self.instance.n();
        let m = self.instance.m();
        arena.prepare(n, m);
        let SimArena {
            pending,
            slots,
            trace,
            queue,
            ..
        } = arena;
        let mut remaining = n;
        let mut makespan = Time::ZERO;

        // Metric handles are resolved once per run. `OBS` is a const:
        // in the disabled instantiation every guard below folds away.
        let obs = OBS.then(|| {
            let g = rds_obs::global();
            (
                g.counter("engine.events"),
                g.counter("engine.dispatch"),
                g.counter("engine.starved"),
            )
        });
        let _run_span = rds_obs::span_if(OBS, "engine.run");

        while let Some(IdleEvent {
            time,
            machine,
            finished,
        }) = queue.pop()
        {
            let _event_span = rds_obs::span_if(OBS, "engine.event");
            if let Some((events, _, _)) = &obs {
                events.inc();
            }
            // Report the completion that made this machine idle. The
            // finishing task's identity travels in the event itself, so
            // no float comparison can silently drop a `Complete`.
            if let Some(task) = finished {
                let actual = self.realization.actual(task);
                trace.push(TraceEvent::Complete {
                    time,
                    task,
                    machine,
                    actual,
                });
                dispatcher.on_complete(task, machine, actual, time);
            }
            if remaining == 0 {
                continue;
            }
            let view = SimView {
                instance: self.instance,
                placement: self.placement,
                pending,
            };
            if let Some((_, dispatch, _)) = &obs {
                dispatch.inc();
            }
            let choice = {
                let _dispatch_span = rds_obs::span_if(OBS, "engine.dispatch");
                dispatcher.next_task(machine, time, &view)
            };
            match choice {
                Some(task) => {
                    if task.index() >= n {
                        return Err(Error::TaskOutOfRange {
                            task: task.index(),
                            n,
                        });
                    }
                    if !pending[task.index()] {
                        return Err(Error::InvalidParameter {
                            what: "dispatcher returned an already-started task",
                        });
                    }
                    if !self.placement.allows(task, machine) {
                        return Err(Error::InfeasibleAssignment {
                            task: task.index(),
                            machine: machine.index(),
                        });
                    }
                    pending[task.index()] = false;
                    remaining -= 1;
                    let actual = self.realization.actual(task);
                    let end = time + actual;
                    slots[machine.index()].push(Slot {
                        task,
                        start: time,
                        end,
                    });
                    trace.push(TraceEvent::Start {
                        time,
                        task,
                        machine,
                    });
                    makespan = makespan.max(end);
                    queue.push(IdleEvent {
                        time: end,
                        machine,
                        finished: Some(task),
                    });
                }
                None => {
                    trace.push(TraceEvent::Starved { time, machine });
                    if let Some((_, _, starved)) = &obs {
                        starved.inc();
                    }
                }
            }
        }

        if remaining > 0 {
            // Some pending task was eligible nowhere (or the dispatcher
            // starved every machine that could run it).
            return Err(Error::InvalidParameter {
                what: "simulation ended with unscheduled tasks",
            });
        }
        arena.makespan = makespan;
        if crate::validate::enabled() {
            // Validation is debug-/opt-in-only, so cloning the slots into
            // a Schedule here never touches the production hot path.
            let schedule = Schedule::from_slots(arena.slots.clone());
            crate::validate::check_schedule(
                self.instance,
                self.placement,
                self.realization,
                &schedule,
                &crate::validate::Checks::engine(),
            )?;
        }
        Ok(makespan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatcher::OrderedDispatcher;
    use rds_core::{MachineId, TaskId, Uncertainty};

    #[test]
    fn fifo_everywhere_matches_hand_computation() {
        let inst = Instance::from_estimates(&[3.0, 3.0, 2.0], 2).unwrap();
        let p = Placement::everywhere(&inst);
        let r = Realization::exact(&inst);
        let engine = Engine::new(&inst, &p, &r).unwrap();
        let res = engine.run(&mut OrderedDispatcher::fifo(&inst)).unwrap();
        // t0→p0, t1→p1, first idle is p1@3? both idle at 3, tie → p0:
        // actually p0 idle at 3 (tie, machine 0 first) takes t2 → ends 5.
        assert_eq!(res.makespan, Time::of(5.0));
        res.schedule.validate(&inst, &r).unwrap();
        assert_eq!(res.trace.starts(), 3);
    }

    #[test]
    fn completion_reveals_actual_times_to_dispatcher() {
        // A dispatcher that records completions; verify ordering.
        struct Recorder {
            inner: OrderedDispatcher,
            seen: Vec<(usize, f64)>,
        }
        impl Dispatcher for Recorder {
            fn next_task(
                &mut self,
                machine: MachineId,
                now: Time,
                view: &SimView<'_>,
            ) -> Option<TaskId> {
                self.inner.next_task(machine, now, view)
            }
            fn on_complete(&mut self, task: TaskId, _m: MachineId, actual: Time, _now: Time) {
                self.seen.push((task.index(), actual.get()));
            }
        }
        let inst = Instance::from_estimates(&[2.0, 1.0], 1).unwrap();
        let unc = Uncertainty::of(2.0);
        let real = Realization::from_factors(&inst, unc, &[2.0, 1.0]).unwrap();
        let p = Placement::everywhere(&inst);
        let engine = Engine::new(&inst, &p, &real).unwrap();
        let mut d = Recorder {
            inner: OrderedDispatcher::fifo(&inst),
            seen: Vec::new(),
        };
        engine.run(&mut d).unwrap();
        assert_eq!(d.seen, vec![(0, 4.0), (1, 1.0)]);
    }

    #[test]
    fn infeasible_dispatch_is_rejected() {
        struct Rogue;
        impl Dispatcher for Rogue {
            fn next_task(
                &mut self,
                _machine: MachineId,
                _now: Time,
                _view: &SimView<'_>,
            ) -> Option<TaskId> {
                Some(TaskId::new(0))
            }
        }
        let inst = Instance::from_estimates(&[1.0], 2).unwrap();
        // Task 0 pinned to machine 1; machine 0 is asked first and Rogue
        // returns task 0 anyway.
        let p = Placement::pinned(&inst, &[MachineId::new(1)]).unwrap();
        let r = Realization::exact(&inst);
        let engine = Engine::new(&inst, &p, &r).unwrap();
        let err = engine.run(&mut Rogue).unwrap_err();
        assert!(matches!(
            err,
            Error::InfeasibleAssignment {
                task: 0,
                machine: 0
            }
        ));
    }

    #[test]
    fn lazy_dispatcher_leaves_tasks_unscheduled() {
        struct Lazy;
        impl Dispatcher for Lazy {
            fn next_task(
                &mut self,
                _machine: MachineId,
                _now: Time,
                _view: &SimView<'_>,
            ) -> Option<TaskId> {
                None
            }
        }
        let inst = Instance::from_estimates(&[1.0], 1).unwrap();
        let p = Placement::everywhere(&inst);
        let r = Realization::exact(&inst);
        let engine = Engine::new(&inst, &p, &r).unwrap();
        assert!(matches!(
            engine.run(&mut Lazy).unwrap_err(),
            Error::InvalidParameter { .. }
        ));
    }

    #[test]
    fn starved_machines_are_traced_not_fatal() {
        // Both tasks pinned to machine 0: machine 1 starves harmlessly
        // while work remains pending elsewhere.
        let inst = Instance::from_estimates(&[2.0, 1.0], 2).unwrap();
        let p = Placement::pinned(&inst, &[MachineId::new(0), MachineId::new(0)]).unwrap();
        let r = Realization::exact(&inst);
        let engine = Engine::new(&inst, &p, &r).unwrap();
        let res = engine.run(&mut OrderedDispatcher::fifo(&inst)).unwrap();
        assert_eq!(res.makespan, Time::of(3.0));
        assert!(res
            .trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::Starved { .. })));
    }

    #[test]
    fn mismatched_placement_is_named_with_its_count() {
        let inst = Instance::from_estimates(&[1.0, 2.0], 2).unwrap();
        let other = Instance::from_estimates(&[1.0], 2).unwrap();
        let p = Placement::everywhere(&other); // 1 task — the culprit
        let r = Realization::exact(&inst); // 2 tasks — matches
        let err = Engine::new(&inst, &p, &r).unwrap_err();
        assert_eq!(
            err,
            Error::TaskCountMismatch {
                what: "placement",
                expected: 2,
                got: 1,
            }
        );
    }

    #[test]
    fn mismatched_realization_is_named_with_its_count() {
        // An over-long realization: the old `min(placement.n(),
        // realization.n())` reported 2 here — the count of the component
        // that *matched* — hiding the culprit entirely.
        let inst = Instance::from_estimates(&[1.0, 2.0], 2).unwrap();
        let bigger = Instance::from_estimates(&[1.0, 2.0, 3.0], 2).unwrap();
        let p = Placement::everywhere(&inst); // 2 tasks — matches
        let r = Realization::exact(&bigger); // 3 tasks — the culprit
        let err = Engine::new(&inst, &p, &r).unwrap_err();
        assert_eq!(
            err,
            Error::TaskCountMismatch {
                what: "realization",
                expected: 2,
                got: 3,
            }
        );
    }
}
