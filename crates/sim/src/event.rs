//! The event queue driving the phase-2 execution engine.

use rds_core::{MachineId, Time};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A machine-becomes-idle event.
///
/// Ordering: earliest time first; ties broken by smallest machine id,
/// which matches the deterministic tie-break of the closed-form greedy
/// implementations in `rds-algs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdleEvent {
    /// When the machine becomes idle.
    pub time: Time,
    /// Which machine.
    pub machine: MachineId,
}

/// Min-priority queue of [`IdleEvent`]s.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(Time, MachineId)>>,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue with every machine idle at time zero.
    pub fn all_idle(m: usize) -> Self {
        let mut q = Self::new();
        for i in 0..m {
            q.push(IdleEvent {
                time: Time::ZERO,
                machine: MachineId::new(i),
            });
        }
        q
    }

    /// Inserts an event.
    pub fn push(&mut self, ev: IdleEvent) {
        self.heap.push(Reverse((ev.time, ev.machine)));
    }

    /// Removes and returns the earliest event (ties → smallest machine).
    pub fn pop(&mut self) -> Option<IdleEvent> {
        self.heap
            .pop()
            .map(|Reverse((time, machine))| IdleEvent { time, machine })
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_machine_order() {
        let mut q = EventQueue::new();
        q.push(IdleEvent {
            time: Time::of(2.0),
            machine: MachineId::new(0),
        });
        q.push(IdleEvent {
            time: Time::of(1.0),
            machine: MachineId::new(5),
        });
        q.push(IdleEvent {
            time: Time::of(1.0),
            machine: MachineId::new(3),
        });
        let order: Vec<(f64, usize)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.time.get(), e.machine.index()))
            .collect();
        assert_eq!(order, vec![(1.0, 3), (1.0, 5), (2.0, 0)]);
    }

    #[test]
    fn all_idle_seeds_every_machine_at_zero() {
        let mut q = EventQueue::all_idle(3);
        assert_eq!(q.len(), 3);
        for expected in 0..3 {
            let e = q.pop().unwrap();
            assert_eq!(e.time, Time::ZERO);
            assert_eq!(e.machine.index(), expected);
        }
        assert!(q.is_empty());
    }
}
