//! The event queue driving the phase-2 execution engine.

use rds_core::{MachineId, TaskId, Time};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// A machine-becomes-idle event.
///
/// Ordering: earliest time first; ties broken by smallest machine id,
/// which matches the deterministic tie-break of the closed-form greedy
/// implementations in `rds-algs`.
///
/// `finished` carries the identity of the task whose completion produced
/// this event (`None` for the initial idle-at-zero seeds). The engine
/// reports completions from this field rather than re-deriving "the slot
/// that just ended" from a floating-point time comparison, which could
/// silently drop a `Complete` trace event whenever derived times drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdleEvent {
    /// When the machine becomes idle.
    pub time: Time,
    /// Which machine.
    pub machine: MachineId,
    /// The task whose completion freed the machine, if any.
    pub finished: Option<TaskId>,
}

/// Heap entry ordering [`IdleEvent`]s by `(time, machine)` only — the
/// `finished` payload rides along without affecting queue order.
#[derive(Debug)]
struct Entry(IdleEvent);

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        (self.0.time, self.0.machine) == (other.0.time, other.0.machine)
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.0.time, self.0.machine).cmp(&(other.0.time, other.0.machine))
    }
}

/// Min-priority queue of [`IdleEvent`]s.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Entry>>,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty queue with room for `cap` events before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
        }
    }

    /// Queue with every machine idle at time zero (no finished task),
    /// sized for `m` events up front — each machine has at most one
    /// outstanding idle event, so the engine never grows the heap.
    pub fn all_idle(m: usize) -> Self {
        let mut q = Self::with_capacity(m);
        q.reset_all_idle(m);
        q
    }

    /// Clears the queue (keeping its storage) and reseeds every machine
    /// idle at time zero, exactly like a fresh [`EventQueue::all_idle`].
    /// Once the heap has capacity for `m` events this never allocates.
    pub fn reset_all_idle(&mut self, m: usize) {
        self.heap.clear();
        self.heap.reserve(m);
        for i in 0..m {
            self.push(IdleEvent {
                time: Time::ZERO,
                machine: MachineId::new(i),
                finished: None,
            });
        }
    }

    /// Inserts an event.
    pub fn push(&mut self, ev: IdleEvent) {
        self.heap.push(Reverse(Entry(ev)));
    }

    /// Removes and returns the earliest event (ties → smallest machine).
    pub fn pop(&mut self) -> Option<IdleEvent> {
        self.heap.pop().map(|Reverse(Entry(ev))| ev)
    }

    /// The earliest event without removing it — lets an outer loop (the
    /// serve daemon) merge this queue with other event sources (task
    /// arrivals, retry timers) by comparing heads.
    pub fn peek(&self) -> Option<&IdleEvent> {
        self.heap.peek().map(|Reverse(Entry(ev))| ev)
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::all_idle(3);
        let head = *q.peek().unwrap();
        assert_eq!(q.pop().unwrap(), head);
        assert_eq!(head.machine.index(), 0);
    }

    #[test]
    fn pops_in_time_then_machine_order() {
        let mut q = EventQueue::new();
        q.push(IdleEvent {
            time: Time::of(2.0),
            machine: MachineId::new(0),
            finished: Some(TaskId::new(7)),
        });
        q.push(IdleEvent {
            time: Time::of(1.0),
            machine: MachineId::new(5),
            finished: None,
        });
        q.push(IdleEvent {
            time: Time::of(1.0),
            machine: MachineId::new(3),
            finished: Some(TaskId::new(1)),
        });
        let order: Vec<(f64, usize)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.time.get(), e.machine.index()))
            .collect();
        assert_eq!(order, vec![(1.0, 3), (1.0, 5), (2.0, 0)]);
    }

    #[test]
    fn finished_task_rides_through_the_queue() {
        let mut q = EventQueue::new();
        q.push(IdleEvent {
            time: Time::of(3.0),
            machine: MachineId::new(1),
            finished: Some(TaskId::new(4)),
        });
        let e = q.pop().unwrap();
        assert_eq!(e.finished, Some(TaskId::new(4)));
    }

    #[test]
    fn all_idle_seeds_every_machine_at_zero() {
        let mut q = EventQueue::all_idle(3);
        assert_eq!(q.len(), 3);
        for expected in 0..3 {
            let e = q.pop().unwrap();
            assert_eq!(e.time, Time::ZERO);
            assert_eq!(e.machine.index(), expected);
            assert_eq!(e.finished, None);
        }
        assert!(q.is_empty());
    }
}
