//! The event queue driving the phase-2 execution engine.
//!
//! Two interchangeable backends sit behind [`EventQueue`]:
//!
//! - a binary **heap** (`BinaryHeap<Reverse<Entry>>`), the general
//!   min-priority queue — always correct, `O(log m)` per operation;
//! - a **calendar queue** (bucketed/radix), exploiting the engine's
//!   near-monotone completion times for amortized `O(1)` per event.
//!
//! The calendar maps an event time `t` to a virtual bucket index
//! `⌊t / width⌋` and keeps a power-of-two window of `B` buckets
//! starting at the current index `vidx`; events landing past the
//! window wait in a small overflow heap and are drained in as the
//! window advances. The engine picks `width` so the expected bucket
//! occupancy is ~1 event (mean task duration / m), which makes every
//! push and pop touch a handful of contiguous words.
//!
//! Degenerate time distributions (all mass in one bucket, or times so
//! spread the window scans emptily forever) are caught by a cheap
//! work counter: when bucket scanning exceeds a fixed multiple of the
//! events actually delivered, the queue migrates its remaining events
//! to the heap backend mid-run. Ordering is identical either way, so
//! the fallback is invisible to the engine.

use rds_core::{Error, MachineId, Result, TaskId, Time};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// A machine-becomes-idle event.
///
/// Ordering: earliest time first; ties broken by smallest machine id,
/// which matches the deterministic tie-break of the closed-form greedy
/// implementations in `rds-algs`.
///
/// `finished` carries the identity of the task whose completion produced
/// this event (`None` for the initial idle-at-zero seeds). The engine
/// reports completions from this field rather than re-deriving "the slot
/// that just ended" from a floating-point time comparison, which could
/// silently drop a `Complete` trace event whenever derived times drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdleEvent {
    /// When the machine becomes idle.
    pub time: Time,
    /// Which machine.
    pub machine: MachineId,
    /// The task whose completion freed the machine, if any.
    pub finished: Option<TaskId>,
    /// Actual processing time of `finished` ([`Time::ZERO`] when
    /// `finished` is `None`). Carrying it in the event spares the
    /// engine a second random read into the realization's actuals at
    /// completion — at n=10^6 that lookup is a guaranteed cache miss
    /// per event.
    pub actual: Time,
}

/// Heap entry ordering [`IdleEvent`]s by `(time, machine)` only — the
/// `finished` payload rides along without affecting queue order.
#[derive(Debug)]
struct Entry(IdleEvent);

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        (self.0.time, self.0.machine) == (other.0.time, other.0.machine)
    }
}

impl Eq for Entry {}

// Intentional `PartialOrd` *definition*: it delegates to the total
// `Ord` below (which compares `Time` newtypes, never raw floats), so
// the clippy.toml `partial_cmp` fence is not weakened — the fence bans
// NaN-unsafe `f64::partial_cmp` *calls*, not trait impls.
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.0.time, self.0.machine).cmp(&(other.0.time, other.0.machine))
    }
}

/// Which backend a simulation run should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueMode {
    /// Pick per run: calendar for large instances with a usable time
    /// scale, heap otherwise.
    #[default]
    Auto,
    /// Always the binary heap.
    Heap,
    /// Always the calendar queue (still subject to the runtime
    /// degeneracy fallback, which preserves ordering exactly).
    Bucketed,
}

/// Chain terminator in the per-machine `next` links.
///
/// Sentinel-aliasing hazard: the calendar's columns store machine and
/// task ids as `u32`, so a real id equal to [`NIL`], [`FREE`], or
/// [`NO_TASK`] would be silently misread as the sentinel (a task
/// `u32::MAX` would vanish as "no finished task"; a machine
/// `u32::MAX - 1` would never link onto the wheel).
/// [`EventQueue::check_capacity`] rejects such counts up front, and the
/// engine calls it at construction.
const NIL: u32 = u32::MAX;

/// Sentinel in `next` marking a machine with no event on the wheel
/// (see the aliasing note on [`NIL`]).
const FREE: u32 = u32::MAX - 1;

/// Sentinel in the per-machine task column for `finished == None`
/// (see the aliasing note on [`NIL`]).
const NO_TASK: u32 = u32::MAX;

/// The calendar backend: an intrusive timer wheel over virtual index
/// `⌊t / width⌋`, plus an overflow heap for events past the window.
///
/// Storage exploits the engine's invariant that each machine has at
/// most one outstanding idle event: the event payload lives in dense
/// per-machine columns (`ev_time` / `ev_task` / `ev_actual`), and each
/// of the `B` ring buckets is just a `u32` head of an intrusive linked
/// list through the per-machine `next` column. Every queue operation
/// therefore touches a few small flat arrays (`≈ 4·B + 16·m` bytes —
/// L2-resident even at m = 10^4) instead of per-bucket `Vec`s whose
/// headers and payloads each cost a cache miss at scale.
///
/// The public [`EventQueue::push`] API still accepts a second event
/// for a machine already on the wheel (or an event for a machine id
/// past the reset size): such events wait in the overflow heap and are
/// merged back strictly in `(time, machine)` order at pop, so ordering
/// stays identical to the heap backend for any input.
#[derive(Debug, Default)]
struct CalendarQueue {
    /// `head.len()` is a power of two `B`; bucket for virtual index
    /// `i` is `head[i & mask]`, holding a machine id or [`NIL`]. The
    /// window covers `[vidx, vidx + B)`.
    head: Vec<u32>,
    /// Per machine: next machine in the same bucket's chain ([`NIL`]
    /// ends a chain, [`FREE`] means not on the wheel).
    next: Vec<u32>,
    /// Per machine: queued event time.
    ev_time: Vec<f64>,
    /// Per machine: queued event's finished task, or [`NO_TASK`].
    ev_task: Vec<u32>,
    /// Per machine: queued event's actual duration.
    ev_actual: Vec<f64>,
    mask: u64,
    inv_width: f64,
    vidx: u64,
    /// Events currently on the wheel.
    bucketed: usize,
    /// Events whose virtual index falls outside the window, plus any
    /// conflicting second-event-per-machine pushes.
    overflow: BinaryHeap<Reverse<Entry>>,
    /// Work counters feeding the degeneracy fallback.
    scanned: u64,
    popped: u64,
}

impl CalendarQueue {
    fn reset(&mut self, m: usize, width: f64) {
        debug_assert!(width.is_finite() && width > 0.0);
        let b = (2 * m).max(8).next_power_of_two();
        self.head.clear();
        self.head.resize(b, NIL);
        self.next.clear();
        self.next.resize(m, FREE);
        self.ev_time.clear();
        self.ev_time.resize(m, 0.0);
        self.ev_task.clear();
        self.ev_task.resize(m, NO_TASK);
        self.ev_actual.clear();
        self.ev_actual.resize(m, 0.0);
        self.mask = (b - 1) as u64;
        self.inv_width = 1.0 / width;
        self.vidx = 0;
        self.bucketed = 0;
        self.overflow.clear();
        self.scanned = 0;
        self.popped = 0;
    }

    /// Virtual bucket index of a time; saturates for extreme times
    /// (which then route to the overflow heap — still correct).
    fn idx(&self, t: Time) -> u64 {
        (t.get() * self.inv_width) as u64
    }

    fn len(&self) -> usize {
        self.bucketed + self.overflow.len()
    }

    /// Reconstructs the queued event of machine `mi` from the columns.
    fn event_of(&self, mi: usize) -> IdleEvent {
        IdleEvent {
            time: Time::of(self.ev_time[mi]),
            machine: MachineId::new(mi),
            finished: (self.ev_task[mi] != NO_TASK).then(|| TaskId::new(self.ev_task[mi] as usize)),
            actual: Time::of(self.ev_actual[mi]),
        }
    }

    /// Links `ev` into the bucket for virtual index `i` (must be inside
    /// the window and the machine must be free).
    fn link(&mut self, ev: IdleEvent, i: u64) {
        let mi = ev.machine.index();
        let ring = (i & self.mask) as usize;
        self.next[mi] = self.head[ring];
        self.head[ring] = mi as u32;
        self.ev_time[mi] = ev.time.get();
        self.ev_task[mi] = ev.finished.map_or(NO_TASK, |t| t.index() as u32);
        self.ev_actual[mi] = ev.actual.get();
        self.bucketed += 1;
    }

    fn push(&mut self, ev: IdleEvent) {
        // Clamp a (theoretical) time regression into the current
        // bucket: its time is below everything still queued, so the
        // min-scan of the current bucket pops it first regardless.
        let i = self.idx(ev.time).max(self.vidx);
        let mi = ev.machine.index();
        if i - self.vidx >= self.head.len() as u64 || mi >= self.next.len() || self.next[mi] != FREE
        {
            self.overflow.push(Reverse(Entry(ev)));
        } else {
            self.link(ev, i);
        }
    }

    /// Moves overflow events now inside the window onto the wheel,
    /// stopping at the first that is still out of window or whose
    /// machine is occupied (the pop-side merge keeps order for those).
    fn drain_overflow(&mut self) {
        let b = self.head.len() as u64;
        while let Some(Reverse(Entry(ev))) = self.overflow.peek() {
            let i = self.idx(ev.time).max(self.vidx);
            let mi = ev.machine.index();
            if i - self.vidx >= b || mi >= self.next.len() || self.next[mi] != FREE {
                break;
            }
            let Some(Reverse(Entry(ev))) = self.overflow.pop() else {
                unreachable!("peeked entry vanished");
            };
            self.link(ev, i);
        }
    }

    /// Advances `vidx` to the first non-empty bucket and returns its
    /// ring index. Caller guarantees `bucketed > 0`.
    fn seek(&mut self) -> usize {
        loop {
            let ring = (self.vidx & self.mask) as usize;
            if self.head[ring] != NIL {
                return ring;
            }
            self.vidx += 1;
            self.scanned += 1;
        }
    }

    /// Minimum time on the chain of ring bucket `ring` (also counts
    /// the walk toward the degeneracy work counter).
    fn chain_min(&mut self, ring: usize) -> f64 {
        let mut tmin = f64::INFINITY;
        let mut mi = self.head[ring];
        while mi != NIL {
            self.scanned += 1;
            tmin = tmin.min(self.ev_time[mi as usize]);
            mi = self.next[mi as usize];
        }
        tmin
    }

    /// Unlinks every chain node of `ring` whose time equals `t` into
    /// `out`.
    fn unlink_time(&mut self, ring: usize, t: f64, out: &mut Vec<IdleEvent>) {
        let mut prev = NIL;
        let mut mi = self.head[ring];
        while mi != NIL {
            let nxt = self.next[mi as usize];
            if self.ev_time[mi as usize] == t {
                out.push(self.event_of(mi as usize));
                if prev == NIL {
                    self.head[ring] = nxt;
                } else {
                    self.next[prev as usize] = nxt;
                }
                self.next[mi as usize] = FREE;
                self.bucketed -= 1;
            } else {
                prev = mi;
            }
            mi = nxt;
        }
    }

    /// Pops every overflow event whose time equals `t` into `out`.
    fn pop_overflow_time(&mut self, t: f64, out: &mut Vec<IdleEvent>) {
        while let Some(Reverse(Entry(ev))) = self.overflow.peek() {
            if ev.time.get() != t {
                break;
            }
            let Some(Reverse(Entry(ev))) = self.overflow.pop() else {
                unreachable!("peeked entry vanished");
            };
            out.push(ev);
        }
    }

    /// Appends every event carrying the minimal time to `out`, sorted by
    /// machine id — one dispatch round. Returns `false` when empty.
    fn pop_round(&mut self, out: &mut Vec<IdleEvent>) -> bool {
        let start = out.len();
        if self.len() == 0 {
            return false;
        }
        self.drain_overflow();
        // Window invariant: every bucket past the seek point holds
        // strictly later virtual indices, hence strictly later times —
        // the first non-empty bucket's chain minimum is the wheel
        // minimum. Overflow events blocked by an occupied machine may
        // still undercut it, so the two minima merge here.
        let wheel = (self.bucketed > 0).then(|| {
            let ring = self.seek();
            (ring, self.chain_min(ring))
        });
        let over = self.overflow.peek().map(|Reverse(Entry(ev))| ev.time.get());
        let t = match (wheel, over) {
            (Some((_, tw)), Some(to)) => tw.min(to),
            (Some((_, tw)), None) => tw,
            (None, Some(to)) => to,
            (None, None) => return false,
        };
        if let Some((ring, tw)) = wheel {
            if tw == t {
                self.unlink_time(ring, t, out);
            }
        }
        self.pop_overflow_time(t, out);
        self.popped += (out.len() - start) as u64;
        if out.len() - start > 1 {
            out[start..].sort_unstable_by_key(|e| e.machine);
        }
        true
    }

    /// `true` once bucket scanning has cost markedly more than the
    /// events it delivered — the signal that this time distribution
    /// defeats the calendar and the heap should take over.
    fn degenerate(&self) -> bool {
        self.scanned > 8 * self.popped + 4 * self.head.len() as u64
    }

    /// Minimum event by `(time, machine)` without mutating anything.
    fn peek(&self) -> Option<IdleEvent> {
        let b = self.head.len() as u64;
        let mut best: Option<IdleEvent> = None;
        if self.bucketed > 0 {
            // First non-empty bucket in window order holds the wheel
            // minimum (clamped pushes only land in the current bucket).
            for k in 0..b {
                let ring = ((self.vidx + k) & self.mask) as usize;
                let mut mi = self.head[ring];
                if mi == NIL {
                    continue;
                }
                while mi != NIL {
                    let ev = self.event_of(mi as usize);
                    if best.is_none_or(|b| (ev.time, ev.machine) < (b.time, b.machine)) {
                        best = Some(ev);
                    }
                    mi = self.next[mi as usize];
                }
                break;
            }
        }
        // Overflow normally holds times past the window, but a blocked
        // second-event-per-machine push can undercut the wheel minimum.
        match (best, self.overflow.peek()) {
            (Some(w), Some(Reverse(Entry(o)))) => {
                if (o.time, o.machine) < (w.time, w.machine) {
                    Some(*o)
                } else {
                    Some(w)
                }
            }
            (Some(w), None) => Some(w),
            (None, Some(Reverse(Entry(o)))) => Some(*o),
            (None, None) => None,
        }
    }

    /// Pops the single minimum event (compatibility path; the engine
    /// uses [`CalendarQueue::pop_round`]).
    fn pop(&mut self) -> Option<IdleEvent> {
        let ev = self.peek()?;
        let mi = ev.machine.index();
        if mi < self.next.len() && self.next[mi] != FREE && self.event_of(mi) == ev {
            // Unlink it from whichever bucket chains it.
            let ring = (self.idx(ev.time).max(self.vidx) & self.mask) as usize;
            let mut scratch = Vec::with_capacity(1);
            self.unlink_time(ring, ev.time.get(), &mut scratch);
            // Equal-time chain mates came out too; relink all but `ev`.
            for other in scratch {
                if other != ev {
                    self.link(other, self.idx(other.time).max(self.vidx));
                }
            }
            self.popped += 1;
            Some(ev)
        } else {
            let Some(Reverse(Entry(popped))) = self.overflow.pop() else {
                unreachable!("peeked event vanished");
            };
            self.popped += 1;
            Some(popped)
        }
    }

    /// Drains every remaining event (used by the heap migration).
    fn drain_into(&mut self, heap: &mut BinaryHeap<Reverse<Entry>>) {
        for ring in 0..self.head.len() {
            let mut mi = self.head[ring];
            while mi != NIL {
                heap.push(Reverse(Entry(self.event_of(mi as usize))));
                let nxt = self.next[mi as usize];
                self.next[mi as usize] = FREE;
                mi = nxt;
            }
            self.head[ring] = NIL;
        }
        self.bucketed = 0;
        heap.extend(self.overflow.drain());
    }
}

#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
enum Active {
    #[default]
    Heap,
    Calendar,
}

/// Min-priority queue of [`IdleEvent`]s.
///
/// Defaults to the heap backend; [`EventQueue::reset_bucketed`] arms
/// the calendar for one engine run. Both backends expose identical
/// ordering, so callers never observe which one is active.
#[derive(Debug, Default)]
pub struct EventQueue {
    active: Active,
    heap: BinaryHeap<Reverse<Entry>>,
    cal: CalendarQueue,
}

impl EventQueue {
    /// Largest task or machine count whose ids stay clear of every
    /// `u32` sentinel in the calendar's columns ([`NIL`], [`FREE`],
    /// [`NO_TASK`]): ids must stay strictly below `u32::MAX - 1`, the
    /// smallest sentinel value.
    pub const MAX_IDS: usize = FREE as usize;

    /// Guards the calendar's `u32` id columns against sentinel
    /// aliasing: a task index `≥ u32::MAX - 1` (or such a machine
    /// index) would be indistinguishable from [`FREE`]/[`NO_TASK`] once
    /// stored, silently corrupting the wheel. The engine calls this at
    /// construction so the impossible ids are rejected with a typed
    /// error instead.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] when `n_tasks` or `m` exceeds
    /// [`Self::MAX_IDS`].
    pub fn check_capacity(n_tasks: usize, m: usize) -> Result<()> {
        if n_tasks > Self::MAX_IDS {
            return Err(Error::InvalidParameter {
                what: "task count exceeds the event queue's u32 id range (sentinel aliasing)",
            });
        }
        if m > Self::MAX_IDS {
            return Err(Error::InvalidParameter {
                what: "machine count exceeds the event queue's u32 id range (sentinel aliasing)",
            });
        }
        Ok(())
    }

    /// An empty queue (heap backend).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty queue with room for `cap` events before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            active: Active::Heap,
            heap: BinaryHeap::with_capacity(cap),
            cal: CalendarQueue::default(),
        }
    }

    /// Queue with every machine idle at time zero (no finished task),
    /// sized for `m` events up front — each machine has at most one
    /// outstanding idle event, so the engine never grows the heap.
    pub fn all_idle(m: usize) -> Self {
        let mut q = Self::with_capacity(m);
        q.reset_all_idle(m);
        q
    }

    /// Clears the queue (keeping its storage), selects the **heap**
    /// backend, and reseeds every machine idle at time zero, exactly
    /// like a fresh [`EventQueue::all_idle`]. Once the heap has
    /// capacity for `m` events this never allocates.
    pub fn reset_all_idle(&mut self, m: usize) {
        self.active = Active::Heap;
        self.heap.clear();
        self.heap.reserve(m);
        for i in 0..m {
            self.push(IdleEvent {
                time: Time::ZERO,
                machine: MachineId::new(i),
                finished: None,
                actual: Time::ZERO,
            });
        }
    }

    /// Clears the queue, selects the **calendar** backend with bucket
    /// width `width` (must be finite and positive — the caller derives
    /// it from the workload's mean task duration), and reseeds every
    /// machine idle at time zero. Bucket storage is retained across
    /// resets with the same `m`.
    pub fn reset_bucketed(&mut self, m: usize, width: f64) {
        self.active = Active::Calendar;
        self.heap.clear();
        self.cal.reset(m, width);
        for i in 0..m {
            self.push(IdleEvent {
                time: Time::ZERO,
                machine: MachineId::new(i),
                finished: None,
                actual: Time::ZERO,
            });
        }
    }

    /// Inserts an event.
    pub fn push(&mut self, ev: IdleEvent) {
        match self.active {
            Active::Heap => self.heap.push(Reverse(Entry(ev))),
            Active::Calendar => self.cal.push(ev),
        }
    }

    /// Removes and returns the earliest event (ties → smallest machine).
    pub fn pop(&mut self) -> Option<IdleEvent> {
        match self.active {
            Active::Heap => self.heap.pop().map(|Reverse(Entry(ev))| ev),
            Active::Calendar => self.cal.pop(),
        }
    }

    /// Pops **every** event sharing the minimal time into `out`
    /// (cleared first), sorted by machine id — one dispatch round.
    /// Returns `false` when the queue is empty.
    ///
    /// On the calendar backend this is also where the degeneracy
    /// fallback triggers: when bucket scanning has cost more than a
    /// fixed multiple of the events delivered, all remaining events
    /// migrate to the heap. The migration reorders nothing.
    pub fn pop_round(&mut self, out: &mut Vec<IdleEvent>) -> bool {
        out.clear();
        self.append_round(out)
    }

    /// Like [`Self::pop_round`] but *appends* the next round to `out`,
    /// letting the engine accumulate a small look-ahead window of whole
    /// timestamp groups. Group boundaries stay intact, so everything in
    /// `out` still precedes everything left in the queue under the
    /// global `(time, machine)` order.
    pub fn append_round(&mut self, out: &mut Vec<IdleEvent>) -> bool {
        match self.active {
            Active::Heap => {
                let Some(Reverse(Entry(first))) = self.heap.pop() else {
                    return false;
                };
                out.push(first);
                // Heap order is (time, machine), so equal-time pops
                // already arrive in ascending machine order.
                while let Some(Reverse(Entry(ev))) = self.heap.peek() {
                    if ev.time != first.time {
                        break;
                    }
                    let Some(Reverse(Entry(ev))) = self.heap.pop() else {
                        unreachable!("peeked entry vanished");
                    };
                    out.push(ev);
                }
                true
            }
            Active::Calendar => {
                let any = self.cal.pop_round(out);
                if any && self.cal.degenerate() {
                    self.cal.drain_into(&mut self.heap);
                    self.active = Active::Heap;
                }
                any
            }
        }
    }

    /// The earliest event without removing it — lets an outer loop (the
    /// serve daemon) merge this queue with other event sources (task
    /// arrivals, retry timers) by comparing heads.
    pub fn peek(&self) -> Option<IdleEvent> {
        match self.active {
            Active::Heap => self.heap.peek().map(|Reverse(Entry(ev))| *ev),
            Active::Calendar => self.cal.peek(),
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        match self.active {
            Active::Heap => self.heap.len(),
            Active::Calendar => self.cal.len(),
        }
    }

    /// `true` when no events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` while the calendar backend is active (it may flip to the
    /// heap mid-run via the degeneracy fallback). Diagnostic only.
    pub fn is_bucketed(&self) -> bool {
        self.active == Active::Calendar
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::all_idle(3);
        let head = q.peek().unwrap();
        assert_eq!(q.pop().unwrap(), head);
        assert_eq!(head.machine.index(), 0);
    }

    #[test]
    fn pops_in_time_then_machine_order() {
        let mut q = EventQueue::new();
        q.push(IdleEvent {
            time: Time::of(2.0),
            machine: MachineId::new(0),
            finished: Some(TaskId::new(7)),
            actual: Time::of(2.0),
        });
        q.push(IdleEvent {
            time: Time::of(1.0),
            machine: MachineId::new(5),
            finished: None,
            actual: Time::ZERO,
        });
        q.push(IdleEvent {
            time: Time::of(1.0),
            machine: MachineId::new(3),
            finished: Some(TaskId::new(1)),
            actual: Time::of(1.0),
        });
        let order: Vec<(f64, usize)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.time.get(), e.machine.index()))
            .collect();
        assert_eq!(order, vec![(1.0, 3), (1.0, 5), (2.0, 0)]);
    }

    #[test]
    fn finished_task_rides_through_the_queue() {
        let mut q = EventQueue::new();
        q.push(IdleEvent {
            time: Time::of(3.0),
            machine: MachineId::new(1),
            finished: Some(TaskId::new(4)),
            actual: Time::of(3.0),
        });
        let e = q.pop().unwrap();
        assert_eq!(e.finished, Some(TaskId::new(4)));
    }

    #[test]
    fn all_idle_seeds_every_machine_at_zero() {
        let mut q = EventQueue::all_idle(3);
        assert_eq!(q.len(), 3);
        for expected in 0..3 {
            let e = q.pop().unwrap();
            assert_eq!(e.time, Time::ZERO);
            assert_eq!(e.machine.index(), expected);
            assert_eq!(e.finished, None);
        }
        assert!(q.is_empty());
    }

    fn ev(t: f64, m: usize) -> IdleEvent {
        IdleEvent {
            time: Time::of(t),
            machine: MachineId::new(m),
            finished: None,
            actual: Time::ZERO,
        }
    }

    /// Drains a queue round by round into `(time, machine)` pairs.
    fn drain_rounds(q: &mut EventQueue) -> Vec<Vec<(f64, usize)>> {
        let mut rounds = Vec::new();
        let mut buf = Vec::new();
        while q.pop_round(&mut buf) {
            rounds.push(
                buf.iter()
                    .map(|e| (e.time.get(), e.machine.index()))
                    .collect(),
            );
        }
        rounds
    }

    #[test]
    fn heap_pop_round_groups_equal_times_in_machine_order() {
        let mut q = EventQueue::new();
        for (t, m) in [(2.0, 1), (1.0, 4), (1.0, 2), (3.0, 0), (1.0, 9)] {
            q.push(ev(t, m));
        }
        let rounds = drain_rounds(&mut q);
        assert_eq!(
            rounds,
            vec![
                vec![(1.0, 2), (1.0, 4), (1.0, 9)],
                vec![(2.0, 1)],
                vec![(3.0, 0)],
            ]
        );
    }

    #[test]
    fn calendar_matches_heap_on_random_pushes() {
        // Deterministic pseudo-random times over a wide range, popped
        // interleaved with pushes — the exact sequences must agree.
        let mut heap = EventQueue::new();
        heap.reset_all_idle(4);
        let mut cal = EventQueue::new();
        cal.reset_bucketed(4, 0.37);
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut clock = 0.0f64;
        for step in 0..500 {
            // Pop one round from each and compare.
            let mut a = Vec::new();
            let mut b = Vec::new();
            assert_eq!(heap.pop_round(&mut a), cal.pop_round(&mut b));
            assert_eq!(a, b, "diverged at step {step}");
            if let Some(first) = a.first() {
                clock = first.time.get();
            }
            // Push a replacement per popped event, at or after `clock`.
            for e in &a {
                let t = clock + next() * 10.0;
                heap.push(ev(t, e.machine.index()));
                cal.push(ev(t, e.machine.index()));
            }
            assert_eq!(heap.len(), cal.len());
        }
    }

    #[test]
    fn calendar_survives_all_equal_timestamps() {
        let mut q = EventQueue::new();
        q.reset_bucketed(6, 1.0);
        // All six machines idle at 0 come out as one round.
        let mut buf = Vec::new();
        assert!(q.pop_round(&mut buf));
        assert_eq!(buf.len(), 6);
        // Re-push all at the same far-future instant: one bucket, one
        // round, machine-ordered.
        for m in [5usize, 0, 3, 1, 4, 2] {
            q.push(ev(1e6, m));
        }
        assert!(q.pop_round(&mut buf));
        let machines: Vec<usize> = buf.iter().map(|e| e.machine.index()).collect();
        assert_eq!(machines, vec![0, 1, 2, 3, 4, 5]);
        assert!(!q.pop_round(&mut buf));
    }

    #[test]
    fn calendar_handles_huge_dynamic_range_via_overflow() {
        let mut q = EventQueue::new();
        q.reset_bucketed(4, 1e-6);
        // Times spanning 12 orders of magnitude; extreme ones saturate
        // the virtual index and route through the overflow heap.
        let times = [0.0, 1e-9, 3.0, 1e6, 1e12, 2.5e12];
        for (m, &t) in times.iter().enumerate() {
            q.push(ev(t, m + 4));
        }
        let mut seen = Vec::new();
        let mut buf = Vec::new();
        while q.pop_round(&mut buf) {
            for e in &buf {
                seen.push(e.time.get());
            }
        }
        // 4 idle seeds at 0.0 first, then the pushed times ascending.
        let mut expected = vec![0.0, 0.0, 0.0, 0.0];
        expected.extend_from_slice(&times);
        assert_eq!(seen, expected);
    }

    #[test]
    fn degeneracy_fallback_migrates_to_heap_without_reordering() {
        let mut q = EventQueue::new();
        // Huge width: every distinct time collapses into one bucket, so
        // each round chain-walks all 32 machines to deliver one event —
        // exactly the quadratic pattern the fallback exists for.
        q.reset_bucketed(32, 1e6);
        let mut buf = Vec::new();
        assert!(q.pop_round(&mut buf)); // the 32 idle seeds at t = 0
        assert_eq!(buf.len(), 32);
        // One outstanding event per machine, all times distinct. Each
        // pop re-arms the machine 32 units later, keeping the chain at
        // full length until scanning overwhelms delivery.
        for m in 0..32usize {
            q.push(ev(1.0 + m as f64, m));
        }
        let mut popped = Vec::new();
        while q.pop_round(&mut buf) {
            assert_eq!(buf.len(), 1, "all times are distinct");
            let e = buf[0];
            popped.push(e.time.get());
            if e.time.get() < 200.0 {
                q.push(ev(e.time.get() + 32.0, e.machine.index()));
            }
        }
        assert!(!q.is_bucketed(), "fallback should have migrated to heap");
        let mut sorted = popped.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(popped, sorted, "migration must not reorder events");
    }

    #[test]
    fn capacity_guard_rejects_sentinel_aliasing_counts() {
        // Ids live in u32 columns with sentinels at u32::MAX (NIL,
        // NO_TASK) and u32::MAX - 1 (FREE): a count that reaches either
        // would make a real id alias a sentinel. The guard rejects it
        // with a typed error; everything below passes.
        assert!(EventQueue::check_capacity(0, 0).is_ok());
        assert!(EventQueue::check_capacity(EventQueue::MAX_IDS, 4).is_ok());
        assert!(matches!(
            EventQueue::check_capacity(EventQueue::MAX_IDS + 1, 4).unwrap_err(),
            Error::InvalidParameter { .. }
        ));
        assert!(matches!(
            EventQueue::check_capacity(4, EventQueue::MAX_IDS + 1).unwrap_err(),
            Error::InvalidParameter { .. }
        ));
        assert!(matches!(
            EventQueue::check_capacity(u32::MAX as usize, 4).unwrap_err(),
            Error::InvalidParameter { .. }
        ));
        assert_eq!(EventQueue::MAX_IDS, u32::MAX as usize - 1);
    }

    #[test]
    fn reset_bucketed_reuses_storage_and_clears_state() {
        let mut q = EventQueue::new();
        q.reset_bucketed(8, 0.5);
        for i in 0..8 {
            q.push(ev(i as f64, i));
        }
        q.reset_bucketed(8, 0.25);
        assert_eq!(q.len(), 8, "only the idle seeds survive a reset");
        let mut buf = Vec::new();
        assert!(q.pop_round(&mut buf));
        assert_eq!(buf.len(), 8);
        assert!(buf.iter().all(|e| e.time == Time::ZERO));
    }
}
