//! Ready-made simulations of the paper's strategies.
//!
//! These wire each strategy's phase-2 policy into the event engine. Their
//! results are provably identical to the closed-form greedy
//! implementations in `rds-algs` (the integration tests assert this),
//! and additionally carry full traces and Gantt-able schedules.

use crate::dispatcher::{Dispatcher, LocalityDispatcher, OrderedDispatcher, PinnedDispatcher};
use crate::engine::{Engine, SimResult};
use rds_core::{
    Instance, MachineId, MachineSpeeds, NetworkTopology, Placement, Realization, Result, TaskId,
};

/// Simulates `LPT-No Restriction`: everywhere placement, online LPT by
/// estimate.
///
/// # Errors
/// Propagates engine errors.
pub fn simulate_no_restriction(
    instance: &Instance,
    realization: &Realization,
) -> Result<SimResult> {
    let placement = Placement::everywhere(instance);
    let engine = Engine::new(instance, &placement, realization)?;
    engine.run(&mut OrderedDispatcher::lpt_by_estimate(instance))
}

/// Simulates a fully pinned execution (e.g. `LPT-No Choice` after its
/// phase 1, or `SABO_Δ`): each task runs on its unique placed machine,
/// machines work through their queues in task-id order.
///
/// # Errors
/// Propagates engine errors.
pub fn simulate_pinned(
    instance: &Instance,
    machine_of: &[MachineId],
    realization: &Realization,
) -> Result<SimResult> {
    let placement = Placement::pinned(instance, machine_of)?;
    let engine = Engine::new(instance, &placement, realization)?;
    engine.run(&mut PinnedDispatcher::new(machine_of, instance.m()))
}

/// Simulates `LS-Group` phase 2 on a group-shaped placement: tasks are
/// dispatched in task-id order, each to the first idle machine of its
/// group. Group placements are sparse, so this takes the indexed
/// dispatch path (per-machine restricted orders) automatically.
///
/// # Errors
/// Propagates engine errors.
pub fn simulate_grouped(
    instance: &Instance,
    placement: &Placement,
    realization: &Realization,
) -> Result<SimResult> {
    let engine = Engine::new(instance, placement, realization)?;
    let order = instance.task_ids().collect();
    engine.run(&mut OrderedDispatcher::auto(order, placement))
}

/// Simulates an arbitrary placement with a custom priority order.
///
/// # Errors
/// Propagates engine errors.
pub fn simulate_ordered(
    instance: &Instance,
    placement: &Placement,
    order: Vec<TaskId>,
    realization: &Realization,
) -> Result<SimResult> {
    let engine = Engine::new(instance, placement, realization)?;
    engine.run(&mut OrderedDispatcher::auto(order, placement))
}

/// Simulates a heterogeneous execution: LPT priority, speed-stretched
/// durations, and — when a topology is given — locality-aware dispatch
/// with transfer charging ([`Engine::run_hetero`]).
///
/// With `speeds = None` and `topology = None` this is exactly the
/// homogeneous LPT run over `placement`. With a topology, dispatch
/// switches to [`LocalityDispatcher`] so the policy minimizes the very
/// transfers the engine charges.
///
/// # Errors
/// Propagates engine errors and machine-count mismatches.
pub fn simulate_hetero(
    instance: &Instance,
    placement: &Placement,
    realization: &Realization,
    speeds: Option<&MachineSpeeds>,
    topology: Option<&NetworkTopology>,
) -> Result<SimResult> {
    let engine = Engine::new(instance, placement, realization)?;
    let order = instance.ids_by_estimate_desc();
    let mut dispatcher: Box<dyn Dispatcher> = match topology {
        Some(t) => Box::new(LocalityDispatcher::new(order, placement, t.clone())?),
        None => Box::new(OrderedDispatcher::auto(order, placement)),
    };
    engine.run_hetero(dispatcher.as_mut(), speeds, topology)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_core::{Time, Uncertainty};

    #[test]
    fn no_restriction_simulation_runs_all_tasks() {
        let inst = Instance::from_estimates(&[4.0, 3.0, 2.0, 1.0], 2).unwrap();
        let unc = Uncertainty::of(1.5);
        let real = Realization::from_factors(&inst, unc, &[1.5, 1.0, 0.8, 1.2]).unwrap();
        let res = simulate_no_restriction(&inst, &real).unwrap();
        assert_eq!(res.trace.starts(), 4);
        res.schedule.validate(&inst, &real).unwrap();
    }

    #[test]
    fn pinned_simulation_keeps_assignment() {
        let inst = Instance::from_estimates(&[1.0, 2.0, 3.0], 2).unwrap();
        let machine_of = [MachineId::new(1), MachineId::new(0), MachineId::new(1)];
        let real = Realization::exact(&inst);
        let res = simulate_pinned(&inst, &machine_of, &real).unwrap();
        let a = res.schedule.to_assignment(&inst).unwrap();
        assert_eq!(a.machines(), &machine_of);
        assert_eq!(res.makespan, Time::of(4.0));
    }

    #[test]
    fn ordered_respects_custom_priority() {
        let inst = Instance::from_estimates(&[1.0, 5.0], 1).unwrap();
        let real = Realization::exact(&inst);
        let p = Placement::everywhere(&inst);
        let res = simulate_ordered(&inst, &p, vec![TaskId::new(1), TaskId::new(0)], &real).unwrap();
        let slots = res.schedule.slots(MachineId::new(0));
        assert_eq!(slots[0].task, TaskId::new(1));
    }
}
