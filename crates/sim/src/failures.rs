//! Machine-failure simulation: the fault-tolerance side of replication.
//!
//! The paper motivates replication partly through Hadoop, which
//! replicates data "for the purpose of tolerating hardware faults". This
//! module makes that executable: machines can fail at given times, a
//! failed machine's in-flight task is lost and must restart *on another
//! machine holding its data* — impossible without replication. The same
//! [`Dispatcher`] policies drive the surviving machines.

use crate::dispatcher::{Dispatcher, SimView};
use crate::trace::{Trace, TraceEvent};
use rds_core::{
    Error, Instance, MachineId, Placement, Realization, Result, Schedule, Slot, TaskId, Time,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A scheduled machine failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Failure {
    /// The machine that fails.
    pub machine: MachineId,
    /// When it fails (it processes nothing from this instant on).
    pub at: Time,
}

/// Result of a failure-injected execution.
#[derive(Debug, Clone)]
pub struct FaultySimResult {
    /// Completed work only (lost attempts are not slots).
    pub schedule: Schedule,
    /// Completion time of the last surviving task.
    pub makespan: Time,
    /// Chronological trace (includes `Starved` markers for dead ends).
    pub trace: Trace,
    /// Number of task attempts killed by failures and restarted.
    pub restarts: usize,
}

/// Event kinds, ordered so failures at time `t` process before idle
/// events at `t` (conservative: the machine is gone first).
const KIND_FAILURE: u8 = 0;
const KIND_IDLE: u8 = 1;

/// Runs the execution with failure injection.
///
/// # Errors
/// - The base engine's dispatcher-misbehaviour errors;
/// - [`Error::InvalidParameter`] when a pending task's every data-holding
///   machine has failed (the task is stranded — the exact scenario
///   replication exists to prevent).
pub fn run_with_failures(
    instance: &Instance,
    placement: &Placement,
    realization: &Realization,
    dispatcher: &mut dyn Dispatcher,
    failures: &[Failure],
) -> Result<FaultySimResult> {
    let n = instance.n();
    let m = instance.m();
    if placement.n() != n || realization.n() != n {
        return Err(Error::TaskCountMismatch {
            expected: n,
            got: placement.n().min(realization.n()),
        });
    }
    let mut pending = vec![true; n];
    let mut remaining = n;
    let mut alive = vec![true; m];
    let mut idle = vec![false; m];
    // What each machine is currently running: (task, start, end).
    let mut running: Vec<Option<(TaskId, Time, Time)>> = vec![None; m];
    let mut slots: Vec<Vec<Slot>> = vec![Vec::new(); m];
    let mut trace = Trace::new();
    let mut restarts = 0usize;
    let mut makespan = Time::ZERO;

    let mut queue: BinaryHeap<Reverse<(Time, u8, MachineId)>> = BinaryHeap::new();
    for i in 0..m {
        queue.push(Reverse((Time::ZERO, KIND_IDLE, MachineId::new(i))));
    }
    for f in failures {
        if f.machine.index() >= m {
            return Err(Error::MachineOutOfRange {
                machine: f.machine.index(),
                m,
            });
        }
        queue.push(Reverse((f.at, KIND_FAILURE, f.machine)));
    }

    while let Some(Reverse((time, kind, machine))) = queue.pop() {
        let mi = machine.index();
        if kind == KIND_FAILURE {
            if !alive[mi] {
                continue;
            }
            alive[mi] = false;
            idle[mi] = false;
            if let Some((task, start, end)) = running[mi].take() {
                if end > time {
                    // In-flight attempt is lost: requeue the task
                    // (`remaining` counts completions, so no adjustment).
                    pending[task.index()] = true;
                    restarts += 1;
                    dispatcher.on_requeue(task);
                    // Wake every idle surviving machine to pick it up.
                    for w in 0..m {
                        if alive[w] && idle[w] {
                            idle[w] = false;
                            queue.push(Reverse((time, KIND_IDLE, MachineId::new(w))));
                        }
                    }
                } else {
                    // It finished exactly at the failure instant: count it.
                    complete(
                        &mut slots[mi],
                        &mut trace,
                        dispatcher,
                        task,
                        machine,
                        start,
                        end,
                        realization,
                        &mut makespan,
                    );
                    remaining_done(&mut remaining);
                }
            }
            continue;
        }

        // Idle event.
        if !alive[mi] {
            continue;
        }
        // Completion bookkeeping for the attempt that just ended.
        if let Some((task, start, end)) = running[mi] {
            if end == time {
                running[mi] = None;
                complete(
                    &mut slots[mi],
                    &mut trace,
                    dispatcher,
                    task,
                    machine,
                    start,
                    end,
                    realization,
                    &mut makespan,
                );
                remaining_done(&mut remaining);
            } else {
                // Stale wake-up while busy (e.g. a requeue broadcast).
                continue;
            }
        }
        if remaining == 0 {
            continue;
        }
        let view = SimView {
            instance,
            placement,
            pending: &pending,
        };
        match dispatcher.next_task(machine, time, &view) {
            Some(task) => {
                if task.index() >= n {
                    return Err(Error::TaskOutOfRange {
                        task: task.index(),
                        n,
                    });
                }
                if !pending[task.index()] {
                    return Err(Error::InvalidParameter {
                        what: "dispatcher returned an already-started task",
                    });
                }
                if !placement.allows(task, machine) {
                    return Err(Error::InfeasibleAssignment {
                        task: task.index(),
                        machine: mi,
                    });
                }
                pending[task.index()] = false;
                let end = time + realization.actual(task);
                running[mi] = Some((task, time, end));
                trace.push(TraceEvent::Start {
                    time,
                    task,
                    machine,
                });
                queue.push(Reverse((end, KIND_IDLE, machine)));
            }
            None => {
                idle[mi] = true;
                trace.push(TraceEvent::Starved { time, machine });
            }
        }
    }

    if remaining > 0 {
        // Some task is stranded: all its replicas are on dead machines
        // (or the dispatcher refused it).
        return Err(Error::InvalidParameter {
            what: "task stranded: every machine holding its data failed",
        });
    }
    Ok(FaultySimResult {
        schedule: Schedule::from_slots(slots),
        makespan,
        trace,
        restarts,
    })
}

#[allow(clippy::too_many_arguments)]
fn complete(
    slots: &mut Vec<Slot>,
    trace: &mut Trace,
    dispatcher: &mut dyn Dispatcher,
    task: TaskId,
    machine: MachineId,
    start: Time,
    end: Time,
    realization: &Realization,
    makespan: &mut Time,
) {
    let actual = realization.actual(task);
    slots.push(Slot { task, start, end });
    trace.push(TraceEvent::Complete {
        time: end,
        task,
        machine,
        actual,
    });
    dispatcher.on_complete(task, machine, actual, end);
    *makespan = (*makespan).max(end);
}

fn remaining_done(remaining: &mut usize) {
    *remaining -= 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatcher::OrderedDispatcher;
    use rds_core::Placement;

    fn fail(machine: usize, at: f64) -> Failure {
        Failure {
            machine: MachineId::new(machine),
            at: Time::of(at),
        }
    }

    #[test]
    fn no_failures_matches_plain_engine() {
        let inst = Instance::from_estimates(&[3.0, 3.0, 2.0, 1.0], 2).unwrap();
        let p = Placement::everywhere(&inst);
        let r = Realization::exact(&inst);
        let plain = crate::engine::Engine::new(&inst, &p, &r)
            .unwrap()
            .run(&mut OrderedDispatcher::fifo(&inst))
            .unwrap();
        let faulty =
            run_with_failures(&inst, &p, &r, &mut OrderedDispatcher::fifo(&inst), &[])
                .unwrap();
        assert_eq!(plain.makespan, faulty.makespan);
        assert_eq!(faulty.restarts, 0);
    }

    #[test]
    fn replicated_task_restarts_elsewhere() {
        // One long task on 2 machines, replicated everywhere; machine 0
        // fails mid-flight → the task restarts on machine 1.
        let inst = Instance::from_estimates(&[4.0], 2).unwrap();
        let p = Placement::everywhere(&inst);
        let r = Realization::exact(&inst);
        let res = run_with_failures(
            &inst,
            &p,
            &r,
            &mut OrderedDispatcher::fifo(&inst),
            &[fail(0, 2.0)],
        )
        .unwrap();
        assert_eq!(res.restarts, 1);
        // Restarted at t=2 on machine 1, full re-run: done at 6.
        assert_eq!(res.makespan, Time::of(6.0));
        let slots1 = res.schedule.slots(MachineId::new(1));
        assert_eq!(slots1.len(), 1);
        assert_eq!(slots1[0].start, Time::of(2.0));
    }

    #[test]
    fn pinned_task_is_stranded_by_failure() {
        // The same scenario without replication: the task dies with its
        // only machine.
        let inst = Instance::from_estimates(&[4.0, 1.0], 2).unwrap();
        let p = Placement::pinned(&inst, &[MachineId::new(0), MachineId::new(1)]).unwrap();
        let r = Realization::exact(&inst);
        let mut d = crate::dispatcher::PinnedDispatcher::new(
            &[MachineId::new(0), MachineId::new(1)],
            2,
        );
        let err = run_with_failures(&inst, &p, &r, &mut d, &[fail(0, 2.0)]).unwrap_err();
        assert!(matches!(err, Error::InvalidParameter { what } if what.contains("stranded")));
    }

    #[test]
    fn failure_after_completion_is_harmless() {
        let inst = Instance::from_estimates(&[2.0], 2).unwrap();
        let p = Placement::everywhere(&inst);
        let r = Realization::exact(&inst);
        let res = run_with_failures(
            &inst,
            &p,
            &r,
            &mut OrderedDispatcher::fifo(&inst),
            &[fail(0, 3.0)],
        )
        .unwrap();
        assert_eq!(res.restarts, 0);
        assert_eq!(res.makespan, Time::of(2.0));
    }

    #[test]
    fn dead_machine_takes_no_new_work() {
        // Machine 0 fails at t=0 (before anything): all work flows to m1.
        let inst = Instance::from_estimates(&[1.0, 1.0, 1.0], 2).unwrap();
        let p = Placement::everywhere(&inst);
        let r = Realization::exact(&inst);
        let res = run_with_failures(
            &inst,
            &p,
            &r,
            &mut OrderedDispatcher::fifo(&inst),
            &[fail(0, 0.0)],
        )
        .unwrap();
        assert!(res.schedule.slots(MachineId::new(0)).is_empty());
        assert_eq!(res.makespan, Time::of(3.0));
    }

    #[test]
    fn cascading_failures_with_enough_replicas() {
        // 3 machines, everywhere placement; two failures in sequence.
        let inst = Instance::from_estimates(&[6.0, 1.0, 1.0], 3).unwrap();
        let p = Placement::everywhere(&inst);
        let r = Realization::exact(&inst);
        let res = run_with_failures(
            &inst,
            &p,
            &r,
            &mut OrderedDispatcher::lpt_by_estimate(&inst),
            &[fail(0, 1.0), fail(1, 2.0)],
        )
        .unwrap();
        // The big task (started on m0) restarts somewhere at t=1; if that
        // was m1 it restarts again at t=2 on m2. Everything completes.
        assert!(res.restarts >= 1);
        assert!(res.makespan >= Time::of(7.0));
        res.schedule.validate(&inst, &r).unwrap();
    }

    #[test]
    fn group_placement_survives_in_group_failure() {
        // Groups of 2: a failure inside a group leaves a surviving holder.
        let inst = Instance::from_estimates(&[2.0, 2.0, 2.0, 2.0], 4).unwrap();
        let sets = vec![
            rds_core::MachineSet::Span { start: 0, end: 2 },
            rds_core::MachineSet::Span { start: 0, end: 2 },
            rds_core::MachineSet::Span { start: 2, end: 4 },
            rds_core::MachineSet::Span { start: 2, end: 4 },
        ];
        let p = Placement::new(&inst, sets).unwrap();
        let r = Realization::exact(&inst);
        let res = run_with_failures(
            &inst,
            &p,
            &r,
            &mut OrderedDispatcher::fifo(&inst),
            &[fail(0, 1.0)],
        )
        .unwrap();
        assert_eq!(res.restarts, 1);
        res.schedule.validate(&inst, &r).unwrap();
        // All four tasks completed despite the failure.
        let total: usize = res.schedule.all_slots().iter().map(|s| s.len()).sum();
        assert_eq!(total, 4);
    }
}
