//! Machine-failure simulation: the fault-tolerance side of replication.
//!
//! The paper motivates replication partly through Hadoop, which
//! replicates data "for the purpose of tolerating hardware faults". This
//! module makes that executable: machines can fail at given times, a
//! failed machine's in-flight task is lost and must restart *on another
//! machine holding its data* — impossible without replication. The same
//! [`Dispatcher`] policies drive the surviving machines.
//!
//! This is now the crash-only compatibility facade over the full
//! resilience engine in [`crate::faults`], which additionally models
//! transient outages, degraded-speed phases, stragglers, and speculative
//! re-execution, and degrades gracefully instead of erroring on
//! stranded tasks.
//!
//! # Tie-break: failure at a completion instant
//!
//! When a failure and a task completion land on the same instant, the
//! failure wins and the in-flight attempt is killed (in the engine's
//! event queue, fault events order strictly before idle/completion
//! events — the `KIND_FAULT < KIND_IDLE` ordering in `faults.rs`). The
//! machine is gone *at* `t`, so work needing the full interval `[start,
//! t]` never commits. This is pinned by
//! `failure_at_exact_completion_instant_kills_the_attempt` below.

use crate::dispatcher::Dispatcher;
use crate::faults::{FaultScript, Outcome, ResilienceEngine};
use crate::trace::Trace;
use rds_core::{Error, Instance, MachineId, Placement, Realization, Result, Schedule, Time};

/// A scheduled machine failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Failure {
    /// The machine that fails.
    pub machine: MachineId,
    /// When it fails (it processes nothing from this instant on).
    pub at: Time,
}

/// Result of a failure-injected execution.
#[derive(Debug, Clone)]
pub struct FaultySimResult {
    /// Completed work only (lost attempts are not slots).
    pub schedule: Schedule,
    /// Completion time of the last surviving task.
    pub makespan: Time,
    /// Chronological trace (includes `Starved` markers for dead ends).
    pub trace: Trace,
    /// Number of task attempts killed by failures and restarted.
    pub restarts: usize,
}

/// Runs the execution with (permanent-crash) failure injection.
///
/// This wraps [`ResilienceEngine`] with a crash-only fault script and no
/// speculation, and preserves the legacy abort-on-stranded contract: a
/// partial outcome maps back to an error. Use the engine directly for
/// graceful degradation, richer fault shapes, and metrics.
///
/// # Errors
/// - The base engine's dispatcher-misbehaviour errors;
/// - [`Error::InvalidParameter`] when a pending task's every data-holding
///   machine has failed (the task is stranded — the exact scenario
///   replication exists to prevent).
pub fn run_with_failures(
    instance: &Instance,
    placement: &Placement,
    realization: &Realization,
    dispatcher: &mut dyn Dispatcher,
    failures: &[Failure],
) -> Result<FaultySimResult> {
    let script = FaultScript::from_failures(failures);
    let report =
        ResilienceEngine::new(instance, placement, realization, &script)?.run(dispatcher)?;
    if let Outcome::Partial { .. } = report.outcome {
        return Err(Error::InvalidParameter {
            what: "task stranded: every machine holding its data failed",
        });
    }
    // Legacy callers get invariant checking unconditionally: crash-only
    // scripts never stretch time, and the outcome is complete here, so the
    // full engine contract applies.
    crate::validate::check_schedule(
        instance,
        placement,
        realization,
        &report.schedule,
        &crate::validate::Checks::engine(),
    )?;
    Ok(FaultySimResult {
        schedule: report.schedule,
        makespan: report.metrics.makespan,
        trace: report.trace,
        restarts: report.metrics.restarts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatcher::OrderedDispatcher;
    use rds_core::Placement;

    fn fail(machine: usize, at: f64) -> Failure {
        Failure {
            machine: MachineId::new(machine),
            at: Time::of(at),
        }
    }

    #[test]
    fn no_failures_matches_plain_engine() {
        let inst = Instance::from_estimates(&[3.0, 3.0, 2.0, 1.0], 2).unwrap();
        let p = Placement::everywhere(&inst);
        let r = Realization::exact(&inst);
        let plain = crate::engine::Engine::new(&inst, &p, &r)
            .unwrap()
            .run(&mut OrderedDispatcher::fifo(&inst))
            .unwrap();
        let faulty =
            run_with_failures(&inst, &p, &r, &mut OrderedDispatcher::fifo(&inst), &[]).unwrap();
        assert_eq!(plain.makespan, faulty.makespan);
        assert_eq!(faulty.restarts, 0);
    }

    #[test]
    fn replicated_task_restarts_elsewhere() {
        // One long task on 2 machines, replicated everywhere; machine 0
        // fails mid-flight → the task restarts on machine 1.
        let inst = Instance::from_estimates(&[4.0], 2).unwrap();
        let p = Placement::everywhere(&inst);
        let r = Realization::exact(&inst);
        let res = run_with_failures(
            &inst,
            &p,
            &r,
            &mut OrderedDispatcher::fifo(&inst),
            &[fail(0, 2.0)],
        )
        .unwrap();
        assert_eq!(res.restarts, 1);
        // Restarted at t=2 on machine 1, full re-run: done at 6.
        assert_eq!(res.makespan, Time::of(6.0));
        let slots1 = res.schedule.slots(MachineId::new(1));
        assert_eq!(slots1.len(), 1);
        assert_eq!(slots1[0].start, Time::of(2.0));
    }

    #[test]
    fn failure_at_exact_completion_instant_kills_the_attempt() {
        // The tie-break: the task would complete at t=2.0, and machine 0
        // fails at exactly t=2.0. The failure event orders before the
        // completion event, so the attempt is lost and the task restarts
        // on machine 1 at t=2.0, finishing at t=4.0.
        let inst = Instance::from_estimates(&[2.0], 2).unwrap();
        let p = Placement::everywhere(&inst);
        let r = Realization::exact(&inst);
        let res = run_with_failures(
            &inst,
            &p,
            &r,
            &mut OrderedDispatcher::fifo(&inst),
            &[fail(0, 2.0)],
        )
        .unwrap();
        assert_eq!(res.restarts, 1);
        assert_eq!(res.makespan, Time::of(4.0));
        assert!(res.schedule.slots(MachineId::new(0)).is_empty());
        let slots1 = res.schedule.slots(MachineId::new(1));
        assert_eq!(slots1.len(), 1);
        assert_eq!(slots1[0].start, Time::of(2.0));
    }

    #[test]
    fn pinned_task_is_stranded_by_failure() {
        // The same scenario without replication: the task dies with its
        // only machine.
        let inst = Instance::from_estimates(&[4.0, 1.0], 2).unwrap();
        let p = Placement::pinned(&inst, &[MachineId::new(0), MachineId::new(1)]).unwrap();
        let r = Realization::exact(&inst);
        let mut d =
            crate::dispatcher::PinnedDispatcher::new(&[MachineId::new(0), MachineId::new(1)], 2);
        let err = run_with_failures(&inst, &p, &r, &mut d, &[fail(0, 2.0)]).unwrap_err();
        assert!(matches!(err, Error::InvalidParameter { what } if what.contains("stranded")));
    }

    #[test]
    fn failure_after_completion_is_harmless() {
        let inst = Instance::from_estimates(&[2.0], 2).unwrap();
        let p = Placement::everywhere(&inst);
        let r = Realization::exact(&inst);
        let res = run_with_failures(
            &inst,
            &p,
            &r,
            &mut OrderedDispatcher::fifo(&inst),
            &[fail(0, 3.0)],
        )
        .unwrap();
        assert_eq!(res.restarts, 0);
        assert_eq!(res.makespan, Time::of(2.0));
    }

    #[test]
    fn dead_machine_takes_no_new_work() {
        // Machine 0 fails at t=0 (before anything): all work flows to m1.
        let inst = Instance::from_estimates(&[1.0, 1.0, 1.0], 2).unwrap();
        let p = Placement::everywhere(&inst);
        let r = Realization::exact(&inst);
        let res = run_with_failures(
            &inst,
            &p,
            &r,
            &mut OrderedDispatcher::fifo(&inst),
            &[fail(0, 0.0)],
        )
        .unwrap();
        assert!(res.schedule.slots(MachineId::new(0)).is_empty());
        assert_eq!(res.makespan, Time::of(3.0));
    }

    #[test]
    fn cascading_failures_with_enough_replicas() {
        // 3 machines, everywhere placement; two failures in sequence.
        let inst = Instance::from_estimates(&[6.0, 1.0, 1.0], 3).unwrap();
        let p = Placement::everywhere(&inst);
        let r = Realization::exact(&inst);
        let res = run_with_failures(
            &inst,
            &p,
            &r,
            &mut OrderedDispatcher::lpt_by_estimate(&inst),
            &[fail(0, 1.0), fail(1, 2.0)],
        )
        .unwrap();
        // The big task (started on m0) restarts somewhere at t=1; if that
        // was m1 it restarts again at t=2 on m2. Everything completes.
        assert!(res.restarts >= 1);
        assert!(res.makespan >= Time::of(7.0));
        res.schedule.validate(&inst, &r).unwrap();
    }

    #[test]
    fn group_placement_survives_in_group_failure() {
        // Groups of 2: a failure inside a group leaves a surviving holder.
        let inst = Instance::from_estimates(&[2.0, 2.0, 2.0, 2.0], 4).unwrap();
        let sets = vec![
            rds_core::MachineSet::Span { start: 0, end: 2 },
            rds_core::MachineSet::Span { start: 0, end: 2 },
            rds_core::MachineSet::Span { start: 2, end: 4 },
            rds_core::MachineSet::Span { start: 2, end: 4 },
        ];
        let p = Placement::new(&inst, sets).unwrap();
        let r = Realization::exact(&inst);
        let res = run_with_failures(
            &inst,
            &p,
            &r,
            &mut OrderedDispatcher::fifo(&inst),
            &[fail(0, 1.0)],
        )
        .unwrap();
        assert_eq!(res.restarts, 1);
        res.schedule.validate(&inst, &r).unwrap();
        // All four tasks completed despite the failure.
        let total: usize = res.schedule.all_slots().iter().map(|s| s.len()).sum();
        assert_eq!(total, 4);
    }
}
