//! The resilience engine: scripted faults, recovery, speculative
//! re-execution, and graceful degradation.
//!
//! This generalizes the single-shot crash model of [`crate::failures`]
//! into a full fault taxonomy:
//!
//! - **Crash** — the machine is gone permanently; its in-flight attempt
//!   is lost and the task requeues on another data-holding machine.
//! - **Outage** — the machine is down for a window, then *rejoins* empty-
//!   handed and may be re-dispatched (crash-and-restart à la Zavou &
//!   Fernández Anta: all in-progress work at the crash point is lost).
//! - **Slowdown** — a degraded-speed phase: the machine keeps running but
//!   processes work at `speed < 1` for a while. Completion events are
//!   re-projected from the remaining work.
//! - **Straggler** — an estimate violation: one task's actual time is
//!   multiplied past the `α` envelope (`p_j > α·p̃_j`), deliberately
//!   breaking the model assumption the dispatcher relies on.
//!
//! On top of the fault script sit two mechanisms replication enables:
//!
//! - **Speculative re-execution** ([`Speculation`]): when an attempt has
//!   been running longer than `β·α·p̃_j` wall-clock, a backup attempt is
//!   requested on another data-holding machine. The first finisher wins;
//!   the losers are cancelled and their progress is counted as wasted
//!   work. Backups only consume *spare* capacity: an idle machine serves
//!   pending fresh tasks first and backups only when its dispatcher has
//!   nothing else for it.
//! - **Graceful degradation**: a stranded task (every holder dead) no
//!   longer aborts the run. The engine drains every event and reports an
//!   [`Outcome`] — `Completed`, or `Partial` with the unfinished set —
//!   plus [`ResilienceMetrics`].
//!
//! # Event-ordering tie-breaks
//!
//! At equal timestamps events process in kind order *fault (0) →
//! recovery (1) → idle/completion (2) → speculation check (3)*:
//!
//! - A failure at exactly a task's completion instant **kills the
//!   attempt** (conservative: the machine is gone first). This is the
//!   `KIND_FAULT < KIND_IDLE` tie-break, pinned by
//!   `failure_at_exact_completion_instant_kills_the_attempt`.
//! - A machine rejoining at time `t` participates in dispatch at `t`.
//! - A completion at exactly the speculation threshold does *not* launch
//!   a useless backup (completion processes first).

use crate::arena::SimArena;
use crate::dispatcher::{Dispatcher, HotTask, SimView};
use crate::trace::{Trace, TraceEvent};
use rds_core::{
    Error, Instance, MachineId, Placement, Realization, Result, Schedule, Slot, TaskId, Time,
    Uncertainty,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// One scripted fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// Permanent machine failure at `at`.
    Crash {
        /// The machine that fails.
        machine: MachineId,
        /// When it fails.
        at: Time,
    },
    /// Transient outage: down at `at`, rejoining (empty-handed, at full
    /// speed) `down_for` later.
    Outage {
        /// The machine that goes down.
        machine: MachineId,
        /// When the outage starts.
        at: Time,
        /// Length of the outage window.
        down_for: Time,
    },
    /// Degraded-speed phase: from `at` for `lasting`, the machine
    /// processes work at `speed` (fraction of nominal; `0 < speed`).
    /// Afterwards it returns to nominal speed.
    Slowdown {
        /// The degraded machine.
        machine: MachineId,
        /// When degradation starts.
        at: Time,
        /// Length of the degraded phase.
        lasting: Time,
        /// Processing-speed fraction during the phase.
        speed: f64,
    },
    /// Estimate violation: the task's actual processing time is
    /// multiplied by `factor` at execution, typically pushing it beyond
    /// the `α` envelope the realization was validated against. This is a
    /// deliberate model violation — the knob for "the estimate was just
    /// wrong".
    Straggler {
        /// The violated task.
        task: TaskId,
        /// Multiplier on the task's actual time (`> 0`).
        factor: f64,
    },
}

/// A validated collection of scripted faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultScript {
    events: Vec<FaultEvent>,
}

impl FaultScript {
    /// Wraps a list of fault events.
    pub fn new(events: Vec<FaultEvent>) -> Self {
        FaultScript { events }
    }

    /// The empty (fault-free) script.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Bridges the legacy crash-only API.
    pub fn from_failures(failures: &[crate::failures::Failure]) -> Self {
        FaultScript {
            events: failures
                .iter()
                .map(|f| FaultEvent::Crash {
                    machine: f.machine,
                    at: f.at,
                })
                .collect(),
        }
    }

    /// The scripted events, in script order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// `true` when no fault is scripted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scripted events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the script can legitimately stretch slot durations
    /// beyond the realized times (slowdowns run work at reduced speed,
    /// stragglers multiply actual times), so duration-honesty checks do
    /// not apply to the resulting schedule.
    pub fn stretches_time(&self) -> bool {
        self.events.iter().any(|ev| {
            matches!(
                ev,
                FaultEvent::Slowdown { .. } | FaultEvent::Straggler { .. }
            )
        })
    }

    /// Checks machine/task indices and parameter domains against an
    /// instance.
    ///
    /// # Errors
    /// [`Error::MachineOutOfRange`] / [`Error::TaskOutOfRange`] for bad
    /// indices, [`Error::InvalidParameter`] for non-positive speeds or
    /// factors.
    pub fn validate(&self, instance: &Instance) -> Result<()> {
        let (n, m) = (instance.n(), instance.m());
        for ev in &self.events {
            match *ev {
                FaultEvent::Crash { machine, .. } | FaultEvent::Outage { machine, .. } => {
                    if machine.index() >= m {
                        return Err(Error::MachineOutOfRange {
                            machine: machine.index(),
                            m,
                        });
                    }
                }
                FaultEvent::Slowdown { machine, speed, .. } => {
                    if machine.index() >= m {
                        return Err(Error::MachineOutOfRange {
                            machine: machine.index(),
                            m,
                        });
                    }
                    if !(speed > 0.0 && speed.is_finite()) {
                        return Err(Error::InvalidParameter {
                            what: "slowdown speed must be positive and finite",
                        });
                    }
                }
                FaultEvent::Straggler { task, factor } => {
                    if task.index() >= n {
                        return Err(Error::TaskOutOfRange {
                            task: task.index(),
                            n,
                        });
                    }
                    if !(factor > 0.0 && factor.is_finite()) {
                        return Err(Error::InvalidParameter {
                            what: "straggler factor must be positive and finite",
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

/// Speculative re-execution policy: request a backup attempt once a
/// task's attempt has run `β·α·p̃_j` of wall-clock time without
/// completing.
///
/// Under the model's guarantee an attempt finishes within `α·p̃_j`, so
/// with `β ≥ 1` a backup is triggered only by genuine anomalies
/// (slowdowns, stragglers); a fault-free envelope-respecting run is
/// provably unchanged by speculation. At most one backup is launched per
/// task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Speculation {
    /// Patience multiplier `β` applied on top of the envelope bound.
    pub beta: f64,
    /// The uncertainty level `α` of the envelope.
    pub alpha: f64,
}

impl Speculation {
    /// Policy with patience `beta` over the `uncertainty` envelope.
    ///
    /// # Panics
    /// Panics when `beta` is not positive and finite.
    pub fn new(beta: f64, uncertainty: Uncertainty) -> Self {
        assert!(beta > 0.0 && beta.is_finite(), "beta must be positive");
        Speculation {
            beta,
            alpha: uncertainty.alpha(),
        }
    }

    /// Wall-clock patience for a task with the given estimate.
    pub fn threshold(&self, estimate: Time) -> Time {
        estimate * (self.beta * self.alpha)
    }
}

/// Terminal state of a resilient run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Every task completed.
    Completed,
    /// Some tasks could not complete (stranded or refused); the run
    /// finished gracefully with partial results.
    Partial {
        /// The unfinished tasks, in id order.
        unfinished: Vec<TaskId>,
    },
}

impl Outcome {
    /// `true` when every task completed.
    pub fn is_completed(&self) -> bool {
        matches!(self, Outcome::Completed)
    }

    /// Number of unfinished tasks (0 when completed).
    pub fn unfinished_count(&self) -> usize {
        match self {
            Outcome::Completed => 0,
            Outcome::Partial { unfinished } => unfinished.len(),
        }
    }
}

/// Quantitative summary of a resilient run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceMetrics {
    /// Total task count.
    pub n: usize,
    /// Tasks that completed.
    pub completed: usize,
    /// Attempts killed by machine failures whose task returned to the
    /// pending set (the legacy `restarts` notion).
    pub restarts: usize,
    /// Machines that rejoined after a transient outage.
    pub rejoins: usize,
    /// Degraded-speed phases applied.
    pub degraded_phases: usize,
    /// Speculative backup attempts launched.
    pub speculative_started: usize,
    /// Tasks won by a speculative backup.
    pub speculative_wins: usize,
    /// Attempts cancelled because a sibling finished first.
    pub cancelled: usize,
    /// Work units spent on attempts that did not complete (killed or
    /// cancelled) — the price of faults plus the price of speculation.
    pub wasted_work: Time,
    /// Recovery-cost weight accumulated over machine-down events
    /// (crashes and outage starts), charged from the engine's
    /// per-machine weights ([`ResilienceEngine::with_recovery_costs`]).
    /// With the default unit weights this counts down events.
    pub recovery_cost: f64,
    /// Completion time of the last finished task (zero when nothing
    /// finished).
    pub makespan: Time,
    /// Makespan of the fault-free reference run, when the caller
    /// provided one (see [`ResilienceReport::set_baseline`]).
    pub fault_free_makespan: Option<Time>,
}

impl ResilienceMetrics {
    /// Fraction of tasks that completed (`1.0` for an empty instance).
    pub fn survival_rate(&self) -> f64 {
        if self.n == 0 {
            1.0
        } else {
            self.completed as f64 / self.n as f64
        }
    }

    /// Makespan degradation versus the fault-free baseline
    /// (`makespan / fault_free_makespan`), when a baseline is known.
    pub fn degradation(&self) -> Option<f64> {
        self.fault_free_makespan
            .map(|base| self.makespan.ratio(base).unwrap_or(1.0))
    }
}

/// Everything a resilient run produced.
#[derive(Debug, Clone)]
pub struct ResilienceReport {
    /// Completed / partial.
    pub outcome: Outcome,
    /// Completed work only (lost and cancelled attempts are not slots).
    /// Under slowdowns/stragglers a slot's duration may exceed the
    /// realization's actual time, so this schedule is not expected to
    /// pass `Schedule::validate`.
    pub schedule: Schedule,
    /// Chronological trace including fault, recovery, speculation, and
    /// cancellation events.
    pub trace: Trace,
    /// Quantitative summary.
    pub metrics: ResilienceMetrics,
}

impl ResilienceReport {
    /// Records the fault-free reference makespan (enables
    /// [`ResilienceMetrics::degradation`]).
    pub fn set_baseline(&mut self, fault_free_makespan: Time) {
        self.metrics.fault_free_makespan = Some(fault_free_makespan);
    }
}

/// Event kinds, ordered so that at equal times: faults kill first,
/// recoveries rejoin next, completions/dispatches process third, and
/// speculation checks observe the post-completion state last.
const KIND_FAULT: u8 = 0;
const KIND_RECOVERY: u8 = 1;
const KIND_IDLE: u8 = 2;
const KIND_SPEC: u8 = 3;

/// Recovery-event payloads (`data` field).
const RECOVER_REJOIN: u64 = 0;
const RECOVER_SPEED: u64 = 1;

/// A running attempt of a task on a machine.
#[derive(Debug, Clone, Copy)]
struct Attempt {
    id: u64,
    task: TaskId,
    start: Time,
    /// Work units this attempt must process (actual × straggler factor).
    total: Time,
    /// Work units processed so far.
    done: Time,
    /// Wall-clock instant `done` was last advanced to.
    last: Time,
    speculative: bool,
}

impl Attempt {
    /// Advances processed work to wall-clock `now` at `speed`.
    fn advance(&mut self, now: Time, speed: f64) {
        self.done += (now - self.last) * speed;
        self.last = now;
    }

    /// Completion instant projected from the remaining work at `speed`.
    fn projected_end(&self, speed: f64) -> Time {
        self.last + self.total.saturating_sub(self.done) / speed
    }
}

#[derive(Debug)]
struct MachineState {
    alive: bool,
    /// Permanently crashed (suppresses a pending rejoin).
    crashed: bool,
    speed: f64,
    /// Parked: idle with no eligible work; woken on requeues/backups.
    parked: bool,
    attempt: Option<Attempt>,
    /// Invalidates queued completion events after any state change.
    epoch: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum TaskState {
    Pending,
    Running { attempts: usize },
    Done,
}

/// The resilience engine: one (instance, placement, realization, fault
/// script) execution context.
#[derive(Debug)]
pub struct ResilienceEngine<'a> {
    instance: &'a Instance,
    placement: &'a Placement,
    realization: &'a Realization,
    script: &'a FaultScript,
    speculation: Option<Speculation>,
    recovery_costs: Option<Vec<f64>>,
}

impl<'a> ResilienceEngine<'a> {
    /// Creates an engine.
    ///
    /// # Errors
    /// [`Error::TaskCountMismatch`] when the pieces disagree on the task
    /// count; the script's validation errors for out-of-range faults.
    pub fn new(
        instance: &'a Instance,
        placement: &'a Placement,
        realization: &'a Realization,
        script: &'a FaultScript,
    ) -> Result<Self> {
        // Name the component that actually disagreed: `min()` of the two
        // counts could report the *matching* one on a one-sided mismatch.
        if placement.n() != instance.n() {
            return Err(Error::TaskCountMismatch {
                what: "placement",
                expected: instance.n(),
                got: placement.n(),
            });
        }
        if realization.n() != instance.n() {
            return Err(Error::TaskCountMismatch {
                what: "realization",
                expected: instance.n(),
                got: realization.n(),
            });
        }
        script.validate(instance)?;
        Ok(ResilienceEngine {
            instance,
            placement,
            realization,
            script,
            speculation: None,
            recovery_costs: None,
        })
    }

    /// Enables speculative re-execution.
    pub fn with_speculation(mut self, speculation: Speculation) -> Self {
        self.speculation = Some(speculation);
        self
    }

    /// Sets per-machine recovery-cost weights, charged to
    /// [`ResilienceMetrics::recovery_cost`] each time the machine goes
    /// down. The weight convention matches
    /// [`rds_core::ReliabilityModel::with_recovery_costs`], so a model's
    /// weights can be passed straight through.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] on length mismatch or a non-finite
    /// or negative weight.
    pub fn with_recovery_costs(mut self, costs: Vec<f64>) -> Result<Self> {
        if costs.len() != self.instance.m() {
            return Err(Error::InvalidParameter {
                what: "recovery costs must cover every machine",
            });
        }
        if costs.iter().any(|&c| !c.is_finite() || c < 0.0) {
            return Err(Error::InvalidParameter {
                what: "recovery cost must be finite and >= 0",
            });
        }
        self.recovery_costs = Some(costs);
        Ok(self)
    }

    /// Runs the execution to quiescence under `dispatcher`.
    ///
    /// Never errors on stranded tasks — they surface as a partial
    /// [`Outcome`].
    ///
    /// # Errors
    /// Only dispatcher-misbehaviour errors (out-of-range, ineligible, or
    /// already-started picks).
    pub fn run(&self, dispatcher: &mut dyn Dispatcher) -> Result<ResilienceReport> {
        let mut scratch = FaultScratch::default();
        Run::new(self, dispatcher, &mut scratch).execute()
    }

    /// Runs the execution to quiescence under `dispatcher`, reusing the
    /// arena's fault scratch across trials.
    ///
    /// Same semantics as [`Self::run`] — the report still owns its
    /// schedule and trace — but the event heap, per-task / per-machine
    /// state vectors, and the dispatcher's pending snapshot are borrowed
    /// from `arena` and returned to it when the run finishes, so a
    /// steady-state campaign (same instance shape trial after trial)
    /// rebuilds none of them.
    ///
    /// # Errors
    /// Same as [`Self::run`].
    pub fn run_in(
        &self,
        arena: &mut SimArena,
        dispatcher: &mut dyn Dispatcher,
    ) -> Result<ResilienceReport> {
        Run::new(self, dispatcher, &mut arena.fault_scratch).execute()
    }
}

/// Reusable buffers for the resilience engine, owned by [`SimArena`].
///
/// A faulty trial needs an event heap seeded with `m` idle events plus
/// one entry per scripted fault, per-task and per-machine state vectors,
/// straggler multipliers, and a pending snapshot per dispatch call.
/// [`ResilienceEngine::run`] builds all of that from scratch;
/// [`ResilienceEngine::run_in`] takes the buffers out of this scratch at
/// run start and puts them back (storage intact) at run end, so repeated
/// same-shape trials allocate only the report's own schedule and trace.
#[derive(Debug, Default)]
pub struct FaultScratch {
    queue: BinaryHeap<Reverse<(Time, u8, usize, u64)>>,
    machines: Vec<MachineState>,
    tasks: Vec<TaskState>,
    straggle: Vec<f64>,
    spec_queue: VecDeque<TaskId>,
    spec_launched: Vec<bool>,
    recovery_costs: Vec<f64>,
    pending: Vec<HotTask>,
}

/// Per-run mutable state, split out of the engine for borrow hygiene.
struct Run<'a, 'b> {
    engine: &'a ResilienceEngine<'a>,
    dispatcher: &'b mut dyn Dispatcher,
    machines: Vec<MachineState>,
    tasks: Vec<TaskState>,
    /// Straggler multiplier per task (product of scripted factors).
    straggle: Vec<f64>,
    /// Tasks with a requested-but-unplaced speculative backup.
    spec_queue: VecDeque<TaskId>,
    spec_launched: Vec<bool>,
    /// (time, kind, index, data): index is a fault index for
    /// `KIND_FAULT`, else a machine index; data is an epoch for
    /// `KIND_IDLE`, an attempt id for `KIND_SPEC`, a recovery tag for
    /// `KIND_RECOVERY`.
    queue: BinaryHeap<Reverse<(Time, u8, usize, u64)>>,
    slots: Vec<Vec<Slot>>,
    trace: Trace,
    metrics: ResilienceMetrics,
    remaining: usize,
    next_attempt_id: u64,
    /// Per-machine down-event weights (unit when the engine set none).
    recovery_costs: Vec<f64>,
    /// Pending snapshot handed to the dispatcher, reused across calls.
    pending: Vec<HotTask>,
    /// Where the reusable buffers go back when the run finishes.
    scratch: Option<&'b mut FaultScratch>,
    /// Metric handles resolved once at run start (`None` while
    /// instrumentation is disabled, so the hot path pays one branch).
    obs_events: Option<std::sync::Arc<rds_obs::Counter>>,
    obs_dispatch: Option<std::sync::Arc<rds_obs::Counter>>,
}

impl<'a, 'b> Run<'a, 'b> {
    fn new(
        engine: &'a ResilienceEngine<'a>,
        dispatcher: &'b mut dyn Dispatcher,
        scratch: &'b mut FaultScratch,
    ) -> Self {
        let n = engine.instance.n();
        let m = engine.instance.m();
        let mut straggle = std::mem::take(&mut scratch.straggle);
        straggle.clear();
        straggle.resize(n, 1.0);
        let mut queue = std::mem::take(&mut scratch.queue);
        queue.clear();
        for i in 0..m {
            queue.push(Reverse((Time::ZERO, KIND_IDLE, i, 0)));
        }
        for (idx, ev) in engine.script.events().iter().enumerate() {
            match *ev {
                FaultEvent::Crash { at, .. }
                | FaultEvent::Outage { at, .. }
                | FaultEvent::Slowdown { at, .. } => {
                    queue.push(Reverse((at, KIND_FAULT, idx, 0)));
                }
                FaultEvent::Straggler { task, factor } => {
                    straggle[task.index()] *= factor;
                }
            }
        }
        let mut machines = std::mem::take(&mut scratch.machines);
        machines.clear();
        machines.extend((0..m).map(|_| MachineState {
            alive: true,
            crashed: false,
            speed: 1.0,
            parked: false,
            attempt: None,
            epoch: 0,
        }));
        let mut tasks = std::mem::take(&mut scratch.tasks);
        tasks.clear();
        tasks.resize(n, TaskState::Pending);
        let mut spec_queue = std::mem::take(&mut scratch.spec_queue);
        spec_queue.clear();
        let mut spec_launched = std::mem::take(&mut scratch.spec_launched);
        spec_launched.clear();
        spec_launched.resize(n, false);
        let mut recovery_costs = std::mem::take(&mut scratch.recovery_costs);
        recovery_costs.clear();
        match &engine.recovery_costs {
            Some(costs) => recovery_costs.extend_from_slice(costs),
            None => recovery_costs.resize(m, 1.0),
        }
        let mut pending = std::mem::take(&mut scratch.pending);
        pending.clear();
        Run {
            engine,
            dispatcher,
            machines,
            tasks,
            straggle,
            spec_queue,
            spec_launched,
            queue,
            // The report moves these out, so they stay per-run.
            slots: vec![Vec::new(); m],
            trace: Trace::new(),
            metrics: ResilienceMetrics {
                n,
                completed: 0,
                restarts: 0,
                rejoins: 0,
                degraded_phases: 0,
                speculative_started: 0,
                speculative_wins: 0,
                cancelled: 0,
                wasted_work: Time::ZERO,
                recovery_cost: 0.0,
                makespan: Time::ZERO,
                fault_free_makespan: None,
            },
            remaining: n,
            next_attempt_id: 0,
            recovery_costs,
            pending,
            scratch: Some(scratch),
            obs_events: rds_obs::enabled().then(|| rds_obs::global().counter("engine.events")),
            obs_dispatch: rds_obs::enabled().then(|| rds_obs::global().counter("engine.dispatch")),
        }
    }

    /// Returns the reusable buffers to the scratch they came from.
    /// Called once the run is over (the heap is empty and no dispatch
    /// will happen again); storage — not contents — is what survives.
    fn reclaim(&mut self) {
        if let Some(scratch) = self.scratch.take() {
            scratch.queue = std::mem::take(&mut self.queue);
            scratch.machines = std::mem::take(&mut self.machines);
            scratch.tasks = std::mem::take(&mut self.tasks);
            scratch.straggle = std::mem::take(&mut self.straggle);
            scratch.spec_queue = std::mem::take(&mut self.spec_queue);
            scratch.spec_launched = std::mem::take(&mut self.spec_launched);
            scratch.recovery_costs = std::mem::take(&mut self.recovery_costs);
            scratch.pending = std::mem::take(&mut self.pending);
        }
    }

    fn execute(mut self) -> Result<ResilienceReport> {
        let _run_span = rds_obs::span("resilience.run");
        while let Some(Reverse((time, kind, index, data))) = self.queue.pop() {
            if let Some(events) = &self.obs_events {
                events.inc();
            }
            match kind {
                KIND_FAULT => self.on_fault(time, index),
                KIND_RECOVERY => self.on_recovery(time, index, data),
                KIND_IDLE => self.on_idle(time, index, data)?,
                _ => self.on_spec_check(time, index, data),
            }
        }
        let unfinished: Vec<TaskId> = self
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, s)| !matches!(s, TaskState::Done))
            .map(|(j, _)| TaskId::new(j))
            .collect();
        let outcome = if unfinished.is_empty() {
            Outcome::Completed
        } else {
            Outcome::Partial { unfinished }
        };
        let schedule = Schedule::from_slots(std::mem::take(&mut self.slots));
        self.reclaim();
        if crate::validate::enabled() {
            // Even faulty runs must satisfy the structural invariants;
            // completeness only when the run claims it, duration honesty
            // only when the script cannot stretch time. Crashed attempts
            // are not slots, so overlap/placement checks always hold.
            let checks = crate::validate::Checks {
                completeness: matches!(outcome, Outcome::Completed),
                durations: !self.engine.script.stretches_time(),
                ..crate::validate::Checks::structural()
            };
            crate::validate::check_schedule(
                self.engine.instance,
                self.engine.placement,
                self.engine.realization,
                &schedule,
                &checks,
            )?;
        }
        Ok(ResilienceReport {
            outcome,
            schedule,
            trace: self.trace,
            metrics: self.metrics,
        })
    }

    /// Applies scripted fault `index` at `time`.
    fn on_fault(&mut self, time: Time, index: usize) {
        match self.engine.script.events()[index] {
            FaultEvent::Crash { machine, .. } => {
                let mi = machine.index();
                self.machines[mi].crashed = true;
                if self.machines[mi].alive {
                    self.take_down(time, mi);
                }
            }
            FaultEvent::Outage {
                machine, down_for, ..
            } => {
                let mi = machine.index();
                if self.machines[mi].alive {
                    self.take_down(time, mi);
                    self.queue.push(Reverse((
                        time + down_for,
                        KIND_RECOVERY,
                        mi,
                        RECOVER_REJOIN,
                    )));
                }
            }
            FaultEvent::Slowdown {
                machine,
                lasting,
                speed,
                ..
            } => {
                let mi = machine.index();
                if self.machines[mi].alive {
                    self.metrics.degraded_phases += 1;
                    self.set_speed(time, mi, speed);
                    self.trace.push(TraceEvent::Degraded {
                        time,
                        machine,
                        speed,
                    });
                    self.queue
                        .push(Reverse((time + lasting, KIND_RECOVERY, mi, RECOVER_SPEED)));
                }
            }
            FaultEvent::Straggler { .. } => unreachable!("stragglers are not timed events"),
        }
    }

    /// Takes machine `mi` down, killing its in-flight attempt. A failure
    /// arriving at exactly an attempt's completion instant kills the
    /// attempt (fault events order before completion events).
    fn take_down(&mut self, time: Time, mi: usize) {
        let st = &mut self.machines[mi];
        st.alive = false;
        st.parked = false;
        st.epoch += 1;
        let speed = st.speed;
        self.metrics.recovery_cost += self.recovery_costs[mi];
        self.trace.push(TraceEvent::Failure {
            time,
            machine: MachineId::new(mi),
        });
        if let Some(mut att) = st.attempt.take() {
            att.advance(time, speed);
            self.metrics.wasted_work += att.done.min(att.total);
            let j = att.task.index();
            match self.tasks[j] {
                TaskState::Running { attempts } if attempts > 1 => {
                    self.tasks[j] = TaskState::Running {
                        attempts: attempts - 1,
                    };
                }
                TaskState::Running { .. } => {
                    self.tasks[j] = TaskState::Pending;
                    self.metrics.restarts += 1;
                    self.dispatcher.on_requeue(att.task);
                    self.wake_parked(time);
                }
                _ => unreachable!("attempt for a non-running task"),
            }
        }
    }

    /// Handles a rejoin or a speed restoration for machine `index`.
    fn on_recovery(&mut self, time: Time, index: usize, tag: u64) {
        if tag == RECOVER_REJOIN {
            let st = &mut self.machines[index];
            if st.crashed {
                return; // a permanent crash arrived during the outage
            }
            st.alive = true;
            st.speed = 1.0;
            st.parked = false;
            st.epoch += 1;
            self.metrics.rejoins += 1;
            self.trace.push(TraceEvent::Recovery {
                time,
                machine: MachineId::new(index),
            });
            let epoch = self.machines[index].epoch;
            self.queue.push(Reverse((time, KIND_IDLE, index, epoch)));
        } else {
            // End of a degraded phase: restore nominal speed. (An outage
            // in between also restores speed; this is then a no-op.)
            if self.machines[index].alive && self.machines[index].speed != 1.0 {
                self.set_speed(time, index, 1.0);
                self.trace.push(TraceEvent::Degraded {
                    time,
                    machine: MachineId::new(index),
                    speed: 1.0,
                });
            }
        }
    }

    /// Changes machine `mi`'s speed, re-projecting its in-flight
    /// completion from the remaining work.
    fn set_speed(&mut self, time: Time, mi: usize, speed: f64) {
        let st = &mut self.machines[mi];
        let old = st.speed;
        if let Some(att) = st.attempt.as_mut() {
            att.advance(time, old);
            st.speed = speed;
            st.epoch += 1;
            let end = att.projected_end(speed);
            let epoch = st.epoch;
            self.queue.push(Reverse((end, KIND_IDLE, mi, epoch)));
        } else {
            st.speed = speed;
        }
    }

    /// Handles an idle/completion event for machine `index`.
    fn on_idle(&mut self, time: Time, index: usize, epoch: u64) -> Result<()> {
        if epoch != self.machines[index].epoch || !self.machines[index].alive {
            return Ok(()); // stale (attempt/speed changed) or dead
        }
        if let Some(att) = self.machines[index].attempt {
            // A matching-epoch event while an attempt runs is that
            // attempt's (re-)projected completion instant.
            self.complete(time, index, att);
        }
        self.dispatch(time, index)
    }

    /// Completes `att` on machine `index` at `time`.
    fn complete(&mut self, time: Time, index: usize, att: Attempt) {
        let machine = MachineId::new(index);
        let j = att.task.index();
        let st = &mut self.machines[index];
        st.attempt = None;
        st.epoch += 1;
        self.slots[index].push(Slot {
            task: att.task,
            start: att.start,
            end: time,
        });
        let actual = self.engine.realization.actual(att.task);
        self.trace.push(TraceEvent::Complete {
            time,
            task: att.task,
            machine,
            actual,
        });
        self.dispatcher.on_complete(att.task, machine, actual, time);
        self.metrics.completed += 1;
        self.metrics.makespan = self.metrics.makespan.max(time);
        self.remaining -= 1;
        if att.speculative {
            self.metrics.speculative_wins += 1;
        }
        self.tasks[j] = TaskState::Done;
        // First finisher wins: cancel sibling attempts of the same task.
        for w in 0..self.machines.len() {
            let cancel = self.machines[w]
                .attempt
                .map(|a| a.task == att.task)
                .unwrap_or(false);
            if !cancel {
                continue;
            }
            let speed = self.machines[w].speed;
            let mut lost = self.machines[w].attempt.take().expect("checked above");
            lost.advance(time, speed);
            self.machines[w].epoch += 1;
            self.metrics.cancelled += 1;
            self.metrics.wasted_work += lost.done.min(lost.total);
            self.trace.push(TraceEvent::Cancelled {
                time,
                task: lost.task,
                machine: MachineId::new(w),
            });
            // The machine is free now; let it dispatch at this instant.
            let epoch = self.machines[w].epoch;
            self.queue.push(Reverse((time, KIND_IDLE, w, epoch)));
        }
    }

    /// Offers work to idle machine `index`: the dispatcher's pick first,
    /// a queued speculative backup second, else park.
    fn dispatch(&mut self, time: Time, index: usize) -> Result<()> {
        if self.remaining == 0 {
            return Ok(());
        }
        let machine = MachineId::new(index);
        let n = self.engine.instance.n();
        self.pending.clear();
        self.pending.extend(
            self.tasks
                .iter()
                .map(|s| HotTask::pending_only(matches!(s, TaskState::Pending))),
        );
        if let Some(dispatch) = &self.obs_dispatch {
            dispatch.inc();
        }
        let choice = {
            let _dispatch_span = rds_obs::span("engine.dispatch");
            let view = SimView {
                instance: self.engine.instance,
                placement: self.engine.placement,
                tasks: &self.pending,
                by_slot: false,
            };
            self.dispatcher.next_task(machine, time, &view)
        };
        match choice {
            Some(task) => {
                if task.index() >= n {
                    return Err(Error::TaskOutOfRange {
                        task: task.index(),
                        n,
                    });
                }
                if !self.pending[task.index()].is_pending() {
                    return Err(Error::InvalidParameter {
                        what: "dispatcher returned an already-started task",
                    });
                }
                if !self.engine.placement.allows(task, machine) {
                    return Err(Error::InfeasibleAssignment {
                        task: task.index(),
                        machine: index,
                    });
                }
                self.start_attempt(time, index, task, false);
            }
            None => {
                if let Some(task) = self.pop_backup_for(machine) {
                    self.start_attempt(time, index, task, true);
                } else if !self.machines[index].parked {
                    self.machines[index].parked = true;
                    self.trace.push(TraceEvent::Starved { time, machine });
                }
            }
        }
        Ok(())
    }

    /// Pops the first queued backup this machine can host, dropping
    /// entries that became stale (task completed or requeued) meanwhile.
    fn pop_backup_for(&mut self, machine: MachineId) -> Option<TaskId> {
        let tasks = &self.tasks;
        self.spec_queue
            .retain(|&t| matches!(tasks[t.index()], TaskState::Running { .. }));
        let pos = self
            .spec_queue
            .iter()
            .position(|&t| self.engine.placement.allows(t, machine))?;
        self.spec_queue.remove(pos)
    }

    /// Starts an attempt of `task` on machine `index`.
    fn start_attempt(&mut self, time: Time, index: usize, task: TaskId, speculative: bool) {
        let machine = MachineId::new(index);
        let j = task.index();
        self.tasks[j] = match (self.tasks[j], speculative) {
            (TaskState::Pending, false) => TaskState::Running { attempts: 1 },
            (TaskState::Running { attempts }, true) => TaskState::Running {
                attempts: attempts + 1,
            },
            _ => unreachable!("invalid start"),
        };
        let total = self.engine.realization.actual(task) * self.straggle[j];
        let id = self.next_attempt_id;
        self.next_attempt_id += 1;
        let att = Attempt {
            id,
            task,
            start: time,
            total,
            done: Time::ZERO,
            last: time,
            speculative,
        };
        let st = &mut self.machines[index];
        st.parked = false;
        st.epoch += 1;
        let end = att.projected_end(st.speed);
        let epoch = st.epoch;
        st.attempt = Some(att);
        self.queue.push(Reverse((end, KIND_IDLE, index, epoch)));
        if speculative {
            self.metrics.speculative_started += 1;
            self.trace.push(TraceEvent::SpeculativeStart {
                time,
                task,
                machine,
            });
        } else {
            self.trace.push(TraceEvent::Start {
                time,
                task,
                machine,
            });
            if let Some(spec) = self.engine.speculation {
                let check = time + spec.threshold(self.engine.instance.estimate(task));
                self.queue.push(Reverse((check, KIND_SPEC, index, id)));
            }
        }
    }

    /// Handles a speculation check: if the watched attempt is still
    /// running, request one backup on another data-holding machine.
    fn on_spec_check(&mut self, time: Time, index: usize, attempt_id: u64) {
        let att = match self.machines[index].attempt {
            Some(a) if a.id == attempt_id => a,
            _ => return, // attempt finished or was killed — stale check
        };
        let j = att.task.index();
        if self.spec_launched[j] {
            return;
        }
        self.spec_launched[j] = true;
        // Prefer an immediately-idle host; otherwise queue the request
        // and wake parked machines so one can claim it.
        let host = (0..self.machines.len()).find(|&w| {
            w != index
                && self.machines[w].alive
                && self.machines[w].attempt.is_none()
                && self.engine.placement.allows(att.task, MachineId::new(w))
        });
        match host {
            Some(w) => self.start_attempt(time, w, att.task, true),
            None => {
                self.spec_queue.push_back(att.task);
                self.wake_parked(time);
            }
        }
    }

    /// Wakes every parked living machine at `time` (new work appeared).
    fn wake_parked(&mut self, time: Time) {
        for w in 0..self.machines.len() {
            if self.machines[w].alive && self.machines[w].parked {
                self.machines[w].parked = false;
                let epoch = self.machines[w].epoch;
                self.queue.push(Reverse((time, KIND_IDLE, w, epoch)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatcher::{OrderedDispatcher, PinnedDispatcher};
    use rds_core::Uncertainty;

    fn run_fifo(
        inst: &Instance,
        p: &Placement,
        r: &Realization,
        script: &FaultScript,
        spec: Option<Speculation>,
    ) -> ResilienceReport {
        let mut engine = ResilienceEngine::new(inst, p, r, script).unwrap();
        if let Some(s) = spec {
            engine = engine.with_speculation(s);
        }
        engine.run(&mut OrderedDispatcher::fifo(inst)).unwrap()
    }

    #[test]
    fn one_sided_mismatch_names_the_culprit_component() {
        let inst = Instance::from_estimates(&[1.0, 2.0], 2).unwrap();
        let shorter = Instance::from_estimates(&[1.0], 2).unwrap();
        let script = FaultScript::new(vec![]);

        // Placement disagrees, realization matches.
        let p = Placement::everywhere(&shorter);
        let r = Realization::exact(&inst);
        assert_eq!(
            ResilienceEngine::new(&inst, &p, &r, &script).unwrap_err(),
            Error::TaskCountMismatch {
                what: "placement",
                expected: 2,
                got: 1,
            }
        );

        // Realization disagrees, placement matches.
        let p = Placement::everywhere(&inst);
        let r = Realization::exact(&shorter);
        assert_eq!(
            ResilienceEngine::new(&inst, &p, &r, &script).unwrap_err(),
            Error::TaskCountMismatch {
                what: "realization",
                expected: 2,
                got: 1,
            }
        );
    }

    #[test]
    fn outage_machine_rejoins_and_takes_work() {
        let inst = Instance::from_estimates(&[4.0, 1.0, 1.0, 1.0], 2).unwrap();
        let p = Placement::everywhere(&inst);
        let r = Realization::exact(&inst);
        let script = FaultScript::new(vec![FaultEvent::Outage {
            machine: MachineId::new(0),
            at: Time::of(0.5),
            down_for: Time::of(1.5),
        }]);
        let rep = run_fifo(&inst, &p, &r, &script, None);
        // t0 lost on m0 at 0.5 (0.5 work wasted), restarted on m1 at 1.0
        // (after t1), done at 5.0; m0 rejoins at 2.0 and clears t2, t3.
        assert!(rep.outcome.is_completed());
        assert_eq!(rep.metrics.restarts, 1);
        assert_eq!(rep.metrics.rejoins, 1);
        assert_eq!(rep.metrics.makespan, Time::of(5.0));
        assert_eq!(rep.metrics.wasted_work, Time::of(0.5));
        assert!(!rep.schedule.slots(MachineId::new(0)).is_empty());
    }

    #[test]
    fn slowdown_stretches_the_affected_attempt() {
        let inst = Instance::from_estimates(&[2.0], 1).unwrap();
        let p = Placement::everywhere(&inst);
        let r = Realization::exact(&inst);
        let script = FaultScript::new(vec![FaultEvent::Slowdown {
            machine: MachineId::new(0),
            at: Time::of(1.0),
            lasting: Time::of(10.0),
            speed: 0.5,
        }]);
        let rep = run_fifo(&inst, &p, &r, &script, None);
        // 1 unit at full speed, the remaining 1 unit at half speed: 3.0.
        assert!(rep.outcome.is_completed());
        assert_eq!(rep.metrics.degraded_phases, 1);
        assert_eq!(rep.metrics.makespan, Time::of(3.0));
        assert!(rep
            .trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::Degraded { speed, .. } if *speed == 0.5)));
    }

    #[test]
    fn speculation_rescues_a_crawling_machine() {
        let inst = Instance::from_estimates(&[2.0, 1.0], 2).unwrap();
        let p = Placement::everywhere(&inst);
        let r = Realization::exact(&inst);
        let script = FaultScript::new(vec![FaultEvent::Slowdown {
            machine: MachineId::new(0),
            at: Time::ZERO,
            lasting: Time::of(100.0),
            speed: 0.1,
        }]);
        let spec = Speculation::new(1.0, Uncertainty::CERTAIN);
        let rep = run_fifo(&inst, &p, &r, &script, Some(spec));
        // Primary on m0 would finish at 20; the backup launched on m1 at
        // the β·α·p̃ = 2.0 mark finishes at 4.0 and wins.
        assert!(rep.outcome.is_completed());
        assert_eq!(rep.metrics.speculative_started, 1);
        assert_eq!(rep.metrics.speculative_wins, 1);
        assert_eq!(rep.metrics.cancelled, 1);
        assert_eq!(rep.metrics.makespan, Time::of(4.0));
        // The cancelled primary crawled 4.0 × 0.1 = 0.4 units for nothing.
        assert!((rep.metrics.wasted_work.get() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn straggler_runs_long_but_primary_still_wins() {
        let inst = Instance::from_estimates(&[2.0, 1.0], 2).unwrap();
        let p = Placement::everywhere(&inst);
        let r = Realization::exact(&inst);
        let script = FaultScript::new(vec![FaultEvent::Straggler {
            task: TaskId::new(0),
            factor: 3.0,
        }]);
        let spec = Speculation::new(1.0, Uncertainty::CERTAIN);
        let rep = run_fifo(&inst, &p, &r, &script, Some(spec));
        // The straggling task takes 6.0 wherever it runs; the backup
        // (launched at 2.0) loses to the primary (6.0 < 8.0).
        assert!(rep.outcome.is_completed());
        assert_eq!(rep.metrics.speculative_started, 1);
        assert_eq!(rep.metrics.speculative_wins, 0);
        assert_eq!(rep.metrics.cancelled, 1);
        assert_eq!(rep.metrics.makespan, Time::of(6.0));
        assert_eq!(rep.metrics.wasted_work, Time::of(4.0));
    }

    #[test]
    fn zero_faults_with_speculation_matches_plain_engine_exactly() {
        let inst = Instance::from_estimates(&[3.0, 3.0, 2.0, 1.0], 2).unwrap();
        let p = Placement::everywhere(&inst);
        let unc = Uncertainty::of(2.0);
        let r = Realization::from_factors(&inst, unc, &[2.0, 0.5, 1.0, 1.0]).unwrap();
        let plain = crate::engine::Engine::new(&inst, &p, &r)
            .unwrap()
            .run(&mut OrderedDispatcher::fifo(&inst))
            .unwrap();
        let script = FaultScript::empty();
        let spec = Speculation::new(1.0, unc);
        let rep = run_fifo(&inst, &p, &r, &script, Some(spec));
        // Within the envelope no speculation check can fire before its
        // completion, so the runs are bit-identical.
        assert!(rep.outcome.is_completed());
        assert_eq!(rep.metrics.makespan, plain.makespan);
        assert_eq!(rep.metrics.speculative_started, 0);
        assert_eq!(rep.metrics.wasted_work, Time::ZERO);
    }

    #[test]
    fn stranded_task_yields_partial_outcome_not_error() {
        let inst = Instance::from_estimates(&[4.0, 1.0], 2).unwrap();
        let p = Placement::pinned(&inst, &[MachineId::new(0), MachineId::new(1)]).unwrap();
        let r = Realization::exact(&inst);
        let script = FaultScript::new(vec![FaultEvent::Crash {
            machine: MachineId::new(0),
            at: Time::of(2.0),
        }]);
        let mut d = PinnedDispatcher::new(&[MachineId::new(0), MachineId::new(1)], 2);
        let mut rep = ResilienceEngine::new(&inst, &p, &r, &script)
            .unwrap()
            .run(&mut d)
            .unwrap();
        assert_eq!(
            rep.outcome,
            Outcome::Partial {
                unfinished: vec![TaskId::new(0)]
            }
        );
        assert_eq!(rep.metrics.completed, 1);
        assert_eq!(rep.metrics.restarts, 1);
        assert!((rep.metrics.survival_rate() - 0.5).abs() < 1e-12);
        assert_eq!(rep.metrics.makespan, Time::of(1.0));
        rep.set_baseline(Time::of(4.0));
        assert_eq!(rep.metrics.degradation(), Some(0.25));
    }

    #[test]
    fn crash_during_outage_suppresses_the_rejoin() {
        let inst = Instance::from_estimates(&[1.0, 1.0, 1.0, 1.0], 2).unwrap();
        let p = Placement::everywhere(&inst);
        let r = Realization::exact(&inst);
        let script = FaultScript::new(vec![
            FaultEvent::Outage {
                machine: MachineId::new(0),
                at: Time::ZERO,
                down_for: Time::of(2.0),
            },
            FaultEvent::Crash {
                machine: MachineId::new(0),
                at: Time::of(1.0),
            },
        ]);
        let rep = run_fifo(&inst, &p, &r, &script, None);
        assert!(rep.outcome.is_completed());
        assert_eq!(rep.metrics.rejoins, 0);
        assert!(rep.schedule.slots(MachineId::new(0)).is_empty());
        assert_eq!(rep.metrics.makespan, Time::of(4.0));
    }

    #[test]
    fn recovery_cost_charges_weighted_down_events() {
        let inst = Instance::from_estimates(&[1.0, 1.0, 1.0, 1.0], 2).unwrap();
        let p = Placement::everywhere(&inst);
        let r = Realization::exact(&inst);
        let script = FaultScript::new(vec![
            FaultEvent::Outage {
                machine: MachineId::new(0),
                at: Time::of(0.5),
                down_for: Time::of(1.0),
            },
            FaultEvent::Crash {
                machine: MachineId::new(1),
                at: Time::of(1.5),
            },
        ]);
        // Default unit weights: two down events.
        let rep = run_fifo(&inst, &p, &r, &script, None);
        assert_eq!(rep.metrics.recovery_cost, 2.0);
        // Weighted: machine 1's loss is 5x as expensive to re-stage.
        let rep = ResilienceEngine::new(&inst, &p, &r, &script)
            .unwrap()
            .with_recovery_costs(vec![0.5, 5.0])
            .unwrap()
            .run(&mut OrderedDispatcher::fifo(&inst))
            .unwrap();
        assert_eq!(rep.metrics.recovery_cost, 5.5);
        // Fault-free runs charge nothing.
        let rep = run_fifo(&inst, &p, &r, &FaultScript::empty(), None);
        assert_eq!(rep.metrics.recovery_cost, 0.0);
    }

    #[test]
    fn recovery_cost_weights_are_validated() {
        let inst = Instance::from_estimates(&[1.0], 2).unwrap();
        let p = Placement::everywhere(&inst);
        let r = Realization::exact(&inst);
        let script = FaultScript::empty();
        let e = ResilienceEngine::new(&inst, &p, &r, &script).unwrap();
        assert!(e.with_recovery_costs(vec![1.0]).is_err());
        let e = ResilienceEngine::new(&inst, &p, &r, &script).unwrap();
        assert!(e.with_recovery_costs(vec![1.0, -2.0]).is_err());
    }

    #[test]
    fn script_validation_rejects_bad_parameters() {
        let inst = Instance::from_estimates(&[1.0], 1).unwrap();
        let p = Placement::everywhere(&inst);
        let r = Realization::exact(&inst);
        let bad_machine = FaultScript::new(vec![FaultEvent::Crash {
            machine: MachineId::new(9),
            at: Time::ZERO,
        }]);
        assert!(ResilienceEngine::new(&inst, &p, &r, &bad_machine).is_err());
        let bad_speed = FaultScript::new(vec![FaultEvent::Slowdown {
            machine: MachineId::new(0),
            at: Time::ZERO,
            lasting: Time::ONE,
            speed: 0.0,
        }]);
        assert!(ResilienceEngine::new(&inst, &p, &r, &bad_speed).is_err());
        let bad_task = FaultScript::new(vec![FaultEvent::Straggler {
            task: TaskId::new(5),
            factor: 2.0,
        }]);
        assert!(ResilienceEngine::new(&inst, &p, &r, &bad_task).is_err());
    }
}
