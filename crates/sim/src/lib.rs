//! Discrete-event execution engine for phase 2 of *Replicated Data
//! Placement for Uncertain Scheduling*.
//!
//! The paper's phase 2 is an online, semi-clairvoyant process: a task may
//! only start on a machine holding its data, the scheduler dispatches
//! when machines become idle, and actual processing times are revealed
//! only at completion. This crate is that runtime:
//!
//! - [`engine::Engine`]: the event loop (machines, clock, pending set,
//!   feasibility enforcement) — [`engine::Engine::run_in`] reuses a
//!   caller-owned [`arena::SimArena`] so steady-state Monte-Carlo trials
//!   allocate nothing;
//! - [`arena`]: the reusable scratch storage behind that hot path;
//! - [`dispatcher`]: pluggable online policies (FIFO/LPT priority orders,
//!   pinned queues, the staged policy of `ABO_Δ`);
//! - [`executors`]: one-call simulations of each paper strategy;
//! - [`faults`]: the resilience engine — scripted crashes, outages with
//!   recovery, degraded-speed phases, stragglers, speculative
//!   re-execution, and graceful degradation with [`faults::Outcome`] and
//!   [`faults::ResilienceMetrics`];
//! - [`trace`]: chronological event traces for inspection and Gantt
//!   rendering;
//! - [`validate`]: the always-on schedule invariant validator (placement
//!   feasibility, no overlap, replication budget, duration honesty, the
//!   α-envelope, memory accounting) — on in debug builds, opt-in via
//!   `RDS_VALIDATE=1` in release.
//!
//! The closed-form greedy implementations in `rds-algs` and this engine
//! must produce identical schedules; the workspace integration tests
//! assert that equivalence — the engine is the ground truth, the closed
//! forms are the fast path.
//!
//! # Example
//! ```
//! use rds_core::prelude::*;
//! use rds_sim::executors::simulate_no_restriction;
//!
//! let inst = Instance::from_estimates(&[3.0, 2.0, 2.0, 1.0], 2)?;
//! let unc = Uncertainty::of(2.0);
//! let real = Realization::from_factors(&inst, unc, &[2.0, 0.5, 1.0, 1.0])?;
//! let res = simulate_no_restriction(&inst, &real)?;
//! assert_eq!(res.trace.starts(), 4);
//! # Ok::<(), rds_core::Error>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arena;
pub mod dispatcher;
pub mod engine;
pub mod event;
pub mod executors;
pub mod failures;
pub mod faults;
pub mod trace;
pub mod validate;

pub use arena::SimArena;
pub use dispatcher::{
    Dispatcher, LocalityDispatcher, OrderedDispatcher, PinnedDispatcher, SimView, StagedDispatcher,
};
pub use engine::{Engine, SimResult};
pub use event::QueueMode;
pub use failures::{run_with_failures, Failure, FaultySimResult};
pub use faults::{
    FaultEvent, FaultScratch, FaultScript, Outcome, ResilienceEngine, ResilienceMetrics,
    ResilienceReport, Speculation,
};
pub use trace::{Trace, TraceEvent};
pub use validate::{check_schedule, validate_schedule, Checks, Violation};
