//! Execution traces: what happened, when, on which machine.
//!
//! [`TraceEvent`] stays the public, pattern-matchable record type, but
//! storage is struct-of-arrays: one parallel column per field (kind
//! byte, time, task, machine, auxiliary float). Recording an event is
//! five contiguous appends with no enum padding, which keeps the
//! engine's hot loop cache-linear at n = 10^6; consumers decode events
//! on the fly via [`Trace::iter`] / [`Trace::get`] or materialize them
//! with [`Trace::events`].

use rds_core::{MachineId, TaskId, Time};

/// One recorded simulation event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A task started on a machine.
    Start {
        /// Simulation time of the start.
        time: Time,
        /// The started task.
        task: TaskId,
        /// The executing machine.
        machine: MachineId,
    },
    /// A task completed (its actual time became known).
    Complete {
        /// Simulation time of the completion.
        time: Time,
        /// The completed task.
        task: TaskId,
        /// The executing machine.
        machine: MachineId,
        /// The revealed actual processing time.
        actual: Time,
    },
    /// A machine went permanently idle (no eligible pending work).
    Starved {
        /// When the machine ran out of eligible work.
        time: Time,
        /// The starved machine.
        machine: MachineId,
    },
    /// A machine went down (crash or outage start); its in-flight
    /// attempt, if any, was lost.
    Failure {
        /// When the machine went down.
        time: Time,
        /// The failed machine.
        machine: MachineId,
    },
    /// A machine rejoined after a transient outage.
    Recovery {
        /// When the machine came back.
        time: Time,
        /// The rejoining machine.
        machine: MachineId,
    },
    /// A machine changed processing speed (`speed == 1.0` marks the end
    /// of a degraded phase).
    Degraded {
        /// When the speed changed.
        time: Time,
        /// The affected machine.
        machine: MachineId,
        /// The new processing-speed fraction.
        speed: f64,
    },
    /// A speculative backup attempt of a task was launched.
    SpeculativeStart {
        /// When the backup started.
        time: Time,
        /// The speculated task.
        task: TaskId,
        /// The machine hosting the backup attempt.
        machine: MachineId,
    },
    /// A redundant attempt was cancelled because a sibling finished
    /// first; its progress is wasted work.
    Cancelled {
        /// When the attempt was cancelled.
        time: Time,
        /// The task whose attempt was cancelled.
        task: TaskId,
        /// The machine whose attempt was cancelled.
        machine: MachineId,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn time(&self) -> Time {
        match *self {
            TraceEvent::Start { time, .. }
            | TraceEvent::Complete { time, .. }
            | TraceEvent::Starved { time, .. }
            | TraceEvent::Failure { time, .. }
            | TraceEvent::Recovery { time, .. }
            | TraceEvent::Degraded { time, .. }
            | TraceEvent::SpeculativeStart { time, .. }
            | TraceEvent::Cancelled { time, .. } => time,
        }
    }
}

/// Column tag for one event; the discriminant column of the SoA layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Kind {
    Start,
    Complete,
    Starved,
    Failure,
    Recovery,
    Degraded,
    SpeculativeStart,
    Cancelled,
}

/// Sentinel in the task column for events that carry no task.
const NO_TASK: u32 = u32::MAX;

/// A full execution trace (struct-of-arrays storage).
///
/// Equality compares the encoded columns directly — two traces are
/// equal iff they decode to the same event sequence, bit-for-bit on
/// every timestamp.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    kinds: Vec<Kind>,
    times: Vec<f64>,
    tasks: Vec<u32>,
    machines: Vec<u32>,
    /// `actual` for `Complete`, `speed` for `Degraded`, else 0.
    aux: Vec<f64>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty trace with room for `cap` events before reallocating.
    /// The engine records at most `2n + m` events per run (one `Start`
    /// and one `Complete` per task, at most one `Starved` per machine),
    /// so sizing to that bound makes recording allocation-free.
    pub fn with_capacity(cap: usize) -> Self {
        Trace {
            kinds: Vec::with_capacity(cap),
            times: Vec::with_capacity(cap),
            tasks: Vec::with_capacity(cap),
            machines: Vec::with_capacity(cap),
            aux: Vec::with_capacity(cap),
        }
    }

    /// Removes every event, keeping the allocated storage for reuse.
    pub fn clear(&mut self) {
        self.kinds.clear();
        self.times.clear();
        self.tasks.clear();
        self.machines.clear();
        self.aux.clear();
    }

    /// Reserves room for at least `additional` further events.
    pub fn reserve(&mut self, additional: usize) {
        self.kinds.reserve(additional);
        self.times.reserve(additional);
        self.tasks.reserve(additional);
        self.machines.reserve(additional);
        self.aux.reserve(additional);
    }

    /// Appends an event (times must be non-decreasing; enforced in debug).
    pub fn push(&mut self, ev: TraceEvent) {
        debug_assert!(
            self.times
                .last()
                .is_none_or(|&last| last <= ev.time().get()),
            "trace out of order"
        );
        let (kind, time, task, machine, aux) = match ev {
            TraceEvent::Start {
                time,
                task,
                machine,
            } => (Kind::Start, time, task.index() as u32, machine, 0.0),
            TraceEvent::Complete {
                time,
                task,
                machine,
                actual,
            } => (
                Kind::Complete,
                time,
                task.index() as u32,
                machine,
                actual.get(),
            ),
            TraceEvent::Starved { time, machine } => (Kind::Starved, time, NO_TASK, machine, 0.0),
            TraceEvent::Failure { time, machine } => (Kind::Failure, time, NO_TASK, machine, 0.0),
            TraceEvent::Recovery { time, machine } => (Kind::Recovery, time, NO_TASK, machine, 0.0),
            TraceEvent::Degraded {
                time,
                machine,
                speed,
            } => (Kind::Degraded, time, NO_TASK, machine, speed),
            TraceEvent::SpeculativeStart {
                time,
                task,
                machine,
            } => (
                Kind::SpeculativeStart,
                time,
                task.index() as u32,
                machine,
                0.0,
            ),
            TraceEvent::Cancelled {
                time,
                task,
                machine,
            } => (Kind::Cancelled, time, task.index() as u32, machine, 0.0),
        };
        self.kinds.push(kind);
        self.times.push(time.get());
        self.tasks.push(task);
        self.machines.push(machine.index() as u32);
        self.aux.push(aux);
    }

    /// Decodes the event at index `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> TraceEvent {
        let time = Time::of(self.times[i]);
        let machine = MachineId::new(self.machines[i] as usize);
        let task = || TaskId::new(self.tasks[i] as usize);
        match self.kinds[i] {
            Kind::Start => TraceEvent::Start {
                time,
                task: task(),
                machine,
            },
            Kind::Complete => TraceEvent::Complete {
                time,
                task: task(),
                machine,
                actual: Time::of(self.aux[i]),
            },
            Kind::Starved => TraceEvent::Starved { time, machine },
            Kind::Failure => TraceEvent::Failure { time, machine },
            Kind::Recovery => TraceEvent::Recovery { time, machine },
            Kind::Degraded => TraceEvent::Degraded {
                time,
                machine,
                speed: self.aux[i],
            },
            Kind::SpeculativeStart => TraceEvent::SpeculativeStart {
                time,
                task: task(),
                machine,
            },
            Kind::Cancelled => TraceEvent::Cancelled {
                time,
                task: task(),
                machine,
            },
        }
    }

    /// Iterates the events in chronological order, decoding on the fly.
    pub fn iter(&self) -> impl Iterator<Item = TraceEvent> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// All events in chronological order, materialized. Reporting and
    /// test convenience — hot paths should use [`Trace::iter`].
    pub fn events(&self) -> Vec<TraceEvent> {
        self.iter().collect()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Count of `Start` events (tasks dispatched) — a scan over the
    /// one-byte kind column.
    pub fn starts(&self) -> usize {
        self.kinds.iter().filter(|&&k| k == Kind::Start).count()
    }

    /// Total idle time across machines before the makespan: for each
    /// machine, `makespan − busy_time` summed (a load-balance diagnostic).
    pub fn total_idle(&self, m: usize) -> Time {
        let mut busy = vec![Time::ZERO; m];
        let mut makespan = Time::ZERO;
        for i in 0..self.len() {
            if self.kinds[i] == Kind::Complete {
                busy[self.machines[i] as usize] += Time::of(self.aux[i]);
                makespan = makespan.max(Time::of(self.times[i]));
            }
        }
        busy.into_iter().map(|b| makespan.saturating_sub(b)).sum()
    }
}

impl Trace {
    /// Serializes the trace as CSV (`time,event,task,machine,actual`),
    /// RFC-4180-trivial since no field needs quoting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time,event,task,machine,actual\n");
        for e in self.iter() {
            match e {
                TraceEvent::Start {
                    time,
                    task,
                    machine,
                } => {
                    out.push_str(&format!(
                        "{time},start,{},{},\n",
                        task.index(),
                        machine.index()
                    ));
                }
                TraceEvent::Complete {
                    time,
                    task,
                    machine,
                    actual,
                } => {
                    out.push_str(&format!(
                        "{time},complete,{},{},{actual}\n",
                        task.index(),
                        machine.index()
                    ));
                }
                TraceEvent::Starved { time, machine } => {
                    out.push_str(&format!("{time},starved,,{},\n", machine.index()));
                }
                TraceEvent::Failure { time, machine } => {
                    out.push_str(&format!("{time},failure,,{},\n", machine.index()));
                }
                TraceEvent::Recovery { time, machine } => {
                    out.push_str(&format!("{time},recovery,,{},\n", machine.index()));
                }
                TraceEvent::Degraded {
                    time,
                    machine,
                    speed,
                } => {
                    out.push_str(&format!("{time},degraded,,{},{speed}\n", machine.index()));
                }
                TraceEvent::SpeculativeStart {
                    time,
                    task,
                    machine,
                } => {
                    out.push_str(&format!(
                        "{time},spec_start,{},{},\n",
                        task.index(),
                        machine.index()
                    ));
                }
                TraceEvent::Cancelled {
                    time,
                    task,
                    machine,
                } => {
                    out.push_str(&format!(
                        "{time},cancelled,{},{},\n",
                        task.index(),
                        machine.index()
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_counts() {
        let mut t = Trace::new();
        t.push(TraceEvent::Start {
            time: Time::ZERO,
            task: TaskId::new(0),
            machine: MachineId::new(0),
        });
        t.push(TraceEvent::Complete {
            time: Time::of(2.0),
            task: TaskId::new(0),
            machine: MachineId::new(0),
            actual: Time::of(2.0),
        });
        t.push(TraceEvent::Starved {
            time: Time::of(2.0),
            machine: MachineId::new(0),
        });
        assert_eq!(t.len(), 3);
        assert_eq!(t.starts(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn every_event_kind_round_trips_through_the_columns() {
        let all = vec![
            TraceEvent::Start {
                time: Time::ZERO,
                task: TaskId::new(3),
                machine: MachineId::new(1),
            },
            TraceEvent::Complete {
                time: Time::of(1.25),
                task: TaskId::new(3),
                machine: MachineId::new(1),
                actual: Time::of(1.25),
            },
            TraceEvent::Failure {
                time: Time::of(1.5),
                machine: MachineId::new(2),
            },
            TraceEvent::Degraded {
                time: Time::of(1.75),
                machine: MachineId::new(0),
                speed: 0.25,
            },
            TraceEvent::SpeculativeStart {
                time: Time::of(2.0),
                task: TaskId::new(7),
                machine: MachineId::new(4),
            },
            TraceEvent::Cancelled {
                time: Time::of(2.5),
                task: TaskId::new(7),
                machine: MachineId::new(4),
            },
            TraceEvent::Recovery {
                time: Time::of(3.0),
                machine: MachineId::new(2),
            },
            TraceEvent::Starved {
                time: Time::of(3.0),
                machine: MachineId::new(0),
            },
        ];
        let mut t = Trace::new();
        for &e in &all {
            t.push(e);
        }
        assert_eq!(t.events(), all);
        assert_eq!(t.get(1), all[1]);
        let mut u = Trace::new();
        for &e in &all {
            u.push(e);
        }
        assert_eq!(t, u);
        u.push(TraceEvent::Starved {
            time: Time::of(4.0),
            machine: MachineId::new(1),
        });
        assert_ne!(t, u);
    }

    #[test]
    fn csv_round_trips_fields() {
        let mut t = Trace::new();
        t.push(TraceEvent::Start {
            time: Time::ZERO,
            task: TaskId::new(3),
            machine: MachineId::new(1),
        });
        t.push(TraceEvent::Complete {
            time: Time::of(2.5),
            task: TaskId::new(3),
            machine: MachineId::new(1),
            actual: Time::of(2.5),
        });
        t.push(TraceEvent::Starved {
            time: Time::of(2.5),
            machine: MachineId::new(0),
        });
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time,event,task,machine,actual");
        assert_eq!(lines[1], "0,start,3,1,");
        assert_eq!(lines[2], "2.5,complete,3,1,2.5");
        assert_eq!(lines[3], "2.5,starved,,0,");
    }

    #[test]
    fn csv_covers_fault_events() {
        let mut t = Trace::new();
        t.push(TraceEvent::Failure {
            time: Time::of(1.0),
            machine: MachineId::new(2),
        });
        t.push(TraceEvent::Degraded {
            time: Time::of(1.5),
            machine: MachineId::new(0),
            speed: 0.25,
        });
        t.push(TraceEvent::SpeculativeStart {
            time: Time::of(2.0),
            task: TaskId::new(7),
            machine: MachineId::new(1),
        });
        t.push(TraceEvent::Cancelled {
            time: Time::of(3.0),
            task: TaskId::new(7),
            machine: MachineId::new(1),
        });
        t.push(TraceEvent::Recovery {
            time: Time::of(4.0),
            machine: MachineId::new(2),
        });
        let lines: Vec<String> = t.to_csv().lines().map(str::to_owned).collect();
        assert_eq!(lines[1], "1,failure,,2,");
        assert_eq!(lines[2], "1.5,degraded,,0,0.25");
        assert_eq!(lines[3], "2,spec_start,7,1,");
        assert_eq!(lines[4], "3,cancelled,7,1,");
        assert_eq!(lines[5], "4,recovery,,2,");
    }

    #[test]
    fn idle_time_accounts_for_makespan_gap() {
        let mut t = Trace::new();
        // m0 busy [0,4]; m1 busy [0,1] → idle = 0 + 3.
        for (machine, dur) in [(0usize, 4.0), (1usize, 1.0)] {
            t.push(TraceEvent::Start {
                time: Time::ZERO,
                task: TaskId::new(machine),
                machine: MachineId::new(machine),
            });

            let _ = dur;
        }
        t.push(TraceEvent::Complete {
            time: Time::of(1.0),
            task: TaskId::new(1),
            machine: MachineId::new(1),
            actual: Time::of(1.0),
        });
        t.push(TraceEvent::Complete {
            time: Time::of(4.0),
            task: TaskId::new(0),
            machine: MachineId::new(0),
            actual: Time::of(4.0),
        });
        assert_eq!(t.total_idle(2), Time::of(3.0));
    }

    #[test]
    #[should_panic(expected = "trace out of order")]
    #[cfg(debug_assertions)]
    fn rejects_time_travel() {
        let mut t = Trace::new();
        t.push(TraceEvent::Starved {
            time: Time::of(2.0),
            machine: MachineId::new(0),
        });
        t.push(TraceEvent::Starved {
            time: Time::of(1.0),
            machine: MachineId::new(0),
        });
    }
}
