//! Always-on schedule invariant validator.
//!
//! Every schedule the engines produce can be re-checked against the
//! paper's ground rules, independently of the engine that built it:
//!
//! - **placement feasibility** — tasks run only on machines in `M_j`;
//! - **no overlap** — a machine processes at most one task at a time;
//! - **replication budget** — `|M_j| ≤ k` when a budget is in force;
//! - **duration honesty** — each slot spans exactly the task's actual
//!   processing time `p_j`;
//! - **the α-envelope** — actual times lie within `[p̃_j/α, α·p̃_j]`;
//! - **memory accounting** — a claimed `Mem_max` matches the occupation
//!   recomputed from the placement (`Mem_i = Σ_{j: i ∈ M_j} s_j`).
//!
//! Validation is *on* in debug builds (so every test exercises it) and
//! opt-in in release builds via `RDS_VALIDATE=1` or the CLI `--validate`
//! flag. Violations are returned as typed values — never panics — so a
//! bad schedule degrades the one trial that produced it, not the whole
//! campaign.
//!
//! Not every check applies to every run: fault scripts with slowdowns or
//! stragglers legitimately stretch slot durations beyond the envelope,
//! and partial outcomes legitimately miss tasks. [`Checks`] selects the
//! invariant subset that must hold for a given execution mode; the
//! structural checks (placement, overlap, duplicates) hold always.

use rds_core::{
    memory, Error, Instance, Placement, Realization, Result, Schedule, Size, Uncertainty,
};
use std::fmt;

/// Relative tolerance for floating-point time/size comparisons.
const TOL: f64 = 1e-9;

/// `true` when the validator should run: always in debug builds, and in
/// release builds when `RDS_VALIDATE=1` is set (the CLI `--validate` flag
/// sets it for the process).
pub fn enabled() -> bool {
    cfg!(debug_assertions) || std::env::var_os("RDS_VALIDATE").is_some_and(|v| v == "1")
}

/// One violated invariant, with enough context to debug it.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A slot ran a task on a machine outside its placement set `M_j`.
    OffPlacement {
        /// Offending task index.
        task: usize,
        /// Machine the slot ran on.
        machine: usize,
    },
    /// Two slots on one machine overlap in time.
    Overlap {
        /// The machine with overlapping slots.
        machine: usize,
        /// The earlier slot's task.
        first: usize,
        /// The later slot's task.
        second: usize,
        /// End of the earlier slot.
        first_end: f64,
        /// Start of the later slot (before `first_end`).
        second_start: f64,
    },
    /// A task has more than one completed slot.
    DuplicateTask {
        /// Offending task index.
        task: usize,
    },
    /// A task has no completed slot although the run claims completion.
    MissingTask {
        /// Offending task index.
        task: usize,
    },
    /// A slot references a task index `>= n`.
    UnknownTask {
        /// Offending task index.
        task: usize,
        /// Number of tasks in the instance.
        n: usize,
    },
    /// The schedule's machine count differs from the instance's `m`.
    MachineCountMismatch {
        /// Instance machine count.
        expected: usize,
        /// Schedule machine count.
        got: usize,
    },
    /// A task's placement exceeds the replication budget: `|M_j| > k`.
    BudgetExceeded {
        /// Offending task index.
        task: usize,
        /// Number of replicas placed.
        replicas: usize,
        /// The budget `k`.
        budget: usize,
    },
    /// A slot's span differs from the task's actual processing time.
    DurationMismatch {
        /// Offending task index.
        task: usize,
        /// Machine the slot ran on.
        machine: usize,
        /// The slot's span `end - start`.
        got: f64,
        /// The realized processing time `p_j`.
        want: f64,
    },
    /// A realized time escaped the uncertainty envelope `[p̃/α, α·p̃]`.
    EnvelopeViolated {
        /// Offending task index.
        task: usize,
        /// The estimate `p̃_j`.
        estimate: f64,
        /// The realized time `p_j`.
        actual: f64,
        /// The uncertainty factor in force.
        alpha: f64,
    },
    /// A claimed peak memory differs from the placement's recomputed
    /// occupation.
    MemoryMismatch {
        /// The claimed `Mem_max`.
        claimed: f64,
        /// `max_i Σ_{j: i ∈ M_j} s_j` recomputed from the placement.
        actual: f64,
    },
}

impl Violation {
    /// Stable machine-readable tag for the invariant class.
    pub fn invariant(&self) -> &'static str {
        match self {
            Violation::OffPlacement { .. } => "off-placement",
            Violation::Overlap { .. } => "overlap",
            Violation::DuplicateTask { .. } => "duplicate-task",
            Violation::MissingTask { .. } => "missing-task",
            Violation::UnknownTask { .. } => "unknown-task",
            Violation::MachineCountMismatch { .. } => "machine-count",
            Violation::BudgetExceeded { .. } => "replication-budget",
            Violation::DurationMismatch { .. } => "duration",
            Violation::EnvelopeViolated { .. } => "envelope",
            Violation::MemoryMismatch { .. } => "memory",
        }
    }

    /// Converts into the shared error taxonomy.
    pub fn into_error(self) -> Error {
        Error::InvariantViolation {
            invariant: self.invariant(),
            detail: self.to_string(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::OffPlacement { task, machine } => {
                write!(f, "task {task} ran on machine {machine} outside M_j")
            }
            Violation::Overlap {
                machine,
                first,
                second,
                first_end,
                second_start,
            } => write!(
                f,
                "machine {machine}: task {second} starts at {second_start} \
                 before task {first} ends at {first_end}"
            ),
            Violation::DuplicateTask { task } => {
                write!(f, "task {task} completed more than once")
            }
            Violation::MissingTask { task } => {
                write!(f, "task {task} never completed")
            }
            Violation::UnknownTask { task, n } => {
                write!(f, "slot references task {task} (n = {n})")
            }
            Violation::MachineCountMismatch { expected, got } => {
                write!(f, "schedule covers {got} machines, instance has {expected}")
            }
            Violation::BudgetExceeded {
                task,
                replicas,
                budget,
            } => write!(
                f,
                "task {task} placed on {replicas} machines, budget k = {budget}"
            ),
            Violation::DurationMismatch {
                task,
                machine,
                got,
                want,
            } => write!(
                f,
                "task {task} on machine {machine} spans {got}, actual time is {want}"
            ),
            Violation::EnvelopeViolated {
                task,
                estimate,
                actual,
                alpha,
            } => write!(
                f,
                "task {task}: actual {actual} outside [{lo}, {hi}] \
                 (estimate {estimate}, alpha {alpha})",
                lo = estimate / alpha,
                hi = estimate * alpha,
            ),
            Violation::MemoryMismatch { claimed, actual } => {
                write!(f, "claimed Mem_max {claimed}, placement occupies {actual}")
            }
        }
    }
}

/// Which invariant subset must hold for a given execution mode.
///
/// The structural checks — placement feasibility, no overlap, no
/// duplicate completions, index ranges — always run; they hold even
/// under faults and partial outcomes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Checks {
    /// Require every task to have exactly one completed slot. Off for
    /// partial (gracefully degraded) outcomes.
    pub completeness: bool,
    /// Require each slot to span exactly the task's realized time. Off
    /// when the fault script stretches time (slowdowns / stragglers).
    pub durations: bool,
    /// Check realized times against the α-envelope. `None` skips (the
    /// plain engine does not know the uncertainty model; straggler
    /// scripts violate it by design).
    pub envelope: Option<Uncertainty>,
    /// Check `|M_j| ≤ k` for every task.
    pub budget: Option<usize>,
    /// Check a claimed `Mem_max` against the recomputed occupation.
    pub memory: Option<Size>,
}

impl Checks {
    /// Structural checks only — the subset that holds for any schedule,
    /// including partial outcomes under arbitrary fault scripts.
    pub fn structural() -> Self {
        Checks::default()
    }

    /// The fault-free engine contract: complete and duration-honest.
    pub fn engine() -> Self {
        Checks {
            completeness: true,
            durations: true,
            ..Checks::default()
        }
    }

    /// Everything: completeness, durations, envelope, and budget.
    pub fn full(uncertainty: Uncertainty, budget: usize) -> Self {
        Checks {
            completeness: true,
            durations: true,
            envelope: Some(uncertainty),
            budget: Some(budget),
            ..Checks::default()
        }
    }
}

/// Validates a produced schedule, returning *all* violations found.
///
/// An empty vector means the schedule satisfies every requested
/// invariant. The function never panics on malformed input — a slot with
/// an out-of-range task index becomes an [`Violation::UnknownTask`], not
/// an index panic.
pub fn validate_schedule(
    instance: &Instance,
    placement: &Placement,
    realization: &Realization,
    schedule: &Schedule,
    checks: &Checks,
) -> Vec<Violation> {
    let _span = rds_obs::span("validator.check");
    let n = instance.n();
    let m = instance.m();
    let mut out = Vec::new();

    let per_machine = schedule.all_slots();
    if per_machine.len() != m {
        out.push(Violation::MachineCountMismatch {
            expected: m,
            got: per_machine.len(),
        });
    }

    let mut completions = vec![0usize; n];
    for (mi, slots) in per_machine.iter().enumerate() {
        // Check consecutive pairs in start order without assuming the
        // engine appended chronologically.
        let mut order: Vec<usize> = (0..slots.len()).collect();
        order.sort_by(|&a, &b| {
            slots[a]
                .start
                .cmp(&slots[b].start)
                .then(slots[a].end.cmp(&slots[b].end))
        });
        for w in order.windows(2) {
            let (prev, next) = (&slots[w[0]], &slots[w[1]]);
            if next.start < prev.end {
                out.push(Violation::Overlap {
                    machine: mi,
                    first: prev.task.index(),
                    second: next.task.index(),
                    first_end: prev.end.get(),
                    second_start: next.start.get(),
                });
            }
        }
        for slot in slots.iter() {
            let j = slot.task.index();
            if j >= n {
                out.push(Violation::UnknownTask { task: j, n });
                continue;
            }
            completions[j] += 1;
            if mi < placement.m() && !placement.allows(slot.task, rds_core::MachineId::new(mi)) {
                out.push(Violation::OffPlacement {
                    task: j,
                    machine: mi,
                });
            }
            if checks.durations {
                let got = slot.end.get() - slot.start.get();
                let want = realization.actual(slot.task).get();
                // The span `end − start` inherits the clock's rounding
                // error, so the tolerance must scale with the slot's
                // absolute position, not just the task's duration: a
                // short task started late in a long schedule can differ
                // from its actual by ~ulp(end) ≫ ulp(duration).
                if (got - want).abs() > TOL * want.max(slot.end.get()).max(1.0) {
                    out.push(Violation::DurationMismatch {
                        task: j,
                        machine: mi,
                        got,
                        want,
                    });
                }
            }
        }
    }

    for (j, &count) in completions.iter().enumerate() {
        if count > 1 {
            out.push(Violation::DuplicateTask { task: j });
        }
        if checks.completeness && count == 0 {
            out.push(Violation::MissingTask { task: j });
        }
    }

    if let Some(unc) = checks.envelope {
        for (j, task) in instance.tasks().iter().enumerate() {
            let actual = realization.actual(task.id);
            if !unc.contains(task.estimate, actual) {
                out.push(Violation::EnvelopeViolated {
                    task: j,
                    estimate: task.estimate.get(),
                    actual: actual.get(),
                    alpha: unc.alpha(),
                });
            }
        }
    }

    if let Some(k) = checks.budget {
        for id in instance.task_ids() {
            let replicas = placement.replicas(id);
            if replicas > k {
                out.push(Violation::BudgetExceeded {
                    task: id.index(),
                    replicas,
                    budget: k,
                });
            }
        }
    }

    if let Some(claimed) = checks.memory {
        let actual = memory::occupation(instance, placement)
            .iter()
            .map(|s| s.get())
            .fold(0.0_f64, f64::max);
        if (claimed.get() - actual).abs() > TOL * actual.max(1.0) {
            out.push(Violation::MemoryMismatch {
                claimed: claimed.get(),
                actual,
            });
        }
    }

    // One registry lookup per validation (not per slot), so the lock in
    // `Registry::counter` stays off the per-event path.
    if rds_obs::enabled() {
        let g = rds_obs::global();
        g.counter("validator.checks").inc();
        if !out.is_empty() {
            g.counter("validator.violations").add(out.len() as u64);
        }
    }

    out
}

/// Like [`validate_schedule`], but maps the first violation into the
/// shared error taxonomy for `?`-propagation.
///
/// # Errors
/// [`Error::InvariantViolation`] carrying the first violation's class tag
/// and rendered detail.
pub fn check_schedule(
    instance: &Instance,
    placement: &Placement,
    realization: &Realization,
    schedule: &Schedule,
    checks: &Checks,
) -> Result<()> {
    match validate_schedule(instance, placement, realization, schedule, checks)
        .into_iter()
        .next()
    {
        None => Ok(()),
        Some(v) => Err(v.into_error()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rds_core::{MachineId, Slot, TaskId, Time};

    fn fixture() -> (Instance, Placement, Realization, Schedule) {
        let inst = Instance::from_estimates(&[2.0, 1.0, 3.0], 2).unwrap();
        let p = Placement::everywhere(&inst);
        let r = Realization::exact(&inst);
        // m0: t0 [0,2), t1 [2,3); m1: t2 [0,3).
        let slots = vec![
            vec![
                Slot {
                    task: TaskId::new(0),
                    start: Time::ZERO,
                    end: Time::of(2.0),
                },
                Slot {
                    task: TaskId::new(1),
                    start: Time::of(2.0),
                    end: Time::of(3.0),
                },
            ],
            vec![Slot {
                task: TaskId::new(2),
                start: Time::ZERO,
                end: Time::of(3.0),
            }],
        ];
        (inst, p, r, Schedule::from_slots(slots))
    }

    #[test]
    fn clean_schedule_passes_every_check() {
        let (inst, p, r, s) = fixture();
        let checks = Checks::full(Uncertainty::of(2.0), 2);
        assert!(validate_schedule(&inst, &p, &r, &s, &checks).is_empty());
        check_schedule(&inst, &p, &r, &s, &checks).unwrap();
    }

    #[test]
    fn overlap_is_detected() {
        let (inst, p, r, s) = fixture();
        let mut slots = s.all_slots().to_vec();
        slots[0][1].start = Time::of(1.5); // starts before t0 ends
        slots[0][1].end = Time::of(2.5);
        let bad = Schedule::from_slots(slots);
        let vs = validate_schedule(&inst, &p, &r, &bad, &Checks::structural());
        assert!(vs.iter().any(|v| matches!(
            v,
            Violation::Overlap {
                machine: 0,
                first: 0,
                second: 1,
                ..
            }
        )));
    }

    #[test]
    fn off_placement_is_detected() {
        let (inst, _, r, s) = fixture();
        // Task 2 ran on machine 1, but is now pinned to machine 0 only.
        let pinned = Placement::pinned(
            &inst,
            &[MachineId::new(0), MachineId::new(0), MachineId::new(0)],
        )
        .unwrap();
        let vs = validate_schedule(&inst, &pinned, &r, &s, &Checks::structural());
        assert!(vs.iter().any(|v| matches!(
            v,
            Violation::OffPlacement {
                task: 2,
                machine: 1
            }
        )));
    }

    #[test]
    fn duplicate_and_missing_are_detected() {
        let (inst, p, r, s) = fixture();
        let mut slots = s.all_slots().to_vec();
        // Re-run task 0 on machine 1 (duplicate), drop task 1 (missing).
        slots[1].push(Slot {
            task: TaskId::new(0),
            start: Time::of(3.0),
            end: Time::of(5.0),
        });
        slots[0].pop();
        let bad = Schedule::from_slots(slots);
        let checks = Checks::engine();
        let vs = validate_schedule(&inst, &p, &r, &bad, &checks);
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::DuplicateTask { task: 0 })));
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::MissingTask { task: 1 })));
        // Partial-outcome mode tolerates the missing task but still flags
        // the duplicate.
        let vs = validate_schedule(&inst, &p, &r, &bad, &Checks::structural());
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::DuplicateTask { task: 0 })));
        assert!(!vs
            .iter()
            .any(|v| matches!(v, Violation::MissingTask { .. })));
    }

    #[test]
    fn budget_violation_is_detected() {
        let (inst, p, r, s) = fixture();
        // Everywhere-placement puts each task on 2 machines; budget 1.
        let mut checks = Checks::structural();
        checks.budget = Some(1);
        let vs = validate_schedule(&inst, &p, &r, &s, &checks);
        assert!(vs.iter().any(|v| matches!(
            v,
            Violation::BudgetExceeded {
                replicas: 2,
                budget: 1,
                ..
            }
        )));
    }

    #[test]
    fn duration_mismatch_is_detected() {
        let (inst, p, r, s) = fixture();
        let mut slots = s.all_slots().to_vec();
        slots[1][0].end = Time::of(4.0); // t2 stretched beyond p_2 = 3
        let bad = Schedule::from_slots(slots);
        let vs = validate_schedule(&inst, &p, &r, &bad, &Checks::engine());
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::DurationMismatch { task: 2, .. })));
        // ... but tolerated in structural mode (slowdown scripts stretch).
        assert!(validate_schedule(&inst, &p, &r, &bad, &Checks::structural()).is_empty());
    }

    #[test]
    fn envelope_violation_is_detected() {
        let inst = Instance::from_estimates(&[2.0], 1).unwrap();
        let p = Placement::everywhere(&inst);
        // Build via exact() then compare against a *tighter* claimed α by
        // constructing an out-of-envelope realization through a wide α.
        let wide = Uncertainty::of(4.0);
        let r = Realization::from_factors(&inst, wide, &[4.0]).unwrap();
        let s = Schedule::from_slots(vec![vec![Slot {
            task: TaskId::new(0),
            start: Time::ZERO,
            end: Time::of(8.0),
        }]]);
        let mut checks = Checks::structural();
        checks.envelope = Some(Uncertainty::of(2.0));
        let vs = validate_schedule(&inst, &p, &r, &s, &checks);
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::EnvelopeViolated { task: 0, .. })));
    }

    #[test]
    fn memory_mismatch_is_detected() {
        let inst =
            Instance::from_estimates_and_sizes(&[(2.0, 1.0), (1.0, 2.0), (3.0, 4.0)], 2).unwrap();
        let p = Placement::everywhere(&inst);
        let r = Realization::exact(&inst);
        let s = Schedule::from_slots(vec![Vec::new(), Vec::new()]);
        // Everywhere: each machine holds all sizes → Mem_max = 7.
        let mut checks = Checks::structural();
        checks.memory = Some(Size::of(7.0));
        assert!(validate_schedule(&inst, &p, &r, &s, &checks).is_empty());
        checks.memory = Some(Size::of(5.0));
        let vs = validate_schedule(&inst, &p, &r, &s, &checks);
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::MemoryMismatch { .. })));
    }

    #[test]
    fn unknown_task_is_a_violation_not_a_panic() {
        let inst = Instance::from_estimates(&[1.0], 1).unwrap();
        let p = Placement::everywhere(&inst);
        let r = Realization::exact(&inst);
        let s = Schedule::from_slots(vec![vec![Slot {
            task: TaskId::new(9),
            start: Time::ZERO,
            end: Time::ONE,
        }]]);
        let vs = validate_schedule(&inst, &p, &r, &s, &Checks::structural());
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::UnknownTask { task: 9, n: 1 })));
    }

    #[test]
    fn violations_map_into_the_error_taxonomy() {
        let v = Violation::Overlap {
            machine: 1,
            first: 0,
            second: 2,
            first_end: 3.0,
            second_start: 2.0,
        };
        match v.into_error() {
            Error::InvariantViolation { invariant, detail } => {
                assert_eq!(invariant, "overlap");
                assert!(detail.contains("machine 1"));
            }
            other => panic!("wrong error: {other}"),
        }
    }
}
