//! Property tests on the discrete-event engine: any placement shape plus
//! any priority order yields a valid, feasible, work-conserving schedule.

use proptest::prelude::*;
use rds_core::{
    Instance, MachineId, MachineMask, MachineSet, Placement, Realization, TaskId, Time, Uncertainty,
};
use rds_sim::{Engine, OrderedDispatcher, TraceEvent};

/// Builds a random placement where each task gets a nonempty subset.
fn placement_strategy(n: usize, m: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(
        prop::collection::btree_set(0..m, 1..=m).prop_map(|s| s.into_iter().collect()),
        n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engine_always_produces_valid_feasible_schedules(
        est in prop::collection::vec(0.1f64..20.0, 1..25),
        m in 1usize..6,
        sets_seed in any::<u64>(),
        alpha in 1.0f64..2.5,
    ) {
        let n = est.len();
        let inst = Instance::from_estimates(&est, m).unwrap();
        let unc = Uncertainty::of(alpha);
        // Derive per-task subsets pseudo-randomly from the seed (always
        // nonempty: include machine j % m).
        let sets: Vec<MachineSet> = (0..n)
            .map(|j| {
                let mut mask = MachineMask::empty(m);
                mask.insert(MachineId::new(j % m));
                for i in 0..m {
                    if (sets_seed >> ((j * 7 + i) % 63)) & 1 == 1 {
                        mask.insert(MachineId::new(i));
                    }
                }
                MachineSet::from_mask(m, mask)
            })
            .collect();
        let placement = Placement::new(&inst, sets).unwrap();
        let factors: Vec<f64> = (0..n)
            .map(|j| if (sets_seed >> (j % 61)) & 1 == 1 { alpha } else { 1.0 / alpha })
            .collect();
        let real = Realization::from_factors(&inst, unc, &factors).unwrap();

        let engine = Engine::new(&inst, &placement, &real).unwrap();
        let result = engine.run(&mut OrderedDispatcher::fifo(&inst)).unwrap();

        // Valid (no overlap, every task once, right durations).
        result.schedule.validate(&inst, &real).unwrap();
        // Feasible (every task on an allowed machine).
        let a = result.schedule.to_assignment(&inst).unwrap();
        a.check_feasible(&placement).unwrap();
        // Work conserving on the critical machine: the makespan machine
        // has no idle time in FIFO dispatch over everywhere-eligible...
        // (general placements can force idling, so only check the global
        // bound: makespan ≤ total work.)
        prop_assert!(result.makespan <= real.total() + Time::of(1e-9));
        prop_assert!(result.makespan >= real.max() * 0.999_999_999);
        // Trace accounting: exactly n starts and n completions.
        prop_assert_eq!(result.trace.starts(), n);
        let completes = result
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Complete { .. }))
            .count();
        prop_assert_eq!(completes, n);
    }

    #[test]
    fn priority_order_is_respected_on_a_single_machine(
        est in prop::collection::vec(0.5f64..10.0, 2..12),
        perm_seed in any::<u64>(),
    ) {
        let n = est.len();
        let inst = Instance::from_estimates(&est, 1).unwrap();
        let real = Realization::exact(&inst);
        // A pseudo-random permutation as the priority order.
        let mut order: Vec<TaskId> = inst.task_ids().collect();
        let mut s = perm_seed;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let placement = Placement::everywhere(&inst);
        let engine = Engine::new(&inst, &placement, &real).unwrap();
        let result = engine
            .run(&mut OrderedDispatcher::new(order.clone()))
            .unwrap();
        let executed: Vec<TaskId> = result
            .schedule
            .slots(MachineId::new(0))
            .iter()
            .map(|s| s.task)
            .collect();
        prop_assert_eq!(executed, order);
    }

    #[test]
    fn random_placements_dont_change_total_work(
        est in prop::collection::vec(0.1f64..5.0, 1..15),
        subsets in (1usize..4).prop_flat_map(|m| {
            (Just(m), placement_strategy(15, m))
        }),
    ) {
        let (m, subsets) = subsets;
        let n = est.len();
        let inst = Instance::from_estimates(&est, m).unwrap();
        let sets: Vec<MachineSet> = (0..n)
            .map(|j| {
                let ids = &subsets[j % subsets.len()];
                MachineSet::from_mask(
                    m,
                    MachineMask::from_iter_with_capacity(
                        m,
                        ids.iter().map(|&i| MachineId::new(i)),
                    ),
                )
            })
            .collect();
        let placement = Placement::new(&inst, sets).unwrap();
        let real = Realization::exact(&inst);
        let engine = Engine::new(&inst, &placement, &real).unwrap();
        let result = engine.run(&mut OrderedDispatcher::fifo(&inst)).unwrap();
        // Total busy time across machines equals total work.
        let busy: f64 = result
            .schedule
            .all_slots()
            .iter()
            .flatten()
            .map(|s| (s.end - s.start).get())
            .sum();
        prop_assert!((busy - real.total().get()).abs() < 1e-6 * busy.max(1.0));
    }
}
