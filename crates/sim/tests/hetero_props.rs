//! Differential property tests on the heterogeneous engine path: the
//! degenerate profiles must collapse onto the homogeneous engine
//! *bit-for-bit* — a zero-latency topology under the locality-aware
//! dispatcher, and unit machine speeds under the plain dispatcher, are
//! both schedule-identical (makespan, slots, trace) to `Engine::run`
//! with an `OrderedDispatcher`. Any drift here means the hetero path
//! charges phantom costs to homogeneous workloads.

use proptest::prelude::*;
use rds_core::{
    Instance, MachineId, MachineMask, MachineSet, MachineSpeeds, NetworkTopology, Placement,
    Realization, TaskId, Uncertainty,
};
use rds_sim::{Engine, LocalityDispatcher, OrderedDispatcher, SimArena};

/// A pseudo-random k-replica placement: every task gets machine
/// `j % m` plus `k − 1` further machines drawn from the seed.
fn k_replica_placement(inst: &Instance, m: usize, k: usize, seed: u64) -> Placement {
    let sets: Vec<MachineSet> = (0..inst.n())
        .map(|j| {
            let mut mask = MachineMask::empty(m);
            mask.insert(MachineId::new(j % m));
            let mut s = seed
                .wrapping_add(j as u64)
                .wrapping_mul(6364136223846793005);
            while mask.count() < k {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                mask.insert(MachineId::new((s >> 33) as usize % m));
            }
            MachineSet::from_mask(m, mask)
        })
        .collect();
    Placement::new(inst, sets).unwrap()
}

/// A pseudo-random priority order (Fisher–Yates from a seed).
fn shuffled_order(n: usize, seed: u64) -> Vec<TaskId> {
    let mut order: Vec<TaskId> = (0..n).map(TaskId::new).collect();
    let mut s = seed | 1;
    for i in (1..n).rev() {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        order.swap(i, (s >> 33) as usize % (i + 1));
    }
    order
}

/// Two-sided realization factors in `[1/α, α]`, seed-chosen per task.
fn seeded_realization(inst: &Instance, alpha: f64, seed: u64) -> Realization {
    let unc = Uncertainty::of(alpha);
    let factors: Vec<f64> = (0..inst.n())
        .map(|j| {
            if (seed >> (j % 61)) & 1 == 1 {
                alpha
            } else {
                1.0 / alpha
            }
        })
        .collect();
    Realization::from_factors(inst, unc, &factors).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Metamorphic collapse #1: a zero-latency topology driven through
    /// the locality-aware dispatcher is schedule-identical to the plain
    /// ordered dispatcher on the homogeneous engine — locality must cost
    /// nothing when every transfer is free.
    #[test]
    fn zero_topology_locality_dispatch_matches_ordered(
        est in prop::collection::vec(0.1f64..20.0, 1..30),
        m in 1usize..6,
        seed in any::<u64>(),
        alpha in 1.0f64..2.5,
    ) {
        let inst = Instance::from_estimates(&est, m).unwrap();
        let k = 1 + (seed as usize) % m;
        let placement = k_replica_placement(&inst, m, k, seed);
        let real = seeded_realization(&inst, alpha, seed);
        let order = shuffled_order(inst.n(), seed);
        let engine = Engine::new(&inst, &placement, &real).unwrap();

        let reference = engine
            .run(&mut OrderedDispatcher::new(order.clone()))
            .unwrap();

        let zero = NetworkTopology::zero(m).unwrap();
        let mut local =
            LocalityDispatcher::new(order, &placement, zero.clone()).unwrap();
        let mut arena = SimArena::new();
        let makespan = engine
            .run_hetero_in(&mut arena, &mut local, None, Some(&zero))
            .unwrap();

        prop_assert_eq!(
            makespan.get().to_bits(),
            reference.makespan.get().to_bits()
        );
        prop_assert_eq!(&arena.per_machine_slots()[..], reference.schedule.all_slots());
        prop_assert_eq!(arena.trace().events(), reference.trace.events());
    }

    /// Metamorphic collapse #2: unit machine speeds through the hetero
    /// path are schedule-identical to the homogeneous engine — dividing
    /// every duration by `1.0` must not perturb a single bit of the
    /// schedule.
    #[test]
    fn unit_speed_hetero_run_matches_plain_run(
        est in prop::collection::vec(0.1f64..20.0, 1..30),
        m in 1usize..6,
        seed in any::<u64>(),
        alpha in 1.0f64..2.5,
    ) {
        let inst = Instance::from_estimates(&est, m).unwrap();
        let k = 1 + (seed as usize) % m;
        let placement = k_replica_placement(&inst, m, k, seed);
        let real = seeded_realization(&inst, alpha, seed);
        let order = shuffled_order(inst.n(), seed);
        let engine = Engine::new(&inst, &placement, &real).unwrap();

        let reference = engine
            .run(&mut OrderedDispatcher::new(order.clone()))
            .unwrap();

        let unit = MachineSpeeds::uniform(m).unwrap();
        let got = engine
            .run_hetero(
                &mut OrderedDispatcher::new(order),
                Some(&unit),
                None,
            )
            .unwrap();

        prop_assert_eq!(
            got.makespan.get().to_bits(),
            reference.makespan.get().to_bits()
        );
        prop_assert_eq!(got.schedule.all_slots(), reference.schedule.all_slots());
        prop_assert_eq!(got.trace.events(), reference.trace.events());
    }

    /// The combined degenerate profile (unit speeds *and* zero latency)
    /// also collapses, and re-running it through a reused arena stays
    /// deterministic run over run.
    #[test]
    fn degenerate_profile_is_deterministic_through_arena_reuse(
        est in prop::collection::vec(0.5f64..10.0, 1..20),
        m in 1usize..5,
        seed in any::<u64>(),
    ) {
        let inst = Instance::from_estimates(&est, m).unwrap();
        let k = 1 + (seed as usize) % m;
        let placement = k_replica_placement(&inst, m, k, seed);
        let real = Realization::exact(&inst);
        let order = shuffled_order(inst.n(), seed);
        let engine = Engine::new(&inst, &placement, &real).unwrap();

        let reference = engine
            .run(&mut OrderedDispatcher::new(order.clone()))
            .unwrap();

        let unit = MachineSpeeds::uniform(m).unwrap();
        let zero = NetworkTopology::zero(m).unwrap();
        let mut arena = SimArena::new();
        for _rerun in 0..2 {
            let mut local =
                LocalityDispatcher::new(order.clone(), &placement, zero.clone()).unwrap();
            let makespan = engine
                .run_hetero_in(&mut arena, &mut local, Some(&unit), Some(&zero))
                .unwrap();
            prop_assert_eq!(makespan, reference.makespan);
            prop_assert_eq!(&arena.per_machine_slots()[..], reference.schedule.all_slots());
            prop_assert_eq!(arena.trace().events(), reference.trace.events());
        }
    }
}
