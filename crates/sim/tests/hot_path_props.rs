//! Differential property tests on the engine hot path: the indexed
//! dispatch path driven through a dirty, reused arena must be
//! schedule-identical to the naive scan path on a fresh engine — with
//! instrumentation on or off — and a reused arena must never leak state
//! from a previous run into the next.

use proptest::prelude::*;
use rds_core::{
    Instance, MachineId, MachineMask, MachineSet, Placement, PlacementIndex, Realization, TaskId,
    Uncertainty,
};
use rds_sim::{Engine, OrderedDispatcher, SimArena};

/// A pseudo-random k-replica placement: every task gets machine
/// `j % m` plus `k − 1` further machines drawn from the seed.
fn k_replica_placement(inst: &Instance, m: usize, k: usize, seed: u64) -> Placement {
    let sets: Vec<MachineSet> = (0..inst.n())
        .map(|j| {
            let mut mask = MachineMask::empty(m);
            mask.insert(MachineId::new(j % m));
            let mut s = seed
                .wrapping_add(j as u64)
                .wrapping_mul(6364136223846793005);
            while mask.count() < k {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                mask.insert(MachineId::new((s >> 33) as usize % m));
            }
            MachineSet::from_mask(m, mask)
        })
        .collect();
    Placement::new(inst, sets).unwrap()
}

/// A pseudo-random priority order (Fisher–Yates from a seed).
fn shuffled_order(n: usize, seed: u64) -> Vec<TaskId> {
    let mut order: Vec<TaskId> = (0..n).map(TaskId::new).collect();
    let mut s = seed | 1;
    for i in (1..n).rev() {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        order.swap(i, (s >> 33) as usize % (i + 1));
    }
    order
}

/// Runs a throwaway simulation into `arena` so its buffers carry stale
/// state (different shape, different contents) before the run under test.
fn dirty(arena: &mut SimArena) {
    let inst = Instance::from_estimates(&[5.0, 1.0, 3.0], 2).unwrap();
    let placement = Placement::everywhere(&inst);
    let real = Realization::exact(&inst);
    let engine = Engine::new(&inst, &placement, &real).unwrap();
    engine
        .run_in(arena, &mut OrderedDispatcher::fifo(&inst))
        .unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole equivalence: for random instances, random k-replica
    /// placements, and random priority orders, the indexed dispatcher on
    /// a dirty reused arena produces bit-identical results (makespan,
    /// slots, trace) to the scan dispatcher on the fresh-allocation path
    /// — whether or not instrumentation is enabled.
    #[test]
    fn indexed_dispatch_matches_scan(
        est in prop::collection::vec(0.1f64..20.0, 1..30),
        m in 1usize..6,
        seed in any::<u64>(),
        alpha in 1.0f64..2.5,
        obs_on in any::<bool>(),
    ) {
        let n = est.len();
        let inst = Instance::from_estimates(&est, m).unwrap();
        let k = 1 + (seed as usize) % m;
        let placement = k_replica_placement(&inst, m, k, seed);
        let unc = Uncertainty::of(alpha);
        let factors: Vec<f64> = (0..n)
            .map(|j| if (seed >> (j % 61)) & 1 == 1 { alpha } else { 1.0 / alpha })
            .collect();
        let real = Realization::from_factors(&inst, unc, &factors).unwrap();
        let order = shuffled_order(n, seed);
        let engine = Engine::new(&inst, &placement, &real).unwrap();

        rds_obs::set_enabled(obs_on);
        // Reference: scan dispatcher, fresh allocations per run.
        let scan = engine.run(&mut OrderedDispatcher::new(order.clone()));
        // Under test: indexed dispatcher through a dirty, reused arena.
        let mut arena = SimArena::new();
        dirty(&mut arena);
        let mut indexed =
            OrderedDispatcher::indexed(order, &PlacementIndex::build(&placement));
        let got = engine.run_in(&mut arena, &mut indexed);
        rds_obs::set_enabled(false);

        let scan = scan.unwrap();
        let makespan = got.unwrap();
        prop_assert_eq!(makespan.get().to_bits(), scan.makespan.get().to_bits());
        prop_assert_eq!(arena.slots(), scan.schedule.all_slots());
        prop_assert_eq!(arena.trace().events(), scan.trace.events());
        prop_assert_eq!(arena.makespan(), scan.makespan);
        // And the cloning escape hatch reproduces the owned result.
        let owned = arena.to_sim_result();
        prop_assert_eq!(owned.schedule.all_slots(), scan.schedule.all_slots());
        prop_assert_eq!(owned.makespan, scan.makespan);
    }

    /// Arena reuse is invisible: running the same simulation through a
    /// dirty arena, a second time through the *same* arena, and through
    /// the legacy `Engine::run` path all agree event for event.
    #[test]
    fn arena_reuse_never_leaks_state(
        est in prop::collection::vec(0.5f64..10.0, 1..20),
        m in 1usize..5,
        seed in any::<u64>(),
    ) {
        let inst = Instance::from_estimates(&est, m).unwrap();
        let k = 1 + (seed as usize) % m;
        let placement = k_replica_placement(&inst, m, k, seed);
        let real = Realization::exact(&inst);
        let order = shuffled_order(inst.n(), seed);
        let engine = Engine::new(&inst, &placement, &real).unwrap();

        let reference = engine
            .run(&mut OrderedDispatcher::new(order.clone()))
            .unwrap();

        let mut arena = SimArena::new();
        dirty(&mut arena);
        let mut d = OrderedDispatcher::auto(order, &placement);
        for _rerun in 0..2 {
            d.reset();
            let makespan = engine.run_in(&mut arena, &mut d).unwrap();
            prop_assert_eq!(makespan, reference.makespan);
            prop_assert_eq!(arena.slots(), reference.schedule.all_slots());
            prop_assert_eq!(arena.trace().events(), reference.trace.events());
        }
    }
}
