//! Differential property tests on the engine hot path: the indexed
//! dispatch path driven through a dirty, reused arena must be
//! schedule-identical to the naive scan path on a fresh engine — with
//! instrumentation on or off — and a reused arena must never leak state
//! from a previous run into the next.

use proptest::prelude::*;
use rds_core::{
    Instance, MachineId, MachineMask, MachineSet, Placement, PlacementIndex, Realization, TaskId,
    Uncertainty,
};
use rds_sim::{
    Engine, FaultEvent, FaultScript, OrderedDispatcher, PinnedDispatcher, QueueMode,
    ResilienceEngine, SimArena,
};

/// A pseudo-random k-replica placement: every task gets machine
/// `j % m` plus `k − 1` further machines drawn from the seed.
fn k_replica_placement(inst: &Instance, m: usize, k: usize, seed: u64) -> Placement {
    let sets: Vec<MachineSet> = (0..inst.n())
        .map(|j| {
            let mut mask = MachineMask::empty(m);
            mask.insert(MachineId::new(j % m));
            let mut s = seed
                .wrapping_add(j as u64)
                .wrapping_mul(6364136223846793005);
            while mask.count() < k {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                mask.insert(MachineId::new((s >> 33) as usize % m));
            }
            MachineSet::from_mask(m, mask)
        })
        .collect();
    Placement::new(inst, sets).unwrap()
}

/// A pseudo-random priority order (Fisher–Yates from a seed).
fn shuffled_order(n: usize, seed: u64) -> Vec<TaskId> {
    let mut order: Vec<TaskId> = (0..n).map(TaskId::new).collect();
    let mut s = seed | 1;
    for i in (1..n).rev() {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        order.swap(i, (s >> 33) as usize % (i + 1));
    }
    order
}

/// Runs a throwaway simulation into `arena` so its buffers carry stale
/// state (different shape, different contents) before the run under test.
fn dirty(arena: &mut SimArena) {
    let inst = Instance::from_estimates(&[5.0, 1.0, 3.0], 2).unwrap();
    let placement = Placement::everywhere(&inst);
    let real = Realization::exact(&inst);
    let engine = Engine::new(&inst, &placement, &real).unwrap();
    engine
        .run_in(arena, &mut OrderedDispatcher::fifo(&inst))
        .unwrap();
}

/// Pins each task to one machine of its replica set (seed-chosen), so
/// the pinned dispatcher is always feasible for the placement.
fn pins_from(placement: &Placement, seed: u64) -> Vec<MachineId> {
    let m = placement.m();
    (0..placement.n())
        .map(|j| {
            let set = placement.set(TaskId::new(j));
            let count = set.count(m);
            let pick = (seed.wrapping_add(j as u64) >> 7) as usize % count;
            set.iter(m).nth(pick).unwrap()
        })
        .collect()
}

/// Estimate vectors that stress the calendar queue: all-equal times
/// (every event lands in one bucket), a huge dynamic range (forces the
/// overflow heap and may trip the degeneracy fallback), and ordinary
/// well-mixed durations.
fn pathological_estimates() -> impl Strategy<Value = Vec<f64>> {
    (
        0u8..3,
        prop::collection::vec((-6i32..=6i32, 1.0f64..9.9), 1..40),
    )
        .prop_map(|(variant, raw)| match variant {
            0 => vec![1.0; raw.len()],
            1 => raw.into_iter().map(|(e, f)| f * 10f64.powi(e)).collect(),
            _ => raw.into_iter().map(|(_, f)| f * 2.0).collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole equivalence: for random instances, random k-replica
    /// placements, and random priority orders, the indexed dispatcher on
    /// a dirty reused arena produces bit-identical results (makespan,
    /// slots, trace) to the scan dispatcher on the fresh-allocation path
    /// — whether or not instrumentation is enabled.
    #[test]
    fn indexed_dispatch_matches_scan(
        est in prop::collection::vec(0.1f64..20.0, 1..30),
        m in 1usize..6,
        seed in any::<u64>(),
        alpha in 1.0f64..2.5,
        obs_on in any::<bool>(),
    ) {
        let n = est.len();
        let inst = Instance::from_estimates(&est, m).unwrap();
        let k = 1 + (seed as usize) % m;
        let placement = k_replica_placement(&inst, m, k, seed);
        let unc = Uncertainty::of(alpha);
        let factors: Vec<f64> = (0..n)
            .map(|j| if (seed >> (j % 61)) & 1 == 1 { alpha } else { 1.0 / alpha })
            .collect();
        let real = Realization::from_factors(&inst, unc, &factors).unwrap();
        let order = shuffled_order(n, seed);
        let engine = Engine::new(&inst, &placement, &real).unwrap();

        rds_obs::set_enabled(obs_on);
        // Reference: scan dispatcher, fresh allocations per run.
        let scan = engine.run(&mut OrderedDispatcher::new(order.clone()));
        // Under test: indexed dispatcher through a dirty, reused arena.
        let mut arena = SimArena::new();
        dirty(&mut arena);
        let mut indexed =
            OrderedDispatcher::indexed(order, &PlacementIndex::build(&placement));
        let got = engine.run_in(&mut arena, &mut indexed);
        rds_obs::set_enabled(false);

        let scan = scan.unwrap();
        let makespan = got.unwrap();
        prop_assert_eq!(makespan.get().to_bits(), scan.makespan.get().to_bits());
        prop_assert_eq!(&arena.per_machine_slots()[..], scan.schedule.all_slots());
        prop_assert_eq!(arena.trace().events(), scan.trace.events());
        prop_assert_eq!(arena.makespan(), scan.makespan);
        // And the cloning escape hatch reproduces the owned result.
        let owned = arena.to_sim_result();
        prop_assert_eq!(owned.schedule.all_slots(), scan.schedule.all_slots());
        prop_assert_eq!(owned.makespan, scan.makespan);
    }

    /// Arena reuse is invisible: running the same simulation through a
    /// dirty arena, a second time through the *same* arena, and through
    /// the legacy `Engine::run` path all agree event for event.
    #[test]
    fn arena_reuse_never_leaks_state(
        est in prop::collection::vec(0.5f64..10.0, 1..20),
        m in 1usize..5,
        seed in any::<u64>(),
    ) {
        let inst = Instance::from_estimates(&est, m).unwrap();
        let k = 1 + (seed as usize) % m;
        let placement = k_replica_placement(&inst, m, k, seed);
        let real = Realization::exact(&inst);
        let order = shuffled_order(inst.n(), seed);
        let engine = Engine::new(&inst, &placement, &real).unwrap();

        let reference = engine
            .run(&mut OrderedDispatcher::new(order.clone()))
            .unwrap();

        let mut arena = SimArena::new();
        dirty(&mut arena);
        let mut d = OrderedDispatcher::auto(order, &placement);
        for _rerun in 0..2 {
            d.reset();
            let makespan = engine.run_in(&mut arena, &mut d).unwrap();
            prop_assert_eq!(makespan, reference.makespan);
            prop_assert_eq!(&arena.per_machine_slots()[..], reference.schedule.all_slots());
            prop_assert_eq!(arena.trace().events(), reference.trace.events());
        }
    }

    /// The bucketed calendar queue is an implementation detail: forcing
    /// it must produce byte-identical results to the forced binary heap
    /// for both dispatcher families, through dirty reused arenas, under
    /// pathological time distributions (all-equal timestamps collapse
    /// every event into one bucket; a 12-orders-of-magnitude spread
    /// drives the overflow heap and the degeneracy fallback).
    #[test]
    fn bucketed_queue_is_trace_identical_to_heap(
        est in pathological_estimates(),
        m in 1usize..6,
        seed in any::<u64>(),
        alpha in 1.0f64..2.0,
        pinned in any::<bool>(),
    ) {
        let n = est.len();
        let inst = Instance::from_estimates(&est, m).unwrap();
        let k = 1 + (seed as usize) % m;
        let placement = k_replica_placement(&inst, m, k, seed);
        let unc = Uncertainty::of(alpha);
        let factors: Vec<f64> = (0..n)
            .map(|j| if (seed >> (j % 61)) & 1 == 1 { alpha } else { 1.0 / alpha })
            .collect();
        let real = Realization::from_factors(&inst, unc, &factors).unwrap();
        let order = shuffled_order(n, seed);
        let engine = Engine::new(&inst, &placement, &real).unwrap();
        let pins = pins_from(&placement, seed);

        let run_with = |mode: QueueMode| {
            let mut arena = SimArena::new();
            dirty(&mut arena);
            arena.set_queue_mode(mode);
            let makespan = if pinned {
                let mut d = PinnedDispatcher::new(&pins, m);
                engine.run_in(&mut arena, &mut d)
            } else {
                let mut d = OrderedDispatcher::new(order.clone());
                engine.run_in(&mut arena, &mut d)
            };
            (makespan.unwrap(), arena)
        };

        let (heap_ms, heap_arena) = run_with(QueueMode::Heap);
        let (bucket_ms, bucket_arena) = run_with(QueueMode::Bucketed);
        prop_assert_eq!(heap_ms.get().to_bits(), bucket_ms.get().to_bits());
        prop_assert_eq!(heap_arena.trace().events(), bucket_arena.trace().events());
        prop_assert_eq!(
            &heap_arena.per_machine_slots()[..],
            &bucket_arena.per_machine_slots()[..]
        );
    }

    /// The resilience engine's scratch-reusing path (`run_in`, twice on
    /// one arena whose scratch already carries a different-shaped trial)
    /// reproduces the fresh-allocation `run` exactly: outcome, slots,
    /// trace, and metrics.
    #[test]
    fn faults_run_in_matches_run_across_scratch_reuse(
        est in prop::collection::vec(0.5f64..10.0, 2..20),
        m in 2usize..5,
        seed in any::<u64>(),
        crash_at in 0.5f64..8.0,
        factor in 1.5f64..4.0,
    ) {
        let n = est.len();
        let inst = Instance::from_estimates(&est, m).unwrap();
        let placement = k_replica_placement(&inst, m, 1 + (seed as usize) % m, seed);
        let real = Realization::exact(&inst);
        let script = FaultScript::new(vec![
            FaultEvent::Crash { machine: MachineId::new(0), at: rds_core::Time::of(crash_at) },
            FaultEvent::Outage {
                machine: MachineId::new(m - 1),
                at: rds_core::Time::of(crash_at / 2.0),
                down_for: rds_core::Time::of(1.0),
            },
            FaultEvent::Straggler { task: TaskId::new(n - 1), factor },
        ]);
        let engine = ResilienceEngine::new(&inst, &placement, &real, &script).unwrap();
        let order = shuffled_order(n, seed);

        let reference = engine
            .run(&mut OrderedDispatcher::new(order.clone()))
            .unwrap();

        let mut arena = SimArena::new();
        // Seed the scratch with a different-shaped trial first.
        {
            let small = Instance::from_estimates(&[2.0, 1.0], 2).unwrap();
            let p = Placement::everywhere(&small);
            let r = Realization::exact(&small);
            let s = FaultScript::new(vec![]);
            ResilienceEngine::new(&small, &p, &r, &s)
                .unwrap()
                .run_in(&mut arena, &mut OrderedDispatcher::fifo(&small))
                .unwrap();
        }
        for _rerun in 0..2 {
            let got = engine
                .run_in(&mut arena, &mut OrderedDispatcher::new(order.clone()))
                .unwrap();
            prop_assert_eq!(&got.outcome, &reference.outcome);
            prop_assert_eq!(got.schedule.all_slots(), reference.schedule.all_slots());
            prop_assert_eq!(got.trace.events(), reference.trace.events());
            prop_assert_eq!(got.metrics, reference.metrics);
        }
    }
}

/// The acceptance sweep for the million-task engine refactor: 500
/// seeded cases spanning every placement shape (span groups — the CSR
/// fast path —, k-replica masks, everywhere, single-machine pins),
/// each executed twice: a reference run (binary heap, plain scan
/// dispatcher, fresh allocations) and the optimized run (calendar
/// queue, indexed slotted dispatcher, one arena reused across all 500
/// cases). Makespan bits, trace, and derived slots must all agree.
#[test]
fn conformance_sweep_500_cases_schedule_identical() {
    let mut arena = SimArena::new();
    arena.set_queue_mode(QueueMode::Bucketed);
    dirty(&mut arena);
    let mut s: u64 = 0x95EEDCA5E;
    let mut rand = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s >> 33
    };
    for case in 0..500u64 {
        let seed = rand();
        let n = 1 + (rand() as usize) % 120;
        let m = 1 + (rand() as usize) % 12;
        let est: Vec<f64> = (0..n)
            .map(|_| 0.5 + (rand() % 1000) as f64 / 50.0)
            .collect();
        let inst = Instance::from_estimates(&est, m).unwrap();
        let placement = match case % 4 {
            // Span groups of 2 machines — the layout the paper's
            // strategies emit and the CSR dispatch path serves.
            0 => {
                let groups = m.div_ceil(2);
                let sets: Vec<MachineSet> = (0..n)
                    .map(|j| {
                        let g = (j % groups) as u32;
                        MachineSet::Span {
                            start: g * 2,
                            end: ((g + 1) * 2).min(m as u32),
                        }
                    })
                    .collect();
                Placement::new(&inst, sets).unwrap()
            }
            1 => k_replica_placement(&inst, m, 1 + (seed as usize) % m, seed),
            2 => Placement::everywhere(&inst),
            _ => {
                let pins: Vec<MachineId> = (0..n)
                    .map(|_| MachineId::new(rand() as usize % m))
                    .collect();
                Placement::pinned(&inst, &pins).unwrap()
            }
        };
        let alpha = 1.0 + (rand() % 150) as f64 / 100.0;
        let unc = Uncertainty::of(alpha);
        let factors: Vec<f64> = (0..n)
            .map(|_| if rand() & 1 == 1 { alpha } else { 1.0 })
            .collect();
        let real = Realization::from_factors(&inst, unc, &factors).unwrap();
        let order = shuffled_order(n, seed);
        let engine = Engine::new(&inst, &placement, &real).unwrap();

        let reference = engine
            .run(&mut OrderedDispatcher::new(order.clone()))
            .unwrap();
        let mut d = OrderedDispatcher::auto(order, &placement);
        let makespan = engine.run_in(&mut arena, &mut d).unwrap();

        assert_eq!(
            makespan.get().to_bits(),
            reference.makespan.get().to_bits(),
            "case {case}: makespan diverged (n={n}, m={m})"
        );
        assert_eq!(
            arena.trace().events(),
            reference.trace.events(),
            "case {case}: trace diverged (n={n}, m={m})"
        );
        assert_eq!(
            &arena.per_machine_slots()[..],
            reference.schedule.all_slots(),
            "case {case}: slots diverged (n={n}, m={m})"
        );
    }
}
