//! Property tests on the resilience engine: replication is the
//! fault-tolerance mechanism.
//!
//! The invariant mirrors the Hadoop motivation: if every task's data
//! lives on at least two distinct machines and fewer than two machines
//! ever fail (crash or outage), no task can strand — the run always
//! completes, with a finite makespan no better than the fault-free one.

use proptest::prelude::*;
use rds_core::{
    Instance, MachineId, MachineMask, MachineSet, Placement, Realization, Time, Uncertainty,
};
use rds_sim::faults::{FaultEvent, FaultScript, ResilienceEngine, Speculation};
use rds_sim::OrderedDispatcher;

/// A placement giving task `j` replicas on at least two distinct
/// machines, plus pseudo-random extras drawn from `seed`.
fn two_replica_placement(inst: &Instance, m: usize, seed: u64) -> Placement {
    let sets: Vec<MachineSet> = (0..inst.n())
        .map(|j| {
            let mut mask = MachineMask::empty(m);
            mask.insert(MachineId::new(j % m));
            mask.insert(MachineId::new((j + 1 + (seed as usize % (m - 1))) % m));
            for i in 0..m {
                if (seed >> ((j * 5 + i) % 59)) & 1 == 1 {
                    mask.insert(MachineId::new(i));
                }
            }
            MachineSet::from_mask(m, mask)
        })
        .collect();
    Placement::new(inst, sets).unwrap()
}

/// A fault script whose crash/outage events all target one machine.
/// Slowdowns on other machines are allowed: a degraded machine has not
/// failed — its data stays reachable.
fn single_machine_failures(m: usize, horizon: f64, seed: u64) -> FaultScript {
    let victim = MachineId::new((seed % m as u64) as usize);
    let at = Time::of(horizon * ((seed >> 8) % 1000) as f64 / 1000.0);
    let mut events = Vec::new();
    match (seed >> 20) % 3 {
        0 => events.push(FaultEvent::Crash {
            machine: victim,
            at,
        }),
        1 => events.push(FaultEvent::Outage {
            machine: victim,
            at,
            down_for: Time::of(0.1 + horizon * ((seed >> 28) % 500) as f64 / 1000.0),
        }),
        _ => {
            // Crash preceded by an outage on the same machine: still
            // only one machine ever fails.
            events.push(FaultEvent::Outage {
                machine: victim,
                at,
                down_for: Time::of(horizon),
            });
            events.push(FaultEvent::Crash {
                machine: victim,
                at: at + Time::of(horizon * 0.5),
            });
        }
    }
    if (seed >> 40) & 1 == 1 {
        let other = MachineId::new(((seed % m as u64) as usize + 1) % m);
        events.push(FaultEvent::Slowdown {
            machine: other,
            at: Time::of(horizon * 0.25),
            lasting: Time::of(horizon * 0.5),
            speed: 0.5,
        });
    }
    FaultScript::new(events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn two_replicas_survive_any_single_machine_failure(
        est in prop::collection::vec(0.5f64..10.0, 2..20),
        m in 2usize..6,
        seed in any::<u64>(),
        alpha in 1.0f64..2.0,
        speculate in any::<bool>(),
    ) {
        let inst = Instance::from_estimates(&est, m).unwrap();
        let unc = Uncertainty::of(alpha);
        let placement = two_replica_placement(&inst, m, seed);
        let factors: Vec<f64> = (0..inst.n())
            .map(|j| if (seed >> (j % 61)) & 1 == 1 { alpha } else { 1.0 / alpha })
            .collect();
        let real = Realization::from_factors(&inst, unc, &factors).unwrap();
        let horizon = real.total().get();
        let script = single_machine_failures(m, horizon, seed);
        script.validate(&inst).unwrap();

        let run = |script: &FaultScript| {
            let mut engine =
                ResilienceEngine::new(&inst, &placement, &real, script).unwrap();
            if speculate {
                engine = engine.with_speculation(Speculation::new(1.5, unc));
            }
            engine.run(&mut OrderedDispatcher::lpt_by_estimate(&inst)).unwrap()
        };
        let baseline = run(&FaultScript::empty());
        let faulty = run(&script);

        // Never stranded: with two live replicas per task and at most
        // one failed machine, every task completes.
        prop_assert!(
            faulty.outcome.is_completed(),
            "stranded: {:?} under {:?}",
            faulty.outcome,
            script
        );
        prop_assert_eq!(faulty.metrics.completed, inst.n());
        prop_assert!((faulty.metrics.survival_rate() - 1.0).abs() < 1e-12);

        // Finite makespan, no better than the fault-free run.
        prop_assert!(faulty.metrics.makespan.get().is_finite());
        prop_assert!(
            faulty.metrics.makespan + Time::of(1e-9) >= baseline.metrics.makespan,
            "faulty {} < fault-free {} under {:?}",
            faulty.metrics.makespan,
            baseline.metrics.makespan,
            script
        );

        // Sanity on the baseline itself: zero faults complete everything
        // with no restarts.
        prop_assert!(baseline.outcome.is_completed());
        prop_assert_eq!(baseline.metrics.restarts, 0);
    }
}
