//! Continuous task-arrival processes for the streaming scheduler.
//!
//! Batch experiments hand the scheduler a finished [`rds_core::Instance`];
//! the serve path instead consumes an *arrival stream*: tasks appear one
//! at a time at increasing virtual times, each carrying an estimate drawn
//! from an [`EstimateDistribution`]. Three processes cover the scenarios
//! ROADMAP item 1 names:
//!
//! - [`ArrivalProcess::Poisson`]: memoryless arrivals at a constant rate
//!   (exponential inter-arrival gaps via inverse CDF);
//! - [`ArrivalProcess::Bursty`]: a periodic two-phase modulated Poisson
//!   process — each period opens with a burst phase at `burst_rate`,
//!   then relaxes to `base_rate` — the overload shape the admission
//!   layer's watermarks are tested against;
//! - [`ArrivalProcess::Trace`]: replay of explicit arrival instants
//!   (e.g. parsed from a CSV trace file by the CLI).
//!
//! All sampling is seeded: the same `(process, estimates, seed)` triple
//! reproduces the identical stream, which is what lets crash recovery
//! replay a run deterministically.

use rand::Rng;
use rds_core::{Error, Result};

use crate::estimates::EstimateDistribution;
use crate::rng;

/// How task arrival *times* are generated.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson process with `rate` arrivals per unit time.
    Poisson {
        /// Mean arrivals per unit of virtual time (`> 0`).
        rate: f64,
    },
    /// Periodic two-phase modulated Poisson process. Each period of
    /// length `period` begins with a burst window of length
    /// `burst_fraction · period` at `burst_rate`, followed by a calm
    /// window at `base_rate`.
    Bursty {
        /// Rate outside bursts (`> 0`).
        base_rate: f64,
        /// Rate inside bursts (`>= base_rate`).
        burst_rate: f64,
        /// Length of one burst+calm cycle (`> 0`).
        period: f64,
        /// Fraction of each period spent bursting (in `[0, 1]`).
        burst_fraction: f64,
    },
    /// Replay explicit arrival instants (must be finite, non-negative,
    /// and non-decreasing).
    Trace {
        /// Arrival times in non-decreasing order.
        times: Vec<f64>,
    },
}

impl ArrivalProcess {
    /// Checks the parameters against their documented domain.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] on non-finite or out-of-range values.
    pub fn validate(&self) -> Result<()> {
        fn bad(what: &'static str) -> Result<()> {
            Err(Error::InvalidParameter { what })
        }
        match *self {
            ArrivalProcess::Poisson { rate } => {
                if !(rate.is_finite() && rate > 0.0) {
                    return bad("Poisson.rate must be finite and > 0");
                }
            }
            ArrivalProcess::Bursty {
                base_rate,
                burst_rate,
                period,
                burst_fraction,
            } => {
                if !(base_rate.is_finite() && base_rate > 0.0) {
                    return bad("Bursty.base_rate must be finite and > 0");
                }
                if !(burst_rate.is_finite() && burst_rate >= base_rate) {
                    return bad("Bursty.burst_rate must be finite and >= base_rate");
                }
                if !(period.is_finite() && period > 0.0) {
                    return bad("Bursty.period must be finite and > 0");
                }
                if !(burst_fraction.is_finite() && (0.0..=1.0).contains(&burst_fraction)) {
                    return bad("Bursty.burst_fraction must be in [0, 1]");
                }
            }
            ArrivalProcess::Trace { ref times } => {
                let mut prev = 0.0_f64;
                for &t in times {
                    if !(t.is_finite() && t >= prev) {
                        return bad("Trace.times must be finite, >= 0, and non-decreasing");
                    }
                    prev = t;
                }
            }
        }
        Ok(())
    }

    /// The piecewise-constant instantaneous rate at virtual time `t`
    /// (traces report `0`; they are not rate-driven).
    pub fn rate_at(&self, t: f64) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::Bursty {
                base_rate,
                burst_rate,
                period,
                burst_fraction,
            } => {
                let phase = t.rem_euclid(period);
                if phase < burst_fraction * period {
                    burst_rate
                } else {
                    base_rate
                }
            }
            ArrivalProcess::Trace { .. } => 0.0,
        }
    }
}

/// One task arrival: when it appears and the estimate the scheduler sees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Arrival index (0-based admission sequence number of the stream).
    pub seq: u64,
    /// Virtual arrival instant.
    pub at: f64,
    /// Estimated processing time `p̃` revealed on arrival.
    pub estimate: f64,
}

/// Seeded iterator over an arrival stream: times from an
/// [`ArrivalProcess`], estimates from an [`EstimateDistribution`].
///
/// The generator owns its RNG (seeded at construction), so the stream
/// is a pure function of `(process, estimates, seed, count)` — consumed
/// lazily one arrival at a time with O(1) state.
#[derive(Debug)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    estimates: EstimateDistribution,
    rng: rand::rngs::StdRng,
    now: f64,
    seq: u64,
    remaining: u64,
}

impl ArrivalGen {
    /// Builds a generator producing at most `count` arrivals.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] if either distribution is out of
    /// domain.
    pub fn new(
        process: ArrivalProcess,
        estimates: EstimateDistribution,
        count: u64,
        seed: u64,
    ) -> Result<Self> {
        process.validate()?;
        estimates.validate()?;
        Ok(ArrivalGen {
            process,
            estimates,
            rng: rng::rng(seed),
            now: 0.0,
            seq: 0,
            remaining: count,
        })
    }

    /// Arrivals still to be produced.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Samples the next inter-arrival gap for a piecewise-constant-rate
    /// process by spending a unit-exponential draw across rate phases
    /// (exact for modulated Poisson: within a phase of rate `λ`, an
    /// exponential budget `e` buys `e/λ` time).
    fn next_gap(&mut self) -> f64 {
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let mut budget = -u.ln();
        let mut t = self.now;
        loop {
            let rate = self.process.rate_at(t);
            let phase_end = match self.process {
                ArrivalProcess::Bursty {
                    period,
                    burst_fraction,
                    ..
                } => {
                    let phase = t.rem_euclid(period);
                    let cycle_start = t - phase;
                    if phase < burst_fraction * period {
                        cycle_start + burst_fraction * period
                    } else {
                        cycle_start + period
                    }
                }
                _ => f64::INFINITY,
            };
            let span = phase_end - t;
            if budget <= rate * span || !phase_end.is_finite() {
                return t + budget / rate - self.now;
            }
            budget -= rate * span;
            t = phase_end;
        }
    }

    /// Produces the next arrival, or `None` when the stream is
    /// exhausted (count reached, or trace fully replayed).
    pub fn next_arrival(&mut self) -> Option<Arrival> {
        if self.remaining == 0 {
            return None;
        }
        let at = match self.process {
            ArrivalProcess::Trace { ref times } => {
                let i = self.seq as usize;
                if i >= times.len() {
                    self.remaining = 0;
                    return None;
                }
                times[i]
            }
            _ => self.now + self.next_gap(),
        };
        let estimate = self.estimates.sample(&mut self.rng);
        let a = Arrival {
            seq: self.seq,
            at,
            estimate,
        };
        self.now = at;
        self.seq += 1;
        self.remaining -= 1;
        Some(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(mut g: ArrivalGen) -> Vec<Arrival> {
        let mut v = Vec::new();
        while let Some(a) = g.next_arrival() {
            v.push(a);
        }
        v
    }

    #[test]
    fn poisson_is_seeded_and_monotone() {
        let mk = || {
            ArrivalGen::new(
                ArrivalProcess::Poisson { rate: 4.0 },
                EstimateDistribution::Uniform { lo: 1.0, hi: 2.0 },
                500,
                42,
            )
            .unwrap()
        };
        let a = drain(mk());
        let b = drain(mk());
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        for w in a.windows(2) {
            assert!(w[1].at >= w[0].at);
        }
        // Mean inter-arrival ≈ 1/rate.
        let mean = a.last().unwrap().at / a.len() as f64;
        assert!(
            (mean - 0.25).abs() < 0.05,
            "mean gap {mean} far from 1/rate"
        );
    }

    #[test]
    fn bursty_rate_modulates() {
        let p = ArrivalProcess::Bursty {
            base_rate: 2.0,
            burst_rate: 20.0,
            period: 10.0,
            burst_fraction: 0.3,
        };
        assert_eq!(p.rate_at(0.0), 20.0);
        assert_eq!(p.rate_at(2.9), 20.0);
        assert_eq!(p.rate_at(3.1), 2.0);
        assert_eq!(p.rate_at(13.1), 2.0);
        let g =
            ArrivalGen::new(p, EstimateDistribution::Identical { value: 1.0 }, 2000, 7).unwrap();
        let a = drain(g);
        assert_eq!(a.len(), 2000);
        // Arrivals concentrate in burst windows: count those landing in
        // the first 30% of each period.
        let in_burst = a.iter().filter(|x| x.at.rem_euclid(10.0) < 3.0).count() as f64;
        let frac = in_burst / a.len() as f64;
        // Expected fraction = 20·3 / (20·3 + 2·7) = 60/74 ≈ 0.81.
        assert!(frac > 0.7, "burst fraction {frac} too low");
    }

    #[test]
    fn trace_replays_exact_times() {
        let g = ArrivalGen::new(
            ArrivalProcess::Trace {
                times: vec![0.0, 0.5, 0.5, 3.25],
            },
            EstimateDistribution::Identical { value: 2.0 },
            10,
            1,
        )
        .unwrap();
        let a = drain(g);
        assert_eq!(a.len(), 4);
        assert_eq!(a[2].at, 0.5);
        assert_eq!(a[3].at, 3.25);
        assert!(a.iter().all(|x| x.estimate == 2.0));
        assert_eq!(a[3].seq, 3);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(ArrivalProcess::Poisson { rate: 0.0 }.validate().is_err());
        assert!(ArrivalProcess::Poisson { rate: f64::NAN }
            .validate()
            .is_err());
        assert!(ArrivalProcess::Bursty {
            base_rate: 5.0,
            burst_rate: 1.0,
            period: 10.0,
            burst_fraction: 0.5,
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::Trace {
            times: vec![1.0, 0.5],
        }
        .validate()
        .is_err());
        assert!(ArrivalGen::new(
            ArrivalProcess::Poisson { rate: -1.0 },
            EstimateDistribution::Identical { value: 1.0 },
            1,
            0,
        )
        .is_err());
    }

    #[test]
    fn count_caps_the_stream() {
        let g = ArrivalGen::new(
            ArrivalProcess::Poisson { rate: 1.0 },
            EstimateDistribution::Exponential { mean: 1.0 },
            3,
            9,
        )
        .unwrap();
        assert_eq!(drain(g).len(), 3);
    }
}
