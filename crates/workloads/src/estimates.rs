//! Estimated-processing-time distributions.
//!
//! These generate the `p̃_j` the scheduler sees. The shapes mirror the
//! application domains the paper motivates: near-uniform kernels,
//! bimodal mixes (short bookkeeping + long compute), heavy-tailed
//! out-of-core workloads, and the identical-task instances the adversary
//! analysis uses.

use rand::Rng;
use rds_core::{Error, Result};

/// A distribution over estimated processing times.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimateDistribution {
    /// Every task has the same estimate (the Theorem-1 adversary shape).
    Identical {
        /// The common estimate.
        value: f64,
    },
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Smallest estimate.
        lo: f64,
        /// Largest estimate.
        hi: f64,
    },
    /// Two-point mixture: `short` with probability `1 − p_long`, `long`
    /// otherwise. Models a few heavy stragglers among light tasks.
    Bimodal {
        /// Duration of the common short tasks.
        short: f64,
        /// Duration of the rare long tasks.
        long: f64,
        /// Probability a task is long.
        p_long: f64,
    },
    /// Exponential with the given mean (via inverse CDF).
    Exponential {
        /// Mean estimate.
        mean: f64,
    },
    /// Bounded Pareto-like heavy tail: `lo · u^(−1/shape)` truncated at
    /// `cap`. Models out-of-core block sizes.
    HeavyTail {
        /// Scale (minimum value).
        lo: f64,
        /// Tail exponent (`> 0`; smaller = heavier).
        shape: f64,
        /// Truncation cap.
        cap: f64,
    },
}

impl EstimateDistribution {
    /// Checks the parameters against their documented domain.
    ///
    /// Non-finite (NaN/±∞) or out-of-range parameters yield
    /// [`Error::InvalidParameter`]. Call this at the construction
    /// boundary so a bad value surfaces as a typed error instead of a
    /// panic (or a NaN-poisoned sort) mid-solve.
    pub fn validate(&self) -> Result<()> {
        fn bad(what: &'static str) -> Result<()> {
            Err(Error::InvalidParameter { what })
        }
        match *self {
            EstimateDistribution::Identical { value } => {
                if !(value.is_finite() && value >= 0.0) {
                    return bad("Identical.value must be finite and >= 0");
                }
            }
            EstimateDistribution::Uniform { lo, hi } => {
                if !(lo.is_finite() && hi.is_finite() && 0.0 <= lo && lo <= hi) {
                    return bad("Uniform requires finite 0 <= lo <= hi");
                }
            }
            EstimateDistribution::Bimodal {
                short,
                long,
                p_long,
            } => {
                if !(short.is_finite() && short >= 0.0 && long.is_finite() && long >= 0.0) {
                    return bad("Bimodal modes must be finite and >= 0");
                }
                if !(p_long.is_finite() && (0.0..=1.0).contains(&p_long)) {
                    return bad("Bimodal.p_long must be in [0, 1]");
                }
            }
            EstimateDistribution::Exponential { mean } => {
                if !(mean.is_finite() && mean > 0.0) {
                    return bad("Exponential.mean must be finite and > 0");
                }
            }
            EstimateDistribution::HeavyTail { lo, shape, cap } => {
                if !(lo.is_finite() && cap.is_finite() && lo > 0.0 && cap >= lo) {
                    return bad("HeavyTail requires finite 0 < lo <= cap");
                }
                if !(shape.is_finite() && shape > 0.0) {
                    return bad("HeavyTail.shape must be finite and > 0");
                }
            }
        }
        Ok(())
    }

    /// Samples one estimate.
    ///
    /// # Panics
    /// Panics (in debug) if the distribution parameters are out of their
    /// documented domain.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        match *self {
            EstimateDistribution::Identical { value } => {
                debug_assert!(value >= 0.0);
                value
            }
            EstimateDistribution::Uniform { lo, hi } => {
                debug_assert!(0.0 <= lo && lo <= hi);
                if lo == hi {
                    lo
                } else {
                    rng.gen_range(lo..=hi)
                }
            }
            EstimateDistribution::Bimodal {
                short,
                long,
                p_long,
            } => {
                debug_assert!((0.0..=1.0).contains(&p_long));
                if rng.gen::<f64>() < p_long {
                    long
                } else {
                    short
                }
            }
            EstimateDistribution::Exponential { mean } => {
                debug_assert!(mean > 0.0);
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                -mean * u.ln()
            }
            EstimateDistribution::HeavyTail { lo, shape, cap } => {
                debug_assert!(lo > 0.0 && shape > 0.0 && cap >= lo);
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                (lo * u.powf(-1.0 / shape)).min(cap)
            }
        }
    }

    /// Samples `n` estimates.
    pub fn sample_n(&self, n: usize, rng: &mut impl Rng) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng;

    #[test]
    fn identical_is_constant() {
        let mut r = rng(1);
        let d = EstimateDistribution::Identical { value: 3.5 };
        assert!(d.sample_n(10, &mut r).iter().all(|&v| v == 3.5));
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut r = rng(2);
        let d = EstimateDistribution::Uniform { lo: 2.0, hi: 5.0 };
        for v in d.sample_n(1000, &mut r) {
            assert!((2.0..=5.0).contains(&v));
        }
        // Degenerate range.
        let d = EstimateDistribution::Uniform { lo: 3.0, hi: 3.0 };
        assert_eq!(d.sample(&mut r), 3.0);
    }

    #[test]
    fn bimodal_hits_both_modes() {
        let mut r = rng(3);
        let d = EstimateDistribution::Bimodal {
            short: 1.0,
            long: 100.0,
            p_long: 0.2,
        };
        let samples = d.sample_n(2000, &mut r);
        let longs = samples.iter().filter(|&&v| v == 100.0).count();
        let shorts = samples.iter().filter(|&&v| v == 1.0).count();
        assert_eq!(longs + shorts, 2000);
        // 0.2 ± generous slack.
        assert!((300..500).contains(&longs), "longs = {longs}");
    }

    #[test]
    fn exponential_mean_roughly_right() {
        let mut r = rng(4);
        let d = EstimateDistribution::Exponential { mean: 4.0 };
        let samples = d.sample_n(20_000, &mut r);
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 4.0).abs() < 0.2, "mean = {mean}");
        assert!(samples.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn validate_accepts_documented_domains() {
        let good = [
            EstimateDistribution::Identical { value: 0.0 },
            EstimateDistribution::Uniform { lo: 1.0, hi: 1.0 },
            EstimateDistribution::Bimodal {
                short: 1.0,
                long: 9.0,
                p_long: 0.0,
            },
            EstimateDistribution::Exponential { mean: 2.0 },
            EstimateDistribution::HeavyTail {
                lo: 1.0,
                shape: 1.5,
                cap: 10.0,
            },
        ];
        for d in good {
            assert!(d.validate().is_ok(), "{d:?}");
        }
    }

    #[test]
    fn validate_rejects_non_finite_with_typed_error() {
        use rds_core::Error;
        let bad = [
            EstimateDistribution::Identical { value: f64::NAN },
            EstimateDistribution::Identical {
                value: f64::INFINITY,
            },
            EstimateDistribution::Uniform {
                lo: f64::NAN,
                hi: 1.0,
            },
            EstimateDistribution::Uniform {
                lo: 0.0,
                hi: f64::INFINITY,
            },
            EstimateDistribution::Uniform { lo: 2.0, hi: 1.0 },
            EstimateDistribution::Bimodal {
                short: f64::NAN,
                long: 1.0,
                p_long: 0.5,
            },
            EstimateDistribution::Bimodal {
                short: 1.0,
                long: 2.0,
                p_long: f64::NAN,
            },
            EstimateDistribution::Exponential { mean: f64::NAN },
            EstimateDistribution::Exponential { mean: 0.0 },
            EstimateDistribution::HeavyTail {
                lo: f64::NAN,
                shape: 1.0,
                cap: 2.0,
            },
            EstimateDistribution::HeavyTail {
                lo: 1.0,
                shape: f64::INFINITY,
                cap: 0.5,
            },
        ];
        for d in bad {
            match d.validate() {
                Err(Error::InvalidParameter { .. }) => {}
                other => panic!("{d:?}: expected InvalidParameter, got {other:?}"),
            }
        }
    }

    #[test]
    fn heavy_tail_bounded_and_heavy() {
        let mut r = rng(5);
        let d = EstimateDistribution::HeavyTail {
            lo: 1.0,
            shape: 1.1,
            cap: 1000.0,
        };
        let samples = d.sample_n(20_000, &mut r);
        assert!(samples.iter().all(|&v| (1.0..=1000.0).contains(&v)));
        // A heavy tail produces some large values.
        assert!(samples.iter().any(|&v| v > 100.0));
        // …but the median stays small.
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        assert!(sorted[samples.len() / 2] < 3.0);
    }
}
