//! MTBF-driven fault-workload generation.
//!
//! Produces [`FaultScript`]s for the resilience engine from a cluster
//! reliability model: each machine suffers failures as a Poisson process
//! with the given mean time between failures, each failure drawn from a
//! weighted mix of permanent crashes, transient outages, and
//! degraded-speed phases. Independently, each task may be a straggler
//! whose actual time violates the `α` envelope.
//!
//! Generation is fully deterministic in the RNG, so fault campaigns in
//! EXPERIMENTS.md regenerate bit-for-bit.

use rand::rngs::StdRng;
use rand::Rng;
use rds_core::{MachineId, TaskId, Time};
use rds_sim::faults::{FaultEvent, FaultScript};

/// A cluster reliability model: MTBF plus a fault-shape mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Mean time between failures per machine. `<= 0` disables machine
    /// faults entirely.
    pub mtbf: f64,
    /// Faults are generated in `[0, horizon)`.
    pub horizon: f64,
    /// Relative weight of permanent crashes in the mix.
    pub crash_weight: f64,
    /// Relative weight of transient outages in the mix.
    pub outage_weight: f64,
    /// Relative weight of degraded-speed phases in the mix.
    pub slowdown_weight: f64,
    /// Mean outage length (exponentially distributed).
    pub mean_downtime: f64,
    /// Processing-speed fraction during a degraded phase.
    pub slowdown_speed: f64,
    /// Mean degraded-phase length (exponentially distributed).
    pub mean_slowdown: f64,
    /// Independent probability that a task is a straggler.
    pub straggler_rate: f64,
    /// Actual-time multiplier applied to straggling tasks.
    pub straggler_factor: f64,
}

impl FaultModel {
    /// The standard mix for a given MTBF and horizon: mostly transient
    /// trouble (50% outages, 30% slowdowns at half speed) with 20%
    /// permanent crashes; recovery times scale with the MTBF. Stragglers
    /// are off — opt in with [`FaultModel::with_stragglers`].
    pub fn mtbf(mtbf: f64, horizon: f64) -> Self {
        FaultModel {
            mtbf,
            horizon,
            crash_weight: 0.2,
            outage_weight: 0.5,
            slowdown_weight: 0.3,
            mean_downtime: mtbf / 5.0,
            slowdown_speed: 0.5,
            mean_slowdown: mtbf / 5.0,
            straggler_rate: 0.0,
            straggler_factor: 3.0,
        }
    }

    /// Enables envelope-violating stragglers.
    pub fn with_stragglers(mut self, rate: f64, factor: f64) -> Self {
        self.straggler_rate = rate;
        self.straggler_factor = factor;
        self
    }

    /// Samples a fault script for `m` machines and `n` tasks.
    ///
    /// Each machine's failure times are a Poisson process (exponential
    /// inter-arrival with mean `mtbf`) truncated at `horizon`; a crash
    /// ends the machine's stream (nothing fails twice permanently).
    pub fn generate(&self, m: usize, n: usize, rng: &mut StdRng) -> FaultScript {
        let mut events = Vec::new();
        let total = self.crash_weight + self.outage_weight + self.slowdown_weight;
        if self.mtbf > 0.0 && self.horizon > 0.0 && total > 0.0 {
            for i in 0..m {
                let machine = MachineId::new(i);
                let mut t = 0.0;
                loop {
                    t += exponential(self.mtbf, rng);
                    if t >= self.horizon {
                        break;
                    }
                    let pick = rng.gen::<f64>() * total;
                    if pick < self.crash_weight {
                        events.push(FaultEvent::Crash {
                            machine,
                            at: Time::of(t),
                        });
                        break; // permanent: the stream ends here
                    } else if pick < self.crash_weight + self.outage_weight {
                        events.push(FaultEvent::Outage {
                            machine,
                            at: Time::of(t),
                            down_for: Time::of(exponential(self.mean_downtime, rng)),
                        });
                    } else {
                        events.push(FaultEvent::Slowdown {
                            machine,
                            at: Time::of(t),
                            lasting: Time::of(exponential(self.mean_slowdown, rng)),
                            speed: self.slowdown_speed,
                        });
                    }
                }
            }
        }
        if self.straggler_rate > 0.0 {
            for j in 0..n {
                if rng.gen_bool(self.straggler_rate.min(1.0)) {
                    events.push(FaultEvent::Straggler {
                        task: TaskId::new(j),
                        factor: self.straggler_factor,
                    });
                }
            }
        }
        FaultScript::new(events)
    }
}

/// Exponential sample with the given mean (0 when the mean is not
/// positive).
fn exponential(mean: f64, rng: &mut StdRng) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    let u: f64 = rng.gen();
    -mean * (1.0 - u).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng;

    #[test]
    fn zero_mtbf_generates_nothing() {
        let model = FaultModel::mtbf(0.0, 100.0);
        let script = model.generate(8, 64, &mut rng(1));
        assert!(script.is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let model = FaultModel::mtbf(10.0, 100.0).with_stragglers(0.2, 3.0);
        let a = model.generate(8, 64, &mut rng(7));
        let b = model.generate(8, 64, &mut rng(7));
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn machine_faults_stay_inside_the_horizon() {
        let model = FaultModel::mtbf(5.0, 50.0);
        let script = model.generate(16, 0, &mut rng(3));
        for ev in script.events() {
            let at = match *ev {
                FaultEvent::Crash { at, .. }
                | FaultEvent::Outage { at, .. }
                | FaultEvent::Slowdown { at, .. } => at,
                FaultEvent::Straggler { .. } => continue,
            };
            assert!(at < Time::of(50.0));
        }
    }

    #[test]
    fn a_crash_ends_a_machines_fault_stream() {
        let model = FaultModel::mtbf(2.0, 200.0);
        let script = model.generate(12, 0, &mut rng(11));
        for i in 0..12 {
            let machine = MachineId::new(i);
            let mut crashed_at: Option<Time> = None;
            for ev in script.events() {
                match *ev {
                    FaultEvent::Crash { machine: mc, at } if mc == machine => {
                        assert!(crashed_at.is_none(), "double crash on {machine}");
                        crashed_at = Some(at);
                    }
                    FaultEvent::Outage {
                        machine: mc, at, ..
                    }
                    | FaultEvent::Slowdown {
                        machine: mc, at, ..
                    } if mc == machine => {
                        assert!(
                            crashed_at.is_none_or(|c| at < c),
                            "fault after permanent crash on {machine}"
                        );
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn straggler_rate_one_marks_every_task() {
        let model = FaultModel::mtbf(0.0, 0.0).with_stragglers(1.0, 2.5);
        let script = model.generate(4, 10, &mut rng(5));
        let stragglers = script
            .events()
            .iter()
            .filter(|e| matches!(e, FaultEvent::Straggler { .. }))
            .count();
        assert_eq!(stragglers, 10);
    }
}
