//! MTBF-driven fault-workload generation.
//!
//! Produces [`FaultScript`]s for the resilience engine from a cluster
//! reliability model: each machine suffers failures as a Poisson process
//! with the given mean time between failures, each failure drawn from a
//! weighted mix of permanent crashes, transient outages, and
//! degraded-speed phases. Independently, each task may be a straggler
//! whose actual time violates the `α` envelope.
//!
//! [`HeterogeneousFaultModel`] is the reliability-aware counterpart: it
//! samples crash scripts from a per-machine / per-zone
//! [`ReliabilityModel`], so the empirical survival of a placement under
//! its scripts is differentially comparable to the analytic
//! [`ReliabilityModel::survival`] bound ([`monte_carlo_survival`] does
//! the comparison without the engine in the loop).
//!
//! Generation is fully deterministic in the RNG, so fault campaigns in
//! EXPERIMENTS.md regenerate bit-for-bit.

use rand::rngs::StdRng;
use rand::Rng;
use rds_core::{Error, MachineId, Placement, ReliabilityModel, Result, TaskId, Time};
use rds_sim::faults::{FaultEvent, FaultScript};

/// A cluster reliability model: MTBF plus a fault-shape mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Mean time between failures per machine. `0` disables machine
    /// faults entirely.
    pub mtbf: f64,
    /// Faults are generated in `[0, horizon)`.
    pub horizon: f64,
    /// Relative weight of permanent crashes in the mix.
    pub crash_weight: f64,
    /// Relative weight of transient outages in the mix.
    pub outage_weight: f64,
    /// Relative weight of degraded-speed phases in the mix.
    pub slowdown_weight: f64,
    /// Mean outage length (exponentially distributed).
    pub mean_downtime: f64,
    /// Processing-speed fraction during a degraded phase.
    pub slowdown_speed: f64,
    /// Mean degraded-phase length (exponentially distributed).
    pub mean_slowdown: f64,
    /// Independent probability that a task is a straggler.
    pub straggler_rate: f64,
    /// Actual-time multiplier applied to straggling tasks.
    pub straggler_factor: f64,
}

impl FaultModel {
    /// The standard mix for a given MTBF and horizon: mostly transient
    /// trouble (50% outages, 30% slowdowns at half speed) with 20%
    /// permanent crashes; recovery times scale with the MTBF. Stragglers
    /// are off — opt in with [`FaultModel::with_stragglers`].
    ///
    /// `mtbf == 0` or `horizon == 0` is valid and disables machine
    /// faults (used to generate straggler-only scripts).
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] when `mtbf` or `horizon` is negative
    /// or non-finite.
    pub fn mtbf(mtbf: f64, horizon: f64) -> Result<Self> {
        if !mtbf.is_finite() || mtbf < 0.0 {
            return Err(Error::InvalidParameter {
                what: "mtbf must be finite and >= 0",
            });
        }
        if !horizon.is_finite() || horizon < 0.0 {
            return Err(Error::InvalidParameter {
                what: "fault horizon must be finite and >= 0",
            });
        }
        Ok(FaultModel {
            mtbf,
            horizon,
            crash_weight: 0.2,
            outage_weight: 0.5,
            slowdown_weight: 0.3,
            mean_downtime: mtbf / 5.0,
            slowdown_speed: 0.5,
            mean_slowdown: mtbf / 5.0,
            straggler_rate: 0.0,
            straggler_factor: 3.0,
        })
    }

    /// Enables envelope-violating stragglers.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] when `rate` is outside `[0, 1]` or
    /// `factor` is non-finite or not positive.
    pub fn with_stragglers(mut self, rate: f64, factor: f64) -> Result<Self> {
        if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
            return Err(Error::InvalidParameter {
                what: "straggler rate must be a probability in [0, 1]",
            });
        }
        if !factor.is_finite() || factor <= 0.0 {
            return Err(Error::InvalidParameter {
                what: "straggler factor must be finite and > 0",
            });
        }
        self.straggler_rate = rate;
        self.straggler_factor = factor;
        Ok(self)
    }

    /// Samples a fault script for `m` machines and `n` tasks.
    ///
    /// Each machine's failure times are a Poisson process (exponential
    /// inter-arrival with mean `mtbf`) truncated at `horizon`; a crash
    /// ends the machine's stream (nothing fails twice permanently).
    pub fn generate(&self, m: usize, n: usize, rng: &mut StdRng) -> FaultScript {
        let mut events = Vec::new();
        let total = self.crash_weight + self.outage_weight + self.slowdown_weight;
        if self.mtbf > 0.0 && self.horizon > 0.0 && total > 0.0 {
            for i in 0..m {
                let machine = MachineId::new(i);
                let mut t = 0.0;
                loop {
                    t += exponential(self.mtbf, rng);
                    if t >= self.horizon {
                        break;
                    }
                    let pick = rng.gen::<f64>() * total;
                    if pick < self.crash_weight {
                        events.push(FaultEvent::Crash {
                            machine,
                            at: Time::of(t),
                        });
                        break; // permanent: the stream ends here
                    } else if pick < self.crash_weight + self.outage_weight {
                        events.push(FaultEvent::Outage {
                            machine,
                            at: Time::of(t),
                            down_for: Time::of(exponential(self.mean_downtime, rng)),
                        });
                    } else {
                        events.push(FaultEvent::Slowdown {
                            machine,
                            at: Time::of(t),
                            lasting: Time::of(exponential(self.mean_slowdown, rng)),
                            speed: self.slowdown_speed,
                        });
                    }
                }
            }
        }
        if self.straggler_rate > 0.0 {
            for j in 0..n {
                if rng.gen_bool(self.straggler_rate.min(1.0)) {
                    events.push(FaultEvent::Straggler {
                        task: TaskId::new(j),
                        factor: self.straggler_factor,
                    });
                }
            }
        }
        FaultScript::new(events)
    }
}

/// Heterogeneous crash-script generation from a per-machine / per-zone
/// [`ReliabilityModel`].
///
/// One sampled script is one draw of the horizon experiment the analytic
/// model describes: each zone suffers a total outage with its
/// probability `g_z` (killing every member), and each machine
/// additionally crashes on its own with probability `f_i`. Dead machines
/// get exactly one permanent [`FaultEvent::Crash`] at a uniform time in
/// `[0, horizon)` (the earlier of the zone's and the machine's own crash
/// time when both hit).
///
/// Note the engine-observed survival under these scripts is an *upper*
/// bound on [`ReliabilityModel::survival`]: a task that completes before
/// its last holder crashes still survives. Use [`monte_carlo_survival`]
/// for a sampler that matches the analytic horizon semantics exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct HeterogeneousFaultModel {
    model: ReliabilityModel,
    horizon: f64,
}

impl HeterogeneousFaultModel {
    /// Builds a generator over the given reliability model and horizon.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] when `horizon` is non-finite or not
    /// positive.
    pub fn new(model: ReliabilityModel, horizon: f64) -> Result<Self> {
        if !horizon.is_finite() || horizon <= 0.0 {
            return Err(Error::InvalidParameter {
                what: "fault horizon must be finite and > 0",
            });
        }
        Ok(HeterogeneousFaultModel { model, horizon })
    }

    /// The underlying reliability model.
    #[inline]
    pub fn model(&self) -> &ReliabilityModel {
        &self.model
    }

    /// The script horizon.
    #[inline]
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Samples one crash script. Draw order is fixed (zones `0..Z`, then
    /// machines `0..m`), so scripts regenerate bit-for-bit from the seed.
    pub fn generate(&self, rng: &mut StdRng) -> FaultScript {
        let m = self.model.m();
        // Zone outages first: a dead zone stamps a shared crash time on
        // every member.
        let mut zone_down: Vec<Option<f64>> = Vec::with_capacity(self.model.zones());
        for z in 0..self.model.zones() {
            let g = self.model.zone_outage(z);
            if g > 0.0 && rng.gen_bool(g.min(1.0)) {
                zone_down.push(Some(rng.gen::<f64>() * self.horizon));
            } else {
                zone_down.push(None);
            }
        }
        let mut events = Vec::new();
        for i in 0..m {
            let machine = MachineId::new(i);
            let f = self.model.machine_fail(machine);
            let own = if f > 0.0 && rng.gen_bool(f.min(1.0)) {
                Some(rng.gen::<f64>() * self.horizon)
            } else {
                None
            };
            let zone = zone_down[self.model.zone_of(machine)];
            let at = match (own, zone) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (Some(a), None) => Some(a),
                (None, Some(b)) => Some(b),
                (None, None) => None,
            };
            if let Some(t) = at {
                events.push(FaultEvent::Crash {
                    machine,
                    at: Time::of(t),
                });
            }
        }
        FaultScript::new(events)
    }

    /// Samples one crash script with every crash at `t = 0` — the
    /// worst case where no task sneaks in before its holders die. The
    /// engine-observed survival under these scripts matches the analytic
    /// horizon semantics.
    pub fn generate_at_zero(&self, rng: &mut StdRng) -> FaultScript {
        let dead = sample_dead(&self.model, rng);
        let events = dead
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d)
            .map(|(i, _)| FaultEvent::Crash {
                machine: MachineId::new(i),
                at: Time::ZERO,
            })
            .collect();
        FaultScript::new(events)
    }
}

/// One Bernoulli draw of the horizon experiment: `dead[i]` is `true`
/// when machine `i`'s zone went down or the machine failed on its own.
fn sample_dead(model: &ReliabilityModel, rng: &mut StdRng) -> Vec<bool> {
    let zone_dead: Vec<bool> = (0..model.zones())
        .map(|z| {
            let g = model.zone_outage(z);
            g > 0.0 && rng.gen_bool(g.min(1.0))
        })
        .collect();
    (0..model.m())
        .map(|i| {
            let id = MachineId::new(i);
            let f = model.machine_fail(id);
            zone_dead[model.zone_of(id)] || (f > 0.0 && rng.gen_bool(f.min(1.0)))
        })
        .collect()
}

/// Monte-Carlo estimate of each task's survival probability under a
/// placement: the fraction of sampled horizon draws in which at least
/// one holder machine stays alive.
///
/// This samples the [`ReliabilityModel`] directly (no engine in the
/// loop), so by the law of large numbers the estimates converge to
/// [`ReliabilityModel::survival`] of each task's machine set — the
/// differential check the conformance oracle runs.
pub fn monte_carlo_survival(
    placement: &Placement,
    model: &ReliabilityModel,
    trials: usize,
    rng: &mut StdRng,
) -> Vec<f64> {
    let m = model.m();
    let n = placement.sets().len();
    let mut alive_counts = vec![0usize; n];
    for _ in 0..trials {
        let dead = sample_dead(model, rng);
        for (j, set) in placement.sets().iter().enumerate() {
            if set.iter(m).any(|id| !dead[id.index()]) {
                alive_counts[j] += 1;
            }
        }
    }
    alive_counts
        .into_iter()
        .map(|c| {
            if trials == 0 {
                0.0
            } else {
                c as f64 / trials as f64
            }
        })
        .collect()
}

/// Exponential sample with the given mean (0 when the mean is not
/// positive).
fn exponential(mean: f64, rng: &mut StdRng) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    let u: f64 = rng.gen();
    -mean * (1.0 - u).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng;
    use rds_core::{Instance, MachineSet};

    #[test]
    fn zero_mtbf_generates_nothing() {
        let model = FaultModel::mtbf(0.0, 100.0).unwrap();
        let script = model.generate(8, 64, &mut rng(1));
        assert!(script.is_empty());
    }

    #[test]
    fn constructors_reject_bad_domains() {
        assert!(matches!(
            FaultModel::mtbf(-1.0, 100.0),
            Err(Error::InvalidParameter { .. })
        ));
        assert!(matches!(
            FaultModel::mtbf(f64::NAN, 100.0),
            Err(Error::InvalidParameter { .. })
        ));
        assert!(matches!(
            FaultModel::mtbf(10.0, -5.0),
            Err(Error::InvalidParameter { .. })
        ));
        assert!(matches!(
            FaultModel::mtbf(10.0, f64::INFINITY),
            Err(Error::InvalidParameter { .. })
        ));
        let ok = FaultModel::mtbf(10.0, 100.0).unwrap();
        assert!(matches!(
            ok.with_stragglers(1.5, 3.0),
            Err(Error::InvalidParameter { .. })
        ));
        assert!(matches!(
            ok.with_stragglers(-0.1, 3.0),
            Err(Error::InvalidParameter { .. })
        ));
        assert!(matches!(
            ok.with_stragglers(0.2, 0.0),
            Err(Error::InvalidParameter { .. })
        ));
        assert!(matches!(
            ok.with_stragglers(0.2, f64::NAN),
            Err(Error::InvalidParameter { .. })
        ));
        assert!(ok.with_stragglers(0.2, 3.0).is_ok());
    }

    #[test]
    fn generation_is_deterministic() {
        let model = FaultModel::mtbf(10.0, 100.0)
            .unwrap()
            .with_stragglers(0.2, 3.0)
            .unwrap();
        let a = model.generate(8, 64, &mut rng(7));
        let b = model.generate(8, 64, &mut rng(7));
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn machine_faults_stay_inside_the_horizon() {
        let model = FaultModel::mtbf(5.0, 50.0).unwrap();
        let script = model.generate(16, 0, &mut rng(3));
        for ev in script.events() {
            let at = match *ev {
                FaultEvent::Crash { at, .. }
                | FaultEvent::Outage { at, .. }
                | FaultEvent::Slowdown { at, .. } => at,
                FaultEvent::Straggler { .. } => continue,
            };
            assert!(at < Time::of(50.0));
        }
    }

    #[test]
    fn a_crash_ends_a_machines_fault_stream() {
        let model = FaultModel::mtbf(2.0, 200.0).unwrap();
        let script = model.generate(12, 0, &mut rng(11));
        for i in 0..12 {
            let machine = MachineId::new(i);
            let mut crashed_at: Option<Time> = None;
            for ev in script.events() {
                match *ev {
                    FaultEvent::Crash { machine: mc, at } if mc == machine => {
                        assert!(crashed_at.is_none(), "double crash on {machine}");
                        crashed_at = Some(at);
                    }
                    FaultEvent::Outage {
                        machine: mc, at, ..
                    }
                    | FaultEvent::Slowdown {
                        machine: mc, at, ..
                    } if mc == machine => {
                        assert!(
                            crashed_at.is_none_or(|c| at < c),
                            "fault after permanent crash on {machine}"
                        );
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn straggler_rate_one_marks_every_task() {
        let model = FaultModel::mtbf(0.0, 0.0)
            .unwrap()
            .with_stragglers(1.0, 2.5)
            .unwrap();
        let script = model.generate(4, 10, &mut rng(5));
        let stragglers = script
            .events()
            .iter()
            .filter(|e| matches!(e, FaultEvent::Straggler { .. }))
            .count();
        assert_eq!(stragglers, 10);
    }

    fn hetero() -> HeterogeneousFaultModel {
        let model = ReliabilityModel::new(
            vec![0.3, 0.1, 0.2, 0.4, 0.05, 0.15],
            vec![0, 0, 1, 1, 2, 2],
            vec![0.1, 0.05, 0.0],
        )
        .unwrap();
        HeterogeneousFaultModel::new(model, 50.0).unwrap()
    }

    #[test]
    fn heterogeneous_validates_horizon() {
        let m = ReliabilityModel::uniform(4, 0.1).unwrap();
        assert!(matches!(
            HeterogeneousFaultModel::new(m.clone(), 0.0),
            Err(Error::InvalidParameter { .. })
        ));
        assert!(matches!(
            HeterogeneousFaultModel::new(m, f64::NAN),
            Err(Error::InvalidParameter { .. })
        ));
    }

    #[test]
    fn heterogeneous_scripts_are_deterministic_single_crash_in_horizon() {
        let h = hetero();
        let a = h.generate(&mut rng(9));
        let b = h.generate(&mut rng(9));
        assert_eq!(a, b);
        let mut seen = std::collections::HashSet::new();
        for ev in a.events() {
            match *ev {
                FaultEvent::Crash { machine, at } => {
                    assert!(seen.insert(machine), "double crash on {machine}");
                    assert!(at < Time::of(50.0));
                }
                _ => panic!("heterogeneous scripts are crash-only"),
            }
        }
    }

    #[test]
    fn certain_zone_outage_kills_every_member() {
        let model =
            ReliabilityModel::new(vec![0.0, 0.0, 0.0, 0.0], vec![0, 0, 1, 1], vec![1.0, 0.0])
                .unwrap();
        let h = HeterogeneousFaultModel::new(model, 10.0).unwrap();
        let script = h.generate(&mut rng(2));
        let crashed: Vec<usize> = script
            .events()
            .iter()
            .map(|e| match *e {
                FaultEvent::Crash { machine, .. } => machine.index(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(crashed, vec![0, 1]);
        // Zone members share the outage instant.
        let times: Vec<Time> = script
            .events()
            .iter()
            .map(|e| match *e {
                FaultEvent::Crash { at, .. } => at,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(times[0], times[1]);
    }

    #[test]
    fn monte_carlo_tracks_the_analytic_survival() {
        let h = hetero();
        let inst = Instance::from_estimates(&[1.0, 1.0, 1.0], 6).unwrap();
        let placement = Placement::new(
            &inst,
            vec![
                MachineSet::One(MachineId::new(0)),
                MachineSet::Span { start: 2, end: 4 },
                MachineSet::All,
            ],
        )
        .unwrap();
        let est = monte_carlo_survival(&placement, h.model(), 20_000, &mut rng(13));
        let exact = h.model().placement_survival(&placement);
        for (j, (e, x)) in est.iter().zip(exact.iter()).enumerate() {
            assert!((e - x).abs() < 0.02, "task {j}: mc {e} vs analytic {x}");
        }
        // Richer sets strictly safer under this model.
        assert!(est[2] >= est[1] && est[1] >= est[0]);
    }

    #[test]
    fn generate_at_zero_crashes_at_time_zero() {
        let h = hetero();
        let script = h.generate_at_zero(&mut rng(21));
        for ev in script.events() {
            match *ev {
                FaultEvent::Crash { at, .. } => assert_eq!(at, Time::ZERO),
                _ => panic!("crash-only"),
            }
        }
    }
}
