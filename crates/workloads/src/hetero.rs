//! Heterogeneity generators: machine-speed profiles and network
//! topologies.
//!
//! The paper's base model assumes identical machines and free data
//! access on any replica holder. This module generates the two
//! relaxations of that assumption the hetero scenario axis explores:
//!
//! - [`SpeedDistribution`]: per-machine speed factors, revealed only in
//!   phase 2 (the placement is chosen against estimates on nominally
//!   identical machines, then executed on the realized speeds);
//! - [`TopologyModel`]: machine-pair transfer latencies charged when a
//!   task starts away from its primary replica.
//!
//! Both mirror the [`EstimateDistribution`](crate::EstimateDistribution)
//! idiom: `validate()` for typed parameter errors at the construction
//! boundary, then a seeded realization step.

use rand::Rng;
use rds_core::{Error, MachineSpeeds, NetworkTopology, Result};

/// A distribution over per-machine speed factors.
#[derive(Debug, Clone, PartialEq)]
pub enum SpeedDistribution {
    /// Every machine runs at speed 1 (the homogeneous baseline; realizes
    /// to a profile for which [`MachineSpeeds::is_uniform`] holds, so
    /// the engine's homogeneous fast path applies).
    Unit,
    /// Speeds uniform in `[lo, hi]`.
    Uniform {
        /// Slowest speed factor.
        lo: f64,
        /// Fastest speed factor.
        hi: f64,
    },
    /// Two machine classes: speed `fast` with probability `p_fast`,
    /// `slow` otherwise. Models a cluster mid-upgrade.
    TwoClass {
        /// Speed of the old machine class.
        slow: f64,
        /// Speed of the new machine class.
        fast: f64,
        /// Probability a machine belongs to the fast class.
        p_fast: f64,
    },
}

impl SpeedDistribution {
    /// Checks the parameters against their documented domain.
    ///
    /// Non-finite or non-positive speeds yield
    /// [`Error::InvalidParameter`].
    pub fn validate(&self) -> Result<()> {
        fn bad(what: &'static str) -> Result<()> {
            Err(Error::InvalidParameter { what })
        }
        match *self {
            SpeedDistribution::Unit => {}
            SpeedDistribution::Uniform { lo, hi } => {
                if !(lo.is_finite() && hi.is_finite() && 0.0 < lo && lo <= hi) {
                    return bad("speed Uniform requires finite 0 < lo <= hi");
                }
            }
            SpeedDistribution::TwoClass { slow, fast, p_fast } => {
                if !(slow.is_finite() && fast.is_finite() && slow > 0.0 && fast > 0.0) {
                    return bad("TwoClass speeds must be finite and > 0");
                }
                if !(p_fast.is_finite() && (0.0..=1.0).contains(&p_fast)) {
                    return bad("TwoClass.p_fast must be in [0, 1]");
                }
            }
        }
        Ok(())
    }

    /// Realizes a speed profile for `m` machines.
    ///
    /// # Errors
    /// [`Error::NoMachines`] if `m == 0`; propagates
    /// [`MachineSpeeds::new`] validation.
    pub fn realize(&self, m: usize, rng: &mut impl Rng) -> Result<MachineSpeeds> {
        if m == 0 {
            return Err(Error::NoMachines);
        }
        let speeds: Vec<f64> = match *self {
            SpeedDistribution::Unit => vec![1.0; m],
            SpeedDistribution::Uniform { lo, hi } => (0..m)
                .map(|_| if lo == hi { lo } else { rng.gen_range(lo..=hi) })
                .collect(),
            SpeedDistribution::TwoClass { slow, fast, p_fast } => (0..m)
                .map(|_| if rng.gen::<f64>() < p_fast { fast } else { slow })
                .collect(),
        };
        MachineSpeeds::new(speeds)
    }
}

/// A model of machine-pair transfer latencies.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyModel {
    /// All transfers are free (the paper's base model; realizes to a
    /// topology for which [`NetworkTopology::is_zero`] holds).
    Zero,
    /// Local access is free, every remote pair costs `latency`.
    UniformRemote {
        /// Cost of any cross-machine transfer.
        latency: f64,
    },
    /// Machines are striped round-robin across `zones`; same-zone
    /// transfers cost `local`, cross-zone transfers cost `remote`.
    Clustered {
        /// Number of zones (racks).
        zones: usize,
        /// Same-zone transfer cost.
        local: f64,
        /// Cross-zone transfer cost.
        remote: f64,
    },
    /// Each unordered machine pair draws an independent symmetric
    /// latency uniform in `[lo, hi]`.
    RandomPairs {
        /// Smallest pairwise latency.
        lo: f64,
        /// Largest pairwise latency.
        hi: f64,
    },
}

impl TopologyModel {
    /// Checks the parameters against their documented domain.
    pub fn validate(&self) -> Result<()> {
        fn bad(what: &'static str) -> Result<()> {
            Err(Error::InvalidParameter { what })
        }
        match *self {
            TopologyModel::Zero => {}
            TopologyModel::UniformRemote { latency } => {
                if !(latency.is_finite() && latency >= 0.0) {
                    return bad("UniformRemote.latency must be finite and >= 0");
                }
            }
            TopologyModel::Clustered {
                zones,
                local,
                remote,
            } => {
                if zones == 0 {
                    return bad("Clustered.zones must be >= 1");
                }
                if !(local.is_finite() && remote.is_finite() && local >= 0.0 && remote >= 0.0) {
                    return bad("Clustered latencies must be finite and >= 0");
                }
            }
            TopologyModel::RandomPairs { lo, hi } => {
                if !(lo.is_finite() && hi.is_finite() && 0.0 <= lo && lo <= hi) {
                    return bad("RandomPairs requires finite 0 <= lo <= hi");
                }
            }
        }
        Ok(())
    }

    /// Builds a transfer-latency matrix for `m` machines.
    ///
    /// # Errors
    /// [`Error::NoMachines`] if `m == 0`; propagates
    /// [`NetworkTopology::new`] validation.
    pub fn build(&self, m: usize, rng: &mut impl Rng) -> Result<NetworkTopology> {
        if m == 0 {
            return Err(Error::NoMachines);
        }
        match *self {
            TopologyModel::Zero => NetworkTopology::zero(m),
            TopologyModel::UniformRemote { latency } => NetworkTopology::uniform(m, latency),
            TopologyModel::Clustered {
                zones,
                local,
                remote,
            } => {
                let zone_of: Vec<usize> = (0..m).map(|i| i % zones.max(1)).collect();
                NetworkTopology::clustered(&zone_of, local, remote)
            }
            TopologyModel::RandomPairs { lo, hi } => {
                let mut latency = vec![0.0; m * m];
                for i in 0..m {
                    for j in (i + 1)..m {
                        let v = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
                        latency[i * m + j] = v;
                        latency[j * m + i] = v;
                    }
                }
                NetworkTopology::new(m, latency)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng;
    use rds_core::MachineId;

    #[test]
    fn unit_speeds_are_uniform() {
        let mut r = rng(10);
        let s = SpeedDistribution::Unit.realize(4, &mut r).unwrap();
        assert!(s.is_uniform());
    }

    #[test]
    fn uniform_speeds_stay_in_range() {
        let mut r = rng(11);
        let d = SpeedDistribution::Uniform { lo: 0.5, hi: 2.0 };
        let s = d.realize(64, &mut r).unwrap();
        assert!(s.speeds().iter().all(|&v| (0.5..=2.0).contains(&v)));
    }

    #[test]
    fn two_class_hits_both_classes() {
        let mut r = rng(12);
        let d = SpeedDistribution::TwoClass {
            slow: 1.0,
            fast: 3.0,
            p_fast: 0.5,
        };
        let s = d.realize(256, &mut r).unwrap();
        let fasts = s.speeds().iter().filter(|&&v| v == 3.0).count();
        assert!(fasts > 0 && fasts < 256, "fasts = {fasts}");
    }

    #[test]
    fn clustered_topology_shapes_latencies() {
        let mut r = rng(13);
        let t = TopologyModel::Clustered {
            zones: 2,
            local: 1.0,
            remote: 9.0,
        }
        .build(4, &mut r)
        .unwrap();
        // Round-robin striping: machines 0 and 2 share zone 0.
        let m0 = MachineId::new(0);
        assert_eq!(t.latency(m0, MachineId::new(2)), 1.0);
        assert_eq!(t.latency(m0, MachineId::new(1)), 9.0);
        assert_eq!(t.latency(m0, m0), 0.0);
    }

    #[test]
    fn random_pairs_is_symmetric_with_zero_diagonal() {
        let mut r = rng(14);
        let t = TopologyModel::RandomPairs { lo: 1.0, hi: 5.0 }
            .build(6, &mut r)
            .unwrap();
        for i in 0..6 {
            for j in 0..6 {
                let (a, b) = (MachineId::new(i), MachineId::new(j));
                assert_eq!(t.latency(a, b), t.latency(b, a));
                if i == j {
                    assert_eq!(t.latency(a, b), 0.0);
                } else {
                    assert!((1.0..=5.0).contains(&t.latency(a, b)));
                }
            }
        }
    }

    #[test]
    fn validate_rejects_bad_parameters_with_typed_error() {
        let bad_speed = [
            SpeedDistribution::Uniform { lo: 0.0, hi: 1.0 },
            SpeedDistribution::Uniform {
                lo: 2.0,
                hi: f64::NAN,
            },
            SpeedDistribution::TwoClass {
                slow: -1.0,
                fast: 1.0,
                p_fast: 0.5,
            },
            SpeedDistribution::TwoClass {
                slow: 1.0,
                fast: 2.0,
                p_fast: 1.5,
            },
        ];
        for d in bad_speed {
            assert!(
                matches!(d.validate(), Err(Error::InvalidParameter { .. })),
                "{d:?}"
            );
        }
        let bad_topo = [
            TopologyModel::UniformRemote {
                latency: f64::INFINITY,
            },
            TopologyModel::Clustered {
                zones: 0,
                local: 1.0,
                remote: 2.0,
            },
            TopologyModel::RandomPairs { lo: -1.0, hi: 1.0 },
        ];
        for t in bad_topo {
            assert!(
                matches!(t.validate(), Err(Error::InvalidParameter { .. })),
                "{t:?}"
            );
        }
        assert!(SpeedDistribution::Unit.validate().is_ok());
        assert!(TopologyModel::Zero.validate().is_ok());
    }

    #[test]
    fn zero_machines_is_a_typed_error() {
        let mut r = rng(15);
        assert!(matches!(
            SpeedDistribution::Unit.realize(0, &mut r),
            Err(Error::NoMachines)
        ));
        assert!(matches!(
            TopologyModel::Zero.build(0, &mut r),
            Err(Error::NoMachines)
        ));
    }
}
