//! Workload and realization generators for the uncertain-scheduling
//! experiments.
//!
//! - [`arrivals`]: continuous arrival processes (Poisson, bursty,
//!   trace replay) feeding the streaming `rds serve` scheduler;
//! - [`estimates`]: distributions over the estimated times `p̃_j`;
//! - [`faults`]: MTBF-driven fault scripts (crashes, outages, slowdowns,
//!   stragglers) for the resilience engine;
//! - [`hetero`]: machine-speed profiles and transfer-latency topologies
//!   for the heterogeneity scenario axis;
//! - [`realize`]: models of how actual times deviate within `[p̃/α, α·p̃]`;
//! - [`scenarios`]: named end-to-end workloads mirroring the paper's
//!   motivating applications (out-of-core sparse linear algebra,
//!   MapReduce batches, iterative solvers, the adversary shape);
//! - [`rng`]: seeded, reproducible randomness.
//!
//! # Example
//! ```
//! use rds_workloads::{realize::RealizationModel, scenarios, rng};
//!
//! let s = scenarios::mapreduce(100, 8, 42)?;
//! let mut r = rng::rng(1);
//! let real = RealizationModel::UniformFactor
//!     .realize(&s.instance, s.uncertainty, &mut r)?;
//! assert_eq!(real.n(), 100);
//! # Ok::<(), rds_core::Error>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrivals;
pub mod estimates;
pub mod faults;
pub mod hetero;
pub mod realize;
pub mod rng;
pub mod scenarios;

pub use arrivals::{Arrival, ArrivalGen, ArrivalProcess};
pub use estimates::EstimateDistribution;
pub use faults::{monte_carlo_survival, FaultModel, HeterogeneousFaultModel};
pub use hetero::{SpeedDistribution, TopologyModel};
pub use realize::RealizationModel;
pub use scenarios::Scenario;
