//! Realization models: how actual times deviate from estimates within
//! the `[p̃/α, α·p̃]` interval.

use rand::Rng;
use rds_core::{Instance, Realization, Result, Uncertainty};

/// A stochastic (or degenerate) model of estimate error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RealizationModel {
    /// Actual = estimate (perfect prediction).
    Exact,
    /// Every task inflated by the full factor `α` (uniform slowdown).
    AllInflate,
    /// Every task deflated by the full factor `1/α` (uniform speedup).
    AllDeflate,
    /// Per-task factor drawn uniformly from `[1/α, α]`.
    UniformFactor,
    /// Per-task factor drawn log-uniformly from `[1/α, α]` (symmetric in
    /// the multiplicative sense: inflation and deflation equally likely).
    LogUniformFactor,
    /// Each task independently takes factor `α` with probability
    /// `p_inflate`, else `1/α` — the two-point shape every adversary in
    /// the paper uses.
    TwoPoint {
        /// Probability of inflation.
        p_inflate: f64,
    },
    /// Systematic estimator bias plus mild per-task jitter: every factor
    /// is `bias · jitter` with `jitter` log-uniform in a narrow band,
    /// clamped into `[1/α, α]`. Models a throughput misprediction that
    /// hits all tasks the same way (the paper's §3: "an inaccuracy of
    /// the throughput of the system leads to a multiplicative error").
    SystematicBias {
        /// The common bias factor (clamped into `[1/α, α]`).
        bias: f64,
        /// Half-width of the log-uniform jitter band (e.g. `0.05`).
        jitter: f64,
    },
}

impl RealizationModel {
    /// Draws a realization for `instance` under `uncertainty`.
    ///
    /// # Errors
    /// Never fails for valid inputs; propagates interval validation as a
    /// defensive check.
    pub fn realize(
        &self,
        instance: &Instance,
        uncertainty: Uncertainty,
        rng: &mut impl Rng,
    ) -> Result<Realization> {
        let alpha = uncertainty.alpha();
        let factors: Vec<f64> = (0..instance.n())
            .map(|_| match *self {
                RealizationModel::Exact => 1.0,
                RealizationModel::AllInflate => alpha,
                RealizationModel::AllDeflate => 1.0 / alpha,
                RealizationModel::UniformFactor => {
                    if alpha == 1.0 {
                        1.0
                    } else {
                        rng.gen_range(1.0 / alpha..=alpha)
                    }
                }
                RealizationModel::LogUniformFactor => {
                    if alpha == 1.0 {
                        1.0
                    } else {
                        let l = alpha.ln();
                        rng.gen_range(-l..=l).exp()
                    }
                }
                RealizationModel::TwoPoint { p_inflate } => {
                    debug_assert!((0.0..=1.0).contains(&p_inflate));
                    if rng.gen::<f64>() < p_inflate {
                        alpha
                    } else {
                        1.0 / alpha
                    }
                }
                RealizationModel::SystematicBias { bias, jitter } => {
                    debug_assert!(bias > 0.0 && jitter >= 0.0);
                    let j = if jitter == 0.0 {
                        1.0
                    } else {
                        rng.gen_range(-jitter..=jitter).exp()
                    };
                    (bias * j).clamp(1.0 / alpha, alpha)
                }
            })
            .collect();
        Realization::from_factors(instance, uncertainty, &factors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng;
    use rds_core::TaskId;

    fn inst() -> Instance {
        Instance::from_estimates(&[2.0, 4.0, 6.0, 8.0], 2).unwrap()
    }

    #[test]
    fn exact_and_extremes() {
        let i = inst();
        let u = Uncertainty::of(2.0);
        let mut r = rng(1);
        let exact = RealizationModel::Exact.realize(&i, u, &mut r).unwrap();
        assert_eq!(exact.actual(TaskId::new(1)).get(), 4.0);
        let hi = RealizationModel::AllInflate.realize(&i, u, &mut r).unwrap();
        assert_eq!(hi.actual(TaskId::new(1)).get(), 8.0);
        let lo = RealizationModel::AllDeflate.realize(&i, u, &mut r).unwrap();
        assert_eq!(lo.actual(TaskId::new(1)).get(), 2.0);
    }

    #[test]
    fn uniform_factor_within_interval() {
        let i = inst();
        let u = Uncertainty::of(3.0);
        let mut r = rng(2);
        for _ in 0..50 {
            let real = RealizationModel::UniformFactor
                .realize(&i, u, &mut r)
                .unwrap();
            for t in i.task_ids() {
                assert!(u.contains(i.estimate(t), real.actual(t)));
            }
        }
    }

    #[test]
    fn two_point_only_extremes() {
        let i = inst();
        let u = Uncertainty::of(2.0);
        let mut r = rng(3);
        let real = RealizationModel::TwoPoint { p_inflate: 0.5 }
            .realize(&i, u, &mut r)
            .unwrap();
        for t in i.task_ids() {
            let f = real.actual(t).get() / i.estimate(t).get();
            assert!((f - 2.0).abs() < 1e-9 || (f - 0.5).abs() < 1e-9, "f = {f}");
        }
    }

    #[test]
    fn log_uniform_is_multiplicatively_symmetric() {
        let i = Instance::from_estimates(&vec![1.0; 20_000], 2).unwrap();
        let u = Uncertainty::of(4.0);
        let mut r = rng(4);
        let real = RealizationModel::LogUniformFactor
            .realize(&i, u, &mut r)
            .unwrap();
        let mean_log: f64 = real.times().iter().map(|t| t.get().ln()).sum::<f64>() / 20_000.0;
        assert!(mean_log.abs() < 0.05, "mean log factor = {mean_log}");
    }

    #[test]
    fn systematic_bias_is_correlated_and_clamped() {
        let i = inst();
        let u = Uncertainty::of(2.0);
        let mut r = rng(6);
        let real = RealizationModel::SystematicBias {
            bias: 1.5,
            jitter: 0.02,
        }
        .realize(&i, u, &mut r)
        .unwrap();
        for t in i.task_ids() {
            let f = real.actual(t).get() / i.estimate(t).get();
            assert!((1.4..1.6).contains(&f), "factor {f} not near the bias");
        }
        // A bias beyond α clamps at the interval edge.
        let real = RealizationModel::SystematicBias {
            bias: 10.0,
            jitter: 0.0,
        }
        .realize(&i, u, &mut r)
        .unwrap();
        for t in i.task_ids() {
            assert!(u.contains(i.estimate(t), real.actual(t)));
            assert!((real.actual(t).get() / i.estimate(t).get() - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn alpha_one_degenerates_to_exact() {
        let i = inst();
        let u = Uncertainty::CERTAIN;
        let mut r = rng(5);
        for model in [
            RealizationModel::UniformFactor,
            RealizationModel::LogUniformFactor,
            RealizationModel::AllInflate,
        ] {
            let real = model.realize(&i, u, &mut r).unwrap();
            for t in i.task_ids() {
                assert_eq!(real.actual(t), i.estimate(t));
            }
        }
    }
}
