//! Deterministic random-number plumbing for reproducible experiments.
//!
//! Every generator in this crate takes an explicit seed; the same seed
//! always produces the same workload, so every experiment in
//! EXPERIMENTS.md can be regenerated bit-for-bit.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates the workspace-standard RNG from a seed.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent child seed for sub-stream `index` (e.g. one
/// per repetition of a sweep point) — a SplitMix64 step keeps children
/// decorrelated even for consecutive indices.
pub fn child_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u32> = (0..5).map(|_| rng(42).gen()).collect();
        let b: Vec<u32> = (0..5).map(|_| rng(42).gen()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut r1 = rng(1);
        let mut r2 = rng(2);
        let a: u64 = r1.gen();
        let b: u64 = r2.gen();
        assert_ne!(a, b);
    }

    #[test]
    fn child_seeds_are_distinct_and_stable() {
        let s0 = child_seed(7, 0);
        let s1 = child_seed(7, 1);
        assert_ne!(s0, s1);
        assert_eq!(s0, child_seed(7, 0));
        // Consecutive children decorrelate at the bit level.
        assert!((s0 ^ s1).count_ones() > 10);
    }
}
