//! Named workload scenarios mirroring the application domains the paper
//! motivates in its introduction.

use crate::estimates::EstimateDistribution;
use crate::rng::rng;
use rand::Rng;
use rds_core::{Instance, Result, Uncertainty};

/// A fully specified workload: task estimates, sizes, machines, and the
/// uncertainty the scheduler must plan under.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Short identifier used in reports.
    pub name: &'static str,
    /// The generated instance.
    pub instance: Instance,
    /// The uncertainty factor of the scenario.
    pub uncertainty: Uncertainty,
}

/// Out-of-core sparse linear algebra (the paper's §1 motivation,
/// \[Zhou12\]): one task per matrix block, heavy-tailed block sizes, task
/// memory proportional to its time (data-bound kernels), analytic runtime
/// models accurate within `α ≈ 1.5` \[Erlebacher14\].
///
/// # Errors
/// Never fails for `n ≥ 1`, `m ≥ 1`.
pub fn out_of_core_spmv(n: usize, m: usize, seed: u64) -> Result<Scenario> {
    let mut r = rng(seed);
    let dist = EstimateDistribution::HeavyTail {
        lo: 1.0,
        shape: 1.6,
        cap: 60.0,
    };
    let pairs: Vec<(f64, f64)> = (0..n)
        .map(|_| {
            let p = dist.sample(&mut r);
            // Data-bound: size tracks time with mild jitter.
            let s = p * r.gen_range(0.8..1.2);
            (p, s)
        })
        .collect();
    Ok(Scenario {
        name: "out-of-core-spmv",
        instance: Instance::from_estimates_and_sizes(&pairs, m)?,
        uncertainty: Uncertainty::of(1.5),
    })
}

/// MapReduce-style batch (the paper's Hadoop motivation \[White09\]):
/// mostly uniform map tasks plus a fraction of stragglers; user-guessed
/// runtimes are poor, `α = 2`. Sizes are uniform block sizes (HDFS-like).
///
/// # Errors
/// Never fails for `n ≥ 1`, `m ≥ 1`.
pub fn mapreduce(n: usize, m: usize, seed: u64) -> Result<Scenario> {
    let mut r = rng(seed);
    let dist = EstimateDistribution::Bimodal {
        short: 2.0,
        long: 12.0,
        p_long: 0.08,
    };
    let pairs: Vec<(f64, f64)> = (0..n)
        .map(|_| (dist.sample(&mut r), r.gen_range(0.9..1.1)))
        .collect();
    Ok(Scenario {
        name: "mapreduce",
        instance: Instance::from_estimates_and_sizes(&pairs, m)?,
        uncertainty: Uncertainty::of(2.0),
    })
}

/// Iterative solver sweep (\[Zhou12-P2S2\]): near-uniform per-iteration
/// tasks whose runtime model is tight (`α = 1.1`); replication cost is
/// amortized over many iterations, sizes equal to times.
///
/// # Errors
/// Never fails for `n ≥ 1`, `m ≥ 1`.
pub fn iterative_solver(n: usize, m: usize, seed: u64) -> Result<Scenario> {
    let mut r = rng(seed);
    let dist = EstimateDistribution::Uniform { lo: 4.0, hi: 6.0 };
    let pairs: Vec<(f64, f64)> = (0..n)
        .map(|_| {
            let p = dist.sample(&mut r);
            (p, p)
        })
        .collect();
    Ok(Scenario {
        name: "iterative-solver",
        instance: Instance::from_estimates_and_sizes(&pairs, m)?,
        uncertainty: Uncertainty::of(1.1),
    })
}

/// The Theorem-1 adversary shape: `λ·m` identical unit tasks.
///
/// # Errors
/// Never fails for `λ ≥ 1`, `m ≥ 1`.
pub fn adversary_uniform(lambda: usize, m: usize, alpha: f64) -> Result<Scenario> {
    Ok(Scenario {
        name: "adversary-uniform",
        instance: Instance::from_estimates(&vec![1.0; lambda * m], m)?,
        uncertainty: Uncertainty::new(alpha)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_reproducible() {
        let a = out_of_core_spmv(50, 8, 42).unwrap();
        let b = out_of_core_spmv(50, 8, 42).unwrap();
        assert_eq!(a.instance, b.instance);
        let c = out_of_core_spmv(50, 8, 43).unwrap();
        assert_ne!(a.instance, c.instance);
    }

    #[test]
    fn spmv_sizes_track_times() {
        let s = out_of_core_spmv(200, 8, 1).unwrap();
        for t in s.instance.tasks() {
            let ratio = t.size.get() / t.estimate.get();
            assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
        }
        assert_eq!(s.uncertainty.alpha(), 1.5);
    }

    #[test]
    fn mapreduce_has_stragglers() {
        let s = mapreduce(500, 16, 7).unwrap();
        let longs = s
            .instance
            .tasks()
            .iter()
            .filter(|t| t.estimate.get() > 10.0)
            .count();
        assert!(longs > 10, "expected stragglers, got {longs}");
        assert!(longs < 100);
    }

    #[test]
    fn iterative_solver_is_tight() {
        let s = iterative_solver(100, 8, 3).unwrap();
        assert_eq!(s.uncertainty.alpha(), 1.1);
        for t in s.instance.tasks() {
            assert!((4.0..=6.0).contains(&t.estimate.get()));
            assert_eq!(t.size, rds_core::Size::of(t.estimate.get()));
        }
    }

    #[test]
    fn adversary_shape() {
        let s = adversary_uniform(3, 6, 2.0).unwrap();
        assert_eq!(s.instance.n(), 18);
        assert!(s
            .instance
            .tasks()
            .iter()
            .all(|t| t.estimate == rds_core::Time::ONE));
    }
}
