//! A cluster that loses machines mid-run: replication as the shared
//! answer to uncertainty *and* failures.
//!
//! The paper's Hadoop motivation: systems already replicate blocks for
//! fault tolerance, so exploiting the replicas against runtime
//! uncertainty is free. This example runs the same workload through the
//! failure-injecting engine under three placements and shows survival,
//! restarts, and the executed Gantt of a run that absorbed a failure.
//!
//! Run: `cargo run --release --example fault_tolerant_cluster`

use replicated_placement::prelude::*;
use replicated_placement::report;
use replicated_placement::sim::failures::{run_with_failures, Failure};
use replicated_placement::sim::OrderedDispatcher;
use replicated_placement::workloads::{realize::RealizationModel, rng};

fn main() -> Result<()> {
    let (n, m) = (18usize, 6usize);
    let mut r = rng::rng(11);
    let est = replicated_placement::workloads::EstimateDistribution::Uniform { lo: 2.0, hi: 8.0 }
        .sample_n(n, &mut r);
    let inst = Instance::from_estimates(&est, m)?;
    let unc = Uncertainty::of(1.5);
    let real = RealizationModel::UniformFactor.realize(&inst, unc, &mut r)?;

    // Machine 2 dies a third of the way through the horizon.
    let failures = [Failure {
        machine: MachineId::new(2),
        at: Time::of(6.0),
    }];

    println!(
        "cluster: n = {n}, m = {m}, α = {}; machine p2 fails at t = 6\n",
        unc.alpha()
    );

    for strategy in [
        Box::new(LsGroup::new(3)) as Box<dyn Strategy>,
        Box::new(ChainedReplication::new(2)?),
        Box::new(LptNoRestriction),
    ] {
        let placement = strategy.place(&inst, unc)?;
        let mut dispatcher = OrderedDispatcher::lpt_by_estimate(&inst);
        match run_with_failures(&inst, &placement, &real, &mut dispatcher, &failures) {
            Ok(res) => {
                println!(
                    "{:<22} replicas/task = {}   C_max = {:.2}   restarts = {}",
                    strategy.name(),
                    placement.max_replicas(),
                    res.makespan.get(),
                    res.restarts
                );
                if strategy.name().contains("Chained") {
                    println!("\nexecution with the failure absorbed (p2 row goes quiet at t=6):");
                    println!("{}", report::gantt::render(&res.schedule, 60));
                }
            }
            Err(e) => println!(
                "{:<22} replicas/task = {}   FAILED: {e}",
                strategy.name(),
                placement.max_replicas()
            ),
        }
    }

    // The pinned placement strands p2's tasks — shown for contrast.
    let pinned = LptNoChoice.place(&inst, unc)?;
    let assignment = LptNoChoice.execute(&inst, &pinned, &Realization::exact(&inst))?;
    let mut d = replicated_placement::sim::PinnedDispatcher::new(assignment.machines(), m);
    match run_with_failures(&inst, &pinned, &real, &mut d, &failures) {
        Ok(_) => println!("LPT-No Choice          unexpectedly survived"),
        Err(e) => println!("LPT-No Choice          replicas/task = 1   LOST WORK: {e}"),
    }
    Ok(())
}
