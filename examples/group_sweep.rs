//! Choosing the group count k: measured makespans across the whole
//! replication spectrum, in parallel.
//!
//! For a cluster of m machines, sweeps every divisor k of m (replicas
//! per task = m/k), measuring mean and worst makespan over many random
//! realizations with the crossbeam-backed sweep executor — the empirical
//! companion to Figure 3.
//!
//! Run: `cargo run --release --example group_sweep`

use replicated_placement::par::parallel_map;
use replicated_placement::prelude::*;
use replicated_placement::report::{table::fmt, Align, Summary, Table};
use replicated_placement::workloads::{realize::RealizationModel, rng, EstimateDistribution};

fn main() -> Result<()> {
    let (n, m, alpha, reps) = (120usize, 24usize, 1.8f64, 40usize);
    let unc = Uncertainty::of(alpha);
    let mut r = rng::rng(77);
    let est = EstimateDistribution::Uniform { lo: 1.0, hi: 10.0 }.sample_n(n, &mut r);
    let inst = Instance::from_estimates(&est, m)?;
    println!("group sweep: n = {n}, m = {m}, α = {alpha}, {reps} realizations per k\n");

    let divisors: Vec<usize> = (1..=m).filter(|k| m % k == 0).collect();
    let threads = std::thread::available_parallelism().map_or(4, |t| t.get());

    let mut table = Table::new(vec![
        "k",
        "replicas/task",
        "guarantee (Th.4)",
        "mean C_max",
        "worst C_max",
    ])
    .align(vec![Align::Right; 5]);

    for &k in &divisors {
        let strategy = LsGroup::new(k);
        let placement = strategy.place(&inst, unc)?;
        let makespans = parallel_map((0..reps).collect::<Vec<_>>(), threads, |rep| {
            let mut r = rng::rng(rng::child_seed(31337 + k as u64, rep as u64));
            let real = RealizationModel::TwoPoint { p_inflate: 0.3 }
                .realize(&inst, unc, &mut r)
                .expect("realization");
            strategy
                .execute(&inst, &placement, &real)
                .expect("execution")
                .makespan(&real)
                .get()
        });
        let mut s = Summary::new();
        for mk in makespans {
            s.push(mk);
        }
        table.row(vec![
            k.to_string(),
            (m / k).to_string(),
            fmt(rds_bounds::replication::ls_group(alpha, m, k), 3),
            fmt(s.mean(), 2),
            fmt(s.max(), 2),
        ]);
    }
    println!("{}", table.to_markdown());
    println!(
        "Reading: measured makespans improve monotonically with replication \
         (k ↓), with most of the gain captured by the first few replicas — \
         the Figure 3 story, measured instead of proven."
    );
    Ok(())
}
