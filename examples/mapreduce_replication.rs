//! MapReduce straggler mitigation via data replication.
//!
//! Hadoop-style systems replicate blocks for fault tolerance anyway
//! ([White09]); the paper's point is that the *scheduler* can exploit the
//! same replicas to absorb runtime uncertainty. This example shows a
//! bimodal map workload (8% stragglers) where replication lets the
//! dispatcher route around slow tasks discovered at runtime.
//!
//! Run: `cargo run --release --example mapreduce_replication`

use replicated_placement::prelude::*;
use replicated_placement::report::{table::fmt, Align, Summary, Table};
use replicated_placement::workloads::{realize::RealizationModel, rng, scenarios};

fn main() -> Result<()> {
    let reps = 25;
    let scenario = scenarios::mapreduce(200, 16, 99)?;
    let inst = &scenario.instance;
    let unc = scenario.uncertainty;
    println!(
        "MapReduce batch: n = {}, m = {}, α = {} — user-guessed runtimes",
        inst.n(),
        inst.m(),
        unc.alpha()
    );

    // HDFS-style replication factors: 1 (no replication), 3 (the Hadoop
    // default, modeled as groups of ~3... here groups of m/k machines),
    // and everywhere.
    let k_for_3_replicas = inst.m() / 3; // groups of ~3 machines
    let strategies: Vec<(Box<dyn Strategy>, &str)> = vec![
        (Box::new(LptNoChoice), "no replication (1×)"),
        (
            Box::new(LsGroup::new_relaxed(k_for_3_replicas)),
            "grouped ≈3× (HDFS-like)",
        ),
        (Box::new(LptNoRestriction), "replicate everywhere"),
    ];

    let mut table = Table::new(vec![
        "placement",
        "replicas/task",
        "mean C_max",
        "worst C_max",
    ])
    .align(vec![Align::Left, Align::Right, Align::Right, Align::Right]);
    let mut baseline_mean = None;
    for (strategy, label) in &strategies {
        let placement = strategy.place(inst, unc)?;
        let mut s = Summary::new();
        for rep in 0..reps {
            // Stragglers appear at run time: two-point realization.
            let mut r = rng::rng(rng::child_seed(2025, rep));
            let real = RealizationModel::TwoPoint { p_inflate: 0.15 }.realize(inst, unc, &mut r)?;
            let assignment = strategy.execute(inst, &placement, &real)?;
            s.push(assignment.makespan(&real).get());
        }
        if baseline_mean.is_none() {
            baseline_mean = Some(s.mean());
        }
        table.row(vec![
            label.to_string(),
            placement.max_replicas().to_string(),
            fmt(s.mean(), 2),
            fmt(s.max(), 2),
        ]);
    }
    println!("\n{}", table.to_markdown());
    println!(
        "Reading: the Hadoop-default ≈3× replication already recovers most of \
         the straggler-absorption benefit of full replication — matching the \
         paper's conclusion that a small amount of replication improves the \
         guarantee significantly."
    );
    Ok(())
}
