//! Bi-objective scheduling under a memory budget: SABO_Δ vs ABO_Δ.
//!
//! A system designer has a per-node memory budget and wants the best
//! makespan achievable within it. This example sweeps Δ for both
//! memory-aware algorithms, prints the achieved (makespan, memory)
//! frontier on a real workload, and picks the best algorithm per budget —
//! the operational version of the paper's Figure 6 discussion.
//!
//! Run: `cargo run --release --example memory_budget`

use replicated_placement::prelude::*;
use replicated_placement::report::{table::fmt, Align, Table};
use replicated_placement::workloads::{realize::RealizationModel, rng, scenarios};

fn main() -> Result<()> {
    let scenario = scenarios::out_of_core_spmv(80, 8, 31)?;
    let inst = &scenario.instance;
    let unc = scenario.uncertainty;
    let mut r = rng::rng(5);
    let real = RealizationModel::LogUniformFactor.realize(inst, unc, &mut r)?;
    println!(
        "workload: n = {}, m = {}, α = {}, total data = {}",
        inst.n(),
        inst.m(),
        unc.alpha(),
        inst.total_size()
    );

    let deltas = [0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0];
    let mut table = Table::new(vec![
        "delta",
        "SABO C_max",
        "SABO Mem_max",
        "ABO C_max",
        "ABO Mem_max",
    ])
    .align(vec![Align::Right; 5]);
    let mut frontier: Vec<(String, f64, f64)> = Vec::new();
    for &d in &deltas {
        let sabo = Sabo::new(d).run(inst, unc, &real)?;
        let abo = Abo::new(d).run(inst, unc, &real)?;
        table.row(vec![
            fmt(d, 2),
            fmt(sabo.makespan.get(), 2),
            fmt(sabo.mem_max.get(), 2),
            fmt(abo.makespan.get(), 2),
            fmt(abo.mem_max.get(), 2),
        ]);
        frontier.push((
            format!("SABO Δ={d}"),
            sabo.makespan.get(),
            sabo.mem_max.get(),
        ));
        frontier.push((format!("ABO Δ={d}"), abo.makespan.get(), abo.mem_max.get()));
    }
    println!("\n{}", table.to_markdown());

    // Answer budget queries: best makespan within a memory cap.
    let mem_lb = rds_core::memory::mem_max_lower_bound(inst).get();
    println!("per-node memory lower bound (no replication can beat): {mem_lb:.1}\n");
    for budget_factor in [1.2, 2.0, 4.0] {
        let budget = mem_lb * budget_factor;
        let best = frontier
            .iter()
            .filter(|(_, _, mem)| *mem <= budget)
            .min_by(|a, b| a.1.total_cmp(&b.1));
        match best {
            Some((name, mk, mem)) => println!(
                "budget {budget:.1} ({}× LB): best is {name} with C_max {mk:.2} (mem {mem:.1})",
                budget_factor
            ),
            None => println!("budget {budget:.1}: no configuration fits"),
        }
    }
    println!(
        "\nReading: tight budgets favour SABO (its memory guarantee \
         (1 + 1/Δ)ρ₂ is m-independent); loose budgets favour ABO, whose \
         replicated time-tasks buy online adaptivity."
    );
    Ok(())
}
