//! Out-of-core iterative solver: the paper's motivating application.
//!
//! An iterative solver sweeps the same set of matrix-block tasks every
//! iteration ([Zhou12]): the data placement is decided *once* (phase 1,
//! paying the replication cost), then every iteration re-schedules online
//! under fresh runtime noise (phase 2). Replication cost is amortized
//! across iterations while the adaptivity benefit repeats every sweep.
//!
//! Run: `cargo run --release --example out_of_core_solver`

use replicated_placement::prelude::*;
use replicated_placement::report::{table::fmt, Align, Summary, Table};
use replicated_placement::workloads::{realize::RealizationModel, rng, scenarios};

fn main() -> Result<()> {
    let iterations = 30;
    let scenario = scenarios::out_of_core_spmv(120, 12, 7)?;
    let inst = &scenario.instance;
    let unc = scenario.uncertainty;
    println!(
        "out-of-core SpMV: n = {}, m = {}, α = {} ({} iterations)",
        inst.n(),
        inst.m(),
        unc.alpha(),
        iterations
    );

    // Phase 1 once per strategy.
    let strategies: Vec<(Box<dyn Strategy>, &str)> = vec![
        (Box::new(LptNoChoice), "LPT-No Choice"),
        (Box::new(LsGroup::new(6)), "LS-Group(k=6)"),
        (Box::new(LsGroup::new(3)), "LS-Group(k=3)"),
        (Box::new(LptNoRestriction), "LPT-No Restriction"),
    ];

    let solver = OptimalSolver::fast();
    let mut table = Table::new(vec![
        "strategy",
        "replicas/task",
        "mean C_max",
        "p95 ratio",
        "total sweep time",
    ])
    .align(vec![
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);

    for (strategy, label) in &strategies {
        let placement = strategy.place(inst, unc)?;
        let mut makespans = Summary::new();
        let mut ratios = replicated_placement::report::Samples::new();
        let mut total = 0.0;
        for it in 0..iterations {
            // Fresh runtime noise per sweep: cache state, I/O contention…
            let mut r = rng::rng(rng::child_seed(1234, it));
            let real = RealizationModel::LogUniformFactor.realize(inst, unc, &mut r)?;
            let assignment = strategy.execute(inst, &placement, &real)?;
            assignment.check_feasible(&placement)?;
            let cmax = assignment.makespan(&real);
            let opt = solver.solve_realization(&real, inst.m());
            makespans.push(cmax.get());
            ratios.push(cmax.ratio(opt.lo).unwrap_or(1.0));
            total += cmax.get();
        }
        table.row(vec![
            label.to_string(),
            placement.max_replicas().to_string(),
            fmt(makespans.mean(), 2),
            fmt(ratios.quantile(0.95), 3),
            fmt(total, 1),
        ]);
    }
    println!("\n{}", table.to_markdown());
    println!(
        "Reading: more replication ⇒ better (and more stable) sweep times; \
         the placement cost is paid once, the adaptivity gain {iterations}×."
    );
    Ok(())
}
