//! Quickstart: place data, execute online, compare against the optimum.
//!
//! Run: `cargo run --example quickstart`

use replicated_placement::prelude::*;

fn main() -> Result<()> {
    // A small workload: 8 tasks with *estimated* runtimes on 3 machines.
    // The scheduler knows the real runtime only within a factor α = 1.5.
    let inst = Instance::from_estimates(&[9.0, 8.0, 6.0, 5.0, 4.0, 4.0, 3.0, 2.0], 3)?;
    let unc = Uncertainty::of(1.5);

    // Reality disagrees with the estimates (inside the allowed interval):
    // the big task runs long, two medium tasks run short.
    let real = Realization::from_factors(&inst, unc, &[1.5, 1.0, 0.67, 1.0, 1.2, 0.8, 1.0, 1.0])?;

    // The clairvoyant optimum for the *actual* times, for reference.
    let opt = OptimalSolver::default().solve_realization(&real, inst.m());
    println!("clairvoyant optimum C*            = {}", opt.lo);

    // Strategy 1: no replication. Phase 1 commits everything.
    let pinned = LptNoChoice.run(&inst, unc, &real)?;
    println!(
        "LPT-No Choice       (1 replica)   : C_max = {}  (ratio {:.3})",
        pinned.makespan,
        pinned.makespan.ratio(opt.lo).unwrap()
    );

    // Strategy 3: replicate within 3 groups — some runtime flexibility.
    // (m = 3, so k = 3 groups of 1 machine ≙ pinning; use k = 1..m.)
    let grouped = LsGroup::new(1).run(&inst, unc, &real)?;
    println!(
        "LS-Group(k=1)       ({} replicas)  : C_max = {}  (ratio {:.3})",
        grouped.placement.max_replicas(),
        grouped.makespan,
        grouped.makespan.ratio(opt.lo).unwrap()
    );

    // Strategy 2: replicate everywhere — full runtime flexibility.
    let everywhere = LptNoRestriction.run(&inst, unc, &real)?;
    println!(
        "LPT-No Restriction  ({} replicas)  : C_max = {}  (ratio {:.3})",
        inst.m(),
        everywhere.makespan,
        everywhere.makespan.ratio(opt.lo).unwrap()
    );

    // The proven guarantees these must respect:
    let m = inst.m();
    let a = unc.alpha();
    println!(
        "\nproven bounds: LPT-No Choice ≤ {:.3}, LPT-No Restriction ≤ {:.3}",
        rds_bounds::replication::lpt_no_choice(a, m),
        rds_bounds::replication::lpt_no_restriction_best(a, m),
    );

    // Watch the online execution as a Gantt chart.
    let simulated = executors::simulate_no_restriction(&inst, &real)?;
    println!("\nonline execution (LPT-No Restriction):");
    println!(
        "{}",
        replicated_placement::report::gantt::render(&simulated.schedule, 60)
    );
    Ok(())
}
