//! # replicated-placement
//!
//! A full reproduction of *Replicated Data Placement for Uncertain
//! Scheduling* (Chaubey & Saule, 2015): scheduling independent tasks on
//! identical machines when processing times are known only within a
//! multiplicative factor `α`, and replicating task data buys runtime
//! flexibility.
//!
//! This facade crate re-exports the whole workspace:
//!
//! - [`core`]: the model — instances, uncertainty,
//!   realizations, placements, schedules;
//! - [`algs`]: `LPT-No Choice`, `LPT-No Restriction`,
//!   `LS-Group`, `SABO_Δ`, `ABO_Δ` and the classical substrates;
//! - [`exact`]: optimal-makespan solvers for measuring
//!   competitive ratios;
//! - [`adversary`]: the Theorem-1 adversary and worst-case
//!   realization search;
//! - [`sim`]: the discrete-event semi-clairvoyant execution
//!   engine;
//! - [`workloads`]: estimate distributions, realization
//!   models, named scenarios;
//! - [`bounds`]: every theorem as a closed-form function;
//! - [`par`]: parallel sweep executor;
//! - [`policies`]: future-work replication policies
//!   (chained, critical-task, randomized);
//! - [`robust`]: robustness envelopes, criticality, Monte
//!   Carlo distributions;
//! - [`report`]: stats, tables, CSV, ASCII plots and Gantts;
//! - [`conformance`]: the differential/metamorphic oracle checking every
//!   algorithm against the exact solvers and proven bounds.
//!
//! ## Quickstart
//! ```
//! use replicated_placement::prelude::*;
//!
//! // 8 tasks, 4 machines, runtimes known within a factor of 2.
//! let inst = Instance::from_estimates(&[8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0], 4)?;
//! let unc = Uncertainty::of(2.0);
//! let real = Realization::uniform_factor(&inst, unc, 1.0)?;
//!
//! // Replicate everywhere and schedule online.
//! let out = LptNoRestriction.run(&inst, unc, &real)?;
//! assert!(out.makespan.get() >= 8.0);
//! # Ok::<(), replicated_placement::Error>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use rds_adversary as adversary;
pub use rds_algs as algs;
pub use rds_bounds as bounds;
pub use rds_conformance as conformance;
pub use rds_core as core;
pub use rds_exact as exact;
pub use rds_par as par;
pub use rds_policies as policies;
pub use rds_report as report;
pub use rds_robust as robust;
pub use rds_sim as sim;
pub use rds_workloads as workloads;

pub use rds_core::{Error, Result};

/// One-stop imports for applications.
pub mod prelude {
    pub use rds_algs::memory::{abo::Abo, sabo::Sabo, MemoryOutcome, MemoryStrategy};
    pub use rds_algs::{LptNoChoice, LptNoRestriction, LsGroup, Outcome, Strategy};
    pub use rds_core::prelude::*;
    pub use rds_exact::{Certainty, OptMakespan, OptimalSolver};
    pub use rds_policies::{ChainedReplication, CriticalTaskReplication, RandomKReplication};
    pub use rds_sim::executors;
    pub use rds_workloads::{EstimateDistribution, RealizationModel};
}
