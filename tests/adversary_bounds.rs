//! Integration: the Theorem-1 adversary behaves exactly as the proof
//! says, across strategies and parameters.

use rds_bounds::replication as rb;
use replicated_placement::adversary::{theorem1, worst_case};
use replicated_placement::prelude::*;

fn balanced_assignment(inst: &Instance, unc: Uncertainty) -> Assignment {
    let placement = LptNoChoice.place(inst, unc).unwrap();
    LptNoChoice
        .execute(inst, &placement, &Realization::exact(inst))
        .unwrap()
}

#[test]
fn witness_bracketed_between_finite_formula_and_theorem1() {
    for &(lambda, m, alpha) in &[
        (2usize, 3usize, 1.2f64),
        (4, 4, 1.5),
        (8, 6, 2.0),
        (16, 5, 3.0),
    ] {
        let inst = theorem1::uniform_instance(lambda, m).unwrap();
        let unc = Uncertainty::of(alpha);
        let a = balanced_assignment(&inst, unc);
        let atk = theorem1::attack(&inst, unc, &a).unwrap();
        let fin = theorem1::finite_lambda_bound(alpha, m, lambda);
        let asym = theorem1::theorem1_bound(alpha, m);
        assert!(
            atk.ratio_witness() >= fin - 1e-9,
            "λ={lambda} m={m} α={alpha}: witness {} below finite formula {fin}",
            atk.ratio_witness()
        );
        assert!(
            atk.ratio_witness() <= asym + 1e-9,
            "λ={lambda} m={m} α={alpha}: witness exceeds asymptotic bound"
        );
    }
}

#[test]
fn witness_against_exact_optimum_still_below_theorem2() {
    // The witness uses the proof's crude offline schedule; against the
    // *exact* optimum the ratio can only be larger, but must stay below
    // the Theorem-2 guarantee of the algorithm under attack.
    let solver = OptimalSolver::default();
    for &(lambda, m, alpha) in &[(3usize, 4usize, 1.5f64), (4, 3, 2.0)] {
        let inst = theorem1::uniform_instance(lambda, m).unwrap();
        let unc = Uncertainty::of(alpha);
        let a = balanced_assignment(&inst, unc);
        let atk = theorem1::attack(&inst, unc, &a).unwrap();
        let opt = solver.solve_realization(&atk.realization, m);
        let exact_ratio = atk.online_makespan.ratio(opt.lo).unwrap();
        assert!(exact_ratio >= atk.ratio_witness() - 1e-9);
        assert!(
            exact_ratio <= rb::lpt_no_choice(alpha, m) + 1e-6,
            "λ={lambda} m={m} α={alpha}: {exact_ratio}"
        );
    }
}

#[test]
fn theorem1_sandwich_lb_le_ub() {
    // Structural sanity across a parameter grid: the adversary's
    // achievable witness (lower bound side) never exceeds the algorithmic
    // guarantee (upper bound side); both are ≥ 1.
    for m in [2usize, 3, 8, 50, 210] {
        for &alpha in &[1.0, 1.1, 1.5, 2.0, 4.0] {
            let lb = rb::lower_bound_no_replication(alpha, m);
            let ub = rb::lpt_no_choice(alpha, m);
            assert!((1.0..=ub + 1e-12).contains(&lb), "m={m} α={alpha}");
        }
    }
}

#[test]
fn adversary_is_less_effective_against_replication() {
    // Run the machine-inflation adversary against all three strategies
    // on the same uniform instance.
    let (lambda, m, alpha) = (3usize, 4usize, 2.0f64);
    let inst = theorem1::uniform_instance(lambda, m).unwrap();
    let unc = Uncertainty::of(alpha);
    let solver = OptimalSolver::default();
    let a = balanced_assignment(&inst, unc);
    let sets = a.tasks_per_machine();

    let pinned = worst_case::worst_per_machine_inflation(&inst, unc, &a, &solver).unwrap();
    let grouped =
        worst_case::worst_over_inflate_sets(&inst, unc, &LsGroup::new(2), &sets, &solver).unwrap();
    let full =
        worst_case::worst_over_inflate_sets(&inst, unc, &LptNoRestriction, &sets, &solver).unwrap();

    assert!(full.ratio_lo <= grouped.ratio_lo + 1e-9);
    assert!(grouped.ratio_lo <= pinned.ratio_lo + 1e-9);
    // All bounded by their respective theorems.
    assert!(pinned.ratio_hi <= rb::lpt_no_choice(alpha, m) + 1e-6);
    assert!(grouped.ratio_hi <= rb::ls_group(alpha, m, 2) + 1e-6);
    assert!(full.ratio_hi <= rb::lpt_no_restriction_best(alpha, m) + 1e-6);
}

#[test]
fn pathological_instances_under_uncertainty() {
    // Graham's tight LPT instance plus the adversary: the combined
    // ratio still respects Theorem 2.
    use replicated_placement::adversary::pathological;
    let solver = OptimalSolver::default();
    for m in 2..=4usize {
        let inst = pathological::lpt_tight(m).unwrap();
        for &alpha in &[1.3, 2.0] {
            let unc = Uncertainty::of(alpha);
            let a = balanced_assignment(&inst, unc);
            let worst = worst_case::worst_per_machine_inflation(&inst, unc, &a, &solver).unwrap();
            assert!(
                worst.ratio_hi <= rb::lpt_no_choice(alpha, m) + 1e-6,
                "m={m} α={alpha}: {}",
                worst.ratio_hi
            );
            // And it genuinely hurts more than the exact realization.
            assert!(worst.ratio_lo > 1.0);
        }
    }
}
