//! Integration: the closed-form greedy implementations and the
//! discrete-event engine produce identical executions, and every named
//! scenario runs end to end through both paths.

use replicated_placement::prelude::*;
use replicated_placement::sim::executors;
use replicated_placement::workloads::{realize::RealizationModel, rng, scenarios};

/// The engine and the closed form must agree task-by-task, not just on
/// the makespan: both use the same (load, machine-id) tie-breaking.
fn assert_same_assignment(a: &Assignment, sched: &rds_core::Schedule, inst: &Instance) {
    let b = sched.to_assignment(inst).unwrap();
    assert_eq!(a, &b, "closed form and event engine disagree");
}

/// Makespans are compared with a relative tolerance: the closed form sums
/// each machine's load in task-id order while the engine accumulates in
/// execution order, so the two (identical) schedules can differ by a few
/// ULPs of floating-point non-associativity.
fn assert_close(a: Time, b: Time, context: &str) {
    assert!(a.approx_eq(b, 1e-9), "{context}: {a} vs {b}");
}

#[test]
fn no_restriction_engine_equivalence() {
    for seed in 0..10u64 {
        let mut r = rng::rng(seed);
        let est =
            replicated_placement::workloads::EstimateDistribution::Uniform { lo: 1.0, hi: 10.0 }
                .sample_n(40, &mut r);
        let inst = Instance::from_estimates(&est, 5).unwrap();
        let unc = Uncertainty::of(2.0);
        let real = RealizationModel::LogUniformFactor
            .realize(&inst, unc, &mut r)
            .unwrap();

        let closed = LptNoRestriction.run(&inst, unc, &real).unwrap();
        let sim = executors::simulate_no_restriction(&inst, &real).unwrap();
        assert_close(closed.makespan, sim.makespan, &format!("seed {seed}"));
        assert_same_assignment(&closed.assignment, &sim.schedule, &inst);
        sim.schedule.validate(&inst, &real).unwrap();
    }
}

#[test]
fn ls_group_engine_equivalence() {
    for seed in 0..10u64 {
        let mut r = rng::rng(100 + seed);
        let est =
            replicated_placement::workloads::EstimateDistribution::Uniform { lo: 1.0, hi: 10.0 }
                .sample_n(30, &mut r);
        let inst = Instance::from_estimates(&est, 6).unwrap();
        let unc = Uncertainty::of(1.7);
        let real = RealizationModel::TwoPoint { p_inflate: 0.4 }
            .realize(&inst, unc, &mut r)
            .unwrap();
        for k in [1usize, 2, 3, 6] {
            let strat = LsGroup::new(k);
            let placement = strat.place(&inst, unc).unwrap();
            let closed = strat.execute(&inst, &placement, &real).unwrap();
            let sim = executors::simulate_grouped(&inst, &placement, &real).unwrap();
            assert_close(
                closed.makespan(&real),
                sim.makespan,
                &format!("seed {seed} k {k}"),
            );
            assert_same_assignment(&closed, &sim.schedule, &inst);
        }
    }
}

#[test]
fn pinned_engine_equivalence() {
    for seed in 0..10u64 {
        let mut r = rng::rng(200 + seed);
        let est = replicated_placement::workloads::EstimateDistribution::Exponential { mean: 5.0 }
            .sample_n(25, &mut r);
        let inst = Instance::from_estimates(&est, 4).unwrap();
        let unc = Uncertainty::of(1.5);
        let real = RealizationModel::UniformFactor
            .realize(&inst, unc, &mut r)
            .unwrap();
        let placement = LptNoChoice.place(&inst, unc).unwrap();
        let closed = LptNoChoice.execute(&inst, &placement, &real).unwrap();
        let sim = executors::simulate_pinned(&inst, closed.machines(), &real).unwrap();
        assert_close(
            closed.makespan(&real),
            sim.makespan,
            &format!("seed {seed}"),
        );
        assert_same_assignment(&closed, &sim.schedule, &inst);
    }
}

#[test]
fn scenarios_run_under_every_strategy() {
    let scenarios = [
        scenarios::out_of_core_spmv(40, 8, 1).unwrap(),
        scenarios::mapreduce(60, 12, 2).unwrap(),
        scenarios::iterative_solver(30, 6, 3).unwrap(),
    ];
    for s in &scenarios {
        let mut r = rng::rng(9);
        let real = RealizationModel::UniformFactor
            .realize(&s.instance, s.uncertainty, &mut r)
            .unwrap();
        let strategies: Vec<Box<dyn Strategy>> = vec![
            Box::new(LptNoChoice),
            Box::new(LptNoRestriction),
            Box::new(LsGroup::new_relaxed(2)),
            Box::new(LsGroup::new_relaxed(s.instance.m())),
        ];
        for strat in &strategies {
            let out = strat
                .run(&s.instance, s.uncertainty, &real)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", strat.name(), s.name));
            assert!(out.makespan.get() > 0.0);
            out.assignment.check_feasible(&out.placement).unwrap();
            // Makespan is at least the average-load lower bound.
            let lb = real.total() / s.instance.m() as f64;
            assert!(out.makespan >= lb * 0.999_999);
        }
    }
}

#[test]
fn memory_strategies_run_on_scenarios() {
    let s = scenarios::out_of_core_spmv(40, 6, 11).unwrap();
    let mut r = rng::rng(13);
    let real = RealizationModel::LogUniformFactor
        .realize(&s.instance, s.uncertainty, &mut r)
        .unwrap();
    for delta in [0.3, 1.0, 3.0] {
        let sabo = Sabo::new(delta)
            .run(&s.instance, s.uncertainty, &real)
            .unwrap();
        let abo = Abo::new(delta)
            .run(&s.instance, s.uncertainty, &real)
            .unwrap();
        // Structural invariants.
        assert_eq!(sabo.placement.max_replicas(), 1);
        assert!(abo.placement.max_replicas() <= s.instance.m());
        assert!(sabo.mem_max <= abo.mem_max, "SABO is the memory-lean one");
        // Memory accounting matches the placement.
        assert_eq!(
            abo.mem_max,
            rds_core::memory::mem_max(&s.instance, &abo.placement)
        );
    }
}

#[test]
fn abo_equals_staged_dispatcher_simulation() {
    // ABO's phase 2 (pinned S2, then online LS over replicated S1 in
    // estimate order) must match the StagedDispatcher in the engine.
    use rds_algs::memory::pi::PiSchedules;
    use rds_algs::memory::sbo::TaskClass;

    for seed in 0..6u64 {
        let mut r = rng::rng(300 + seed);
        let pairs: Vec<(f64, f64)> = (0..20)
            .map(|_| {
                use rand::Rng;
                (r.gen_range(1.0..9.0), r.gen_range(0.5..6.0))
            })
            .collect();
        let inst = Instance::from_estimates_and_sizes(&pairs, 4).unwrap();
        let unc = Uncertainty::of(1.6);
        let real = RealizationModel::UniformFactor
            .realize(&inst, unc, &mut r)
            .unwrap();

        let abo = Abo::new(1.0);
        let pis = PiSchedules::lpt_defaults(&inst).unwrap();
        let (placement, classes) = abo.place_with(&inst, &pis).unwrap();
        let closed = abo.execute_with(&inst, &pis, &classes, &real).unwrap();

        // Engine path: staged dispatcher with the same stage-1 pinning
        // and stage-2 order.
        let pinned_of: Vec<Option<MachineId>> = (0..inst.n())
            .map(|j| match classes[j] {
                TaskClass::MemoryIntensive => Some(pis.pi2.machine_of(TaskId::new(j))),
                TaskClass::TimeIntensive => None,
            })
            .collect();
        let order: Vec<TaskId> = inst
            .ids_by_estimate_desc()
            .into_iter()
            .filter(|t| classes[t.index()] == TaskClass::TimeIntensive)
            .collect();
        let mut dispatcher = rds_sim::StagedDispatcher::new(&pinned_of, inst.m(), order);
        let engine = rds_sim::Engine::new(&inst, &placement, &real).unwrap();
        let sim = engine.run(&mut dispatcher).unwrap();
        assert_close(
            closed.makespan(&real),
            sim.makespan,
            &format!("seed {seed}"),
        );
    }
}
