//! Property tests for the engine's result invariants **with live
//! instrumentation**: the reported makespan equals the latest slot end
//! across machines, and every started task traces exactly one `Start`
//! and one `Complete` — under both the no-restriction LPT dispatcher
//! and the grouped FIFO dispatcher, on random instances and
//! realizations. Running with spans and counters on also proves the
//! instrumentation never perturbs the simulation itself.

use proptest::prelude::*;
use rds_algs::Strategy as SchedulingStrategy;
use rds_core::{Instance, Realization, Time, Uncertainty};
use rds_sim::executors::{simulate_grouped, simulate_no_restriction};
use rds_sim::{SimResult, TraceEvent};

/// Strategy for a vector of 1..=max_n positive estimates.
fn estimates(max_n: usize) -> impl proptest::strategy::Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.5f64..50.0, 1..=max_n)
}

/// Deterministic per-task inflate/deflate factors from a seed pattern.
fn realization_for(inst: &Instance, unc: Uncertainty, pattern_seed: u64) -> Realization {
    let alpha = unc.alpha();
    let factors: Vec<f64> = (0..inst.n())
        .map(|j| {
            if (pattern_seed >> (j % 64)) & 1 == 1 {
                alpha
            } else {
                1.0 / alpha
            }
        })
        .collect();
    Realization::from_factors(inst, unc, &factors).unwrap()
}

/// The shared invariants: makespan is the max slot end, and the trace
/// holds exactly one `Start` and one `Complete` per task.
fn check_invariants(result: &SimResult, n: usize) {
    let max_end = result
        .schedule
        .all_slots()
        .iter()
        .filter_map(|slots| slots.last().map(|s| s.end))
        .max()
        .unwrap_or(Time::ZERO);
    prop_assert_eq!(result.makespan, max_end);

    let mut starts = vec![0usize; n];
    let mut completes = vec![0usize; n];
    for ev in result.trace.events() {
        match ev {
            TraceEvent::Start { task, .. } => starts[task.index()] += 1,
            TraceEvent::Complete { task, .. } => completes[task.index()] += 1,
            _ => {}
        }
    }
    for j in 0..n {
        prop_assert_eq!(starts[j], 1, "task {} started {} times", j, starts[j]);
        prop_assert_eq!(
            completes[j],
            1,
            "task {} completed {} times",
            j,
            completes[j]
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn no_restriction_trace_and_makespan_are_consistent(
        est in estimates(40),
        m in 1usize..8,
        alpha in 1.0f64..3.0,
        pattern_seed in any::<u64>(),
    ) {
        rds_obs::set_enabled(true);
        let events_before = rds_obs::global().counter("engine.events").get();

        let inst = Instance::from_estimates(&est, m).unwrap();
        let unc = Uncertainty::of(alpha);
        let real = realization_for(&inst, unc, pattern_seed);
        let result = simulate_no_restriction(&inst, &real).unwrap();
        check_invariants(&result, inst.n());

        // The instrumented loop really was live: at least one event per
        // task completion landed in the global counter (other tests in
        // this binary may add more — monotonicity keeps `>=` safe).
        let events_after = rds_obs::global().counter("engine.events").get();
        prop_assert!(events_after >= events_before + inst.n() as u64);
        // Keep the global span shards from accumulating across cases.
        let _ = rds_obs::take_spans();
    }

    #[test]
    fn grouped_trace_and_makespan_are_consistent(
        est in estimates(40),
        m in 1usize..8,
        k in 1usize..8,
        alpha in 1.0f64..3.0,
        pattern_seed in any::<u64>(),
    ) {
        rds_obs::set_enabled(true);
        let inst = Instance::from_estimates(&est, m).unwrap();
        let unc = Uncertainty::of(alpha);
        let real = realization_for(&inst, unc, pattern_seed);
        let placement = rds_algs::LsGroup::new_relaxed(k.min(m))
            .place(&inst, unc)
            .unwrap();
        let result = simulate_grouped(&inst, &placement, &real).unwrap();
        check_invariants(&result, inst.n());
        let _ = rds_obs::take_spans();
    }
}
