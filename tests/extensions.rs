//! Integration: the future-work extension policies compose with the rest
//! of the system (bounds, exact solver, robustness analyses).

use replicated_placement::prelude::*;
use replicated_placement::robust;
use replicated_placement::workloads::{realize::RealizationModel, rng, EstimateDistribution};

fn random_instance(n: usize, m: usize, seed: u64) -> Instance {
    let mut r = rng::rng(seed);
    let est = EstimateDistribution::Uniform { lo: 1.0, hi: 10.0 }.sample_n(n, &mut r);
    Instance::from_estimates(&est, m).unwrap()
}

#[test]
fn extension_policies_respect_graham_bound() {
    // Every extension policy is a List Scheduling variant in phase 2, so
    // 2 − 1/m must hold against the exact optimum of the actual times.
    let solver = OptimalSolver::default();
    let m = 4;
    for seed in 0..6u64 {
        let inst = random_instance(14, m, seed);
        let unc = Uncertainty::of(2.0);
        let mut r = rng::rng(1000 + seed);
        let real = RealizationModel::TwoPoint { p_inflate: 0.3 }
            .realize(&inst, unc, &mut r)
            .unwrap();
        let opt = solver.solve_realization(&real, m);
        let strategies: Vec<Box<dyn Strategy>> = vec![
            Box::new(ChainedReplication::new(2).unwrap()),
            Box::new(ChainedReplication::new(3).unwrap()),
            Box::new(RandomKReplication::new(2, seed).unwrap()),
            Box::new(CriticalTaskReplication::new(0.3).unwrap()),
            Box::new(rds_algs::group_lpt::LptGroup::new_relaxed(2)),
        ];
        for s in &strategies {
            let out = s.run(&inst, unc, &real).unwrap();
            let ratio = out.makespan.ratio(opt.lo).unwrap_or(1.0);
            assert!(
                ratio <= 2.0 - 1.0 / m as f64 + 1e-6,
                "{} seed {seed}: ratio {ratio}",
                s.name()
            );
        }
    }
}

#[test]
fn replica_budgets_interpolate_memory_footprint() {
    let inst = random_instance(30, 6, 9);
    let unc = Uncertainty::of(1.5);
    // Total replicas must be ordered: pinned < critical(30%) < chained(3)
    // on this instance shape < everywhere.
    let pinned = LptNoChoice.place(&inst, unc).unwrap().total_replicas();
    let critical = CriticalTaskReplication::new(0.3)
        .unwrap()
        .place(&inst, unc)
        .unwrap()
        .total_replicas();
    let chained = ChainedReplication::new(3)
        .unwrap()
        .place(&inst, unc)
        .unwrap()
        .total_replicas();
    let everywhere = LptNoRestriction.place(&inst, unc).unwrap().total_replicas();
    assert!(pinned < critical, "{pinned} vs {critical}");
    assert!(critical < chained * 2, "sanity");
    assert!(chained < everywhere, "{chained} vs {everywhere}");
    assert_eq!(pinned, inst.n());
    assert_eq!(chained, 3 * inst.n());
    assert_eq!(everywhere, 6 * inst.n());
}

#[test]
fn chained_beats_pinned_under_adversarial_straggler() {
    // A straggler on one machine: the chain lets its queued work drift to
    // the neighbour, pinning cannot.
    let inst = Instance::from_estimates(&[3.0; 12], 4).unwrap();
    let unc = Uncertainty::of(2.0);
    let mut worst_chain: f64 = 0.0;
    let mut worst_pin: f64 = 0.0;
    let pinned_out = LptNoChoice.place(&inst, unc).unwrap();
    let base = LptNoChoice
        .execute(&inst, &pinned_out, &Realization::exact(&inst))
        .unwrap();
    for target in 0..4usize {
        let factors: Vec<f64> = (0..12)
            .map(|j| {
                if base.machine_of(TaskId::new(j)).index() == target {
                    2.0
                } else {
                    0.5
                }
            })
            .collect();
        let real = Realization::from_factors(&inst, unc, &factors).unwrap();
        let chain = ChainedReplication::new(2)
            .unwrap()
            .run(&inst, unc, &real)
            .unwrap();
        let pin = LptNoChoice.run(&inst, unc, &real).unwrap();
        worst_chain = worst_chain.max(chain.makespan.get());
        worst_pin = worst_pin.max(pin.makespan.get());
    }
    assert!(
        worst_chain < worst_pin,
        "chained worst {worst_chain} should beat pinned worst {worst_pin}"
    );
}

#[test]
fn eva_ordering_matches_replication_spectrum() {
    // Expected value of adaptivity vs the static baseline must grow with
    // the replication budget.
    let inst = random_instance(36, 6, 77);
    let unc = Uncertainty::of(2.0);
    let model = RealizationModel::TwoPoint { p_inflate: 0.3 };
    let eva_group = robust::expected_value_of_adaptivity(
        &LptNoChoice,
        &LsGroup::new(2),
        &inst,
        unc,
        model,
        40,
        5,
    )
    .unwrap()
    .mean();
    let eva_full = robust::expected_value_of_adaptivity(
        &LptNoChoice,
        &LptNoRestriction,
        &inst,
        unc,
        model,
        40,
        5,
    )
    .unwrap()
    .mean();
    assert!(eva_full >= eva_group - 0.02, "{eva_full} vs {eva_group}");
    assert!(eva_group > 0.0);
}

#[test]
fn criticality_guides_critical_replication() {
    // The tasks the critical policy replicates are exactly high-criticality
    // ones under the robustness analysis.
    let inst = Instance::from_estimates(&[12.0, 10.0, 2.0, 2.0, 2.0, 2.0], 3).unwrap();
    let unc = Uncertainty::of(1.5);
    let placement = LptNoChoice.place(&inst, unc).unwrap();
    let assignment = LptNoChoice
        .execute(&inst, &placement, &Realization::exact(&inst))
        .unwrap();
    let crit = robust::task_criticality(&inst, &assignment);
    let policy = CriticalTaskReplication::new(0.5).unwrap();
    let chosen = policy.critical_set(&inst);
    // Every chosen task has criticality at least as high as every
    // non-chosen task.
    let chosen_min = chosen
        .iter()
        .map(|t| crit[t.index()])
        .fold(f64::INFINITY, f64::min);
    let rest_max = (0..inst.n())
        .filter(|j| !chosen.iter().any(|t| t.index() == *j))
        .map(|j| crit[j])
        .fold(0.0, f64::max);
    assert!(
        chosen_min >= rest_max - 1e-9,
        "chosen_min {chosen_min} rest_max {rest_max}"
    );
}
