//! Integration: failure injection across the replication spectrum.

use proptest::prelude::*;
use rds_algs::Strategy as _;
use replicated_placement::prelude::*;
use replicated_placement::sim::failures::{run_with_failures, Failure};
use replicated_placement::sim::{OrderedDispatcher, PinnedDispatcher};
use replicated_placement::workloads::{realize::RealizationModel, rng, EstimateDistribution};

fn failure(machine: usize, at: f64) -> Failure {
    Failure {
        machine: MachineId::new(machine),
        at: Time::of(at),
    }
}

#[test]
fn everywhere_placement_survives_any_single_failure() {
    let mut r = rng::rng(1);
    let est = EstimateDistribution::Uniform { lo: 1.0, hi: 8.0 }.sample_n(30, &mut r);
    let inst = Instance::from_estimates(&est, 5).unwrap();
    let unc = Uncertainty::of(1.5);
    let real = RealizationModel::UniformFactor
        .realize(&inst, unc, &mut r)
        .unwrap();
    let placement = Placement::everywhere(&inst);
    for target in 0..5usize {
        for &at in &[0.0, 5.0, 20.0] {
            let res = run_with_failures(
                &inst,
                &placement,
                &real,
                &mut OrderedDispatcher::lpt_by_estimate(&inst),
                &[failure(target, at)],
            )
            .unwrap_or_else(|e| panic!("machine {target} at {at}: {e}"));
            res.schedule.validate_completed(&inst, &real);
            // The dead machine contributes nothing after `at`.
            for slot in res.schedule.slots(MachineId::new(target)) {
                assert!(slot.start.get() < at || at == 0.0);
            }
        }
    }
}

/// Validation helper for schedules where every task appears exactly once
/// (failure runs satisfy this: lost attempts are not slots).
trait ValidateCompleted {
    fn validate_completed(&self, inst: &Instance, real: &Realization);
}

impl ValidateCompleted for rds_core::Schedule {
    fn validate_completed(&self, inst: &Instance, real: &Realization) {
        self.validate(inst, real).unwrap();
    }
}

#[test]
fn pinned_placement_strands_exactly_the_failed_machines_tasks() {
    let inst = Instance::from_estimates(&[5.0, 4.0, 3.0, 2.0, 2.0, 2.0], 3).unwrap();
    let unc = Uncertainty::CERTAIN;
    let placement = LptNoChoice.place(&inst, unc).unwrap();
    let assignment = LptNoChoice
        .execute(&inst, &placement, &Realization::exact(&inst))
        .unwrap();
    let real = Realization::exact(&inst);
    // Failing a machine early strands its pinned tasks.
    for target in 0..3usize {
        let mut d = PinnedDispatcher::new(assignment.machines(), 3);
        let err = run_with_failures(&inst, &placement, &real, &mut d, &[failure(target, 0.5)]);
        assert!(err.is_err(), "machine {target} had pinned work");
    }
}

#[test]
fn restarts_extend_but_bound_the_makespan() {
    // With replication, a failure at time t wastes at most t + restarts
    // from scratch: makespan ≤ failure-free + failure time + task length.
    let inst = Instance::from_estimates(&[6.0, 3.0, 3.0], 2).unwrap();
    let real = Realization::exact(&inst);
    let placement = Placement::everywhere(&inst);
    let base = run_with_failures(
        &inst,
        &placement,
        &real,
        &mut OrderedDispatcher::lpt_by_estimate(&inst),
        &[],
    )
    .unwrap();
    let hit = run_with_failures(
        &inst,
        &placement,
        &real,
        &mut OrderedDispatcher::lpt_by_estimate(&inst),
        &[failure(0, 4.0)],
    )
    .unwrap();
    assert!(hit.makespan >= base.makespan);
    // Lost 4 units of the big task, restarted at t=4 on the survivor.
    assert!(hit.makespan <= base.makespan + Time::of(6.0) + Time::of(4.0));
    assert_eq!(hit.restarts, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn grouped_placements_survive_iff_a_holder_lives(
        est in prop::collection::vec(0.5f64..8.0, 4..20),
        seed in any::<u64>(),
    ) {
        let m = 4usize;
        let inst = Instance::from_estimates(&est, m).unwrap();
        let unc = Uncertainty::of(1.5);
        let mut r = rng::rng(seed);
        let real = RealizationModel::UniformFactor.realize(&inst, unc, &mut r).unwrap();
        let strategy = LsGroup::new(2); // groups {0,1}, {2,3}
        let placement = strategy.place(&inst, unc).unwrap();

        // One failure: every group keeps a living member → must survive.
        let one = run_with_failures(
            &inst,
            &placement,
            &real,
            &mut OrderedDispatcher::fifo(&inst),
            &[failure((seed % 4) as usize, 0.1)],
        );
        prop_assert!(one.is_ok());

        // Killing a whole group at time 0 strands its tasks — unless the
        // group happened to hold no tasks.
        let group0_has_tasks = inst
            .task_ids()
            .any(|t| placement.allows(t, MachineId::new(0)));
        let both = run_with_failures(
            &inst,
            &placement,
            &real,
            &mut OrderedDispatcher::fifo(&inst),
            &[failure(0, 0.0), failure(1, 0.0)],
        );
        prop_assert_eq!(both.is_err(), group0_has_tasks);
    }

    #[test]
    fn survivors_complete_exactly_n_tasks(
        est in prop::collection::vec(0.5f64..5.0, 2..15),
        fail_machine in 0usize..3,
        fail_at in 0.0f64..10.0,
    ) {
        let m = 3usize;
        let inst = Instance::from_estimates(&est, m).unwrap();
        let real = Realization::exact(&inst);
        let placement = Placement::everywhere(&inst);
        let res = run_with_failures(
            &inst,
            &placement,
            &real,
            &mut OrderedDispatcher::fifo(&inst),
            &[failure(fail_machine, fail_at)],
        ).unwrap();
        let completed: usize = res.schedule.all_slots().iter().map(|s| s.len()).sum();
        prop_assert_eq!(completed, inst.n());
        res.schedule.validate(&inst, &real).unwrap();
    }
}
