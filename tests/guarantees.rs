//! Integration: every measured competitive ratio respects its theorem.
//!
//! For each strategy × uncertainty × realization-model combination, run
//! end to end on the simulator-equivalent closed forms and compare the
//! achieved makespan against the *exact* optimum of the realized times
//! (instances kept small enough for the exact solvers). The proven
//! bounds of Theorems 2–4 must hold on every single run.

use rds_bounds::replication as rb;
use replicated_placement::prelude::*;
use replicated_placement::workloads::{realize::RealizationModel, rng, EstimateDistribution};

fn check_ratio_bound<S: Strategy>(
    strategy: &S,
    bound: f64,
    inst: &Instance,
    unc: Uncertainty,
    real: &Realization,
    solver: &OptimalSolver,
    context: &str,
) {
    let out = strategy.run(inst, unc, real).expect("strategy runs");
    let opt = solver.solve_realization(real, inst.m());
    // Use the certified lower end of the optimum bracket: the *highest*
    // ratio the measurement could justify. It must respect the bound.
    let ratio = out.makespan.ratio(opt.lo).unwrap_or(1.0);
    assert!(
        ratio <= bound + 1e-6,
        "{context}: measured ratio {ratio:.4} exceeds bound {bound:.4} \
         (C_max = {}, opt ∈ [{}, {}])",
        out.makespan,
        opt.lo,
        opt.hi
    );
}

#[test]
fn theorem_bounds_hold_across_workloads_and_realizations() {
    let solver = OptimalSolver::default();
    let models = [
        RealizationModel::Exact,
        RealizationModel::AllInflate,
        RealizationModel::AllDeflate,
        RealizationModel::UniformFactor,
        RealizationModel::TwoPoint { p_inflate: 0.3 },
    ];
    let mut trial = 0u64;
    for &m in &[2usize, 4, 6] {
        for &alpha in &[1.0, 1.3, 2.0] {
            let unc = Uncertainty::of(alpha);
            for &n in &[m, 2 * m + 1, 12] {
                let mut r = rng::rng(rng::child_seed(0xA11CE, trial));
                trial += 1;
                let est = EstimateDistribution::Uniform { lo: 1.0, hi: 9.0 }.sample_n(n, &mut r);
                let inst = Instance::from_estimates(&est, m).unwrap();
                for model in &models {
                    let real = model.realize(&inst, unc, &mut r).unwrap();
                    check_ratio_bound(
                        &LptNoChoice,
                        rb::lpt_no_choice(alpha, m),
                        &inst,
                        unc,
                        &real,
                        &solver,
                        &format!("LPT-NC m={m} α={alpha} n={n} {model:?}"),
                    );
                    check_ratio_bound(
                        &LptNoRestriction,
                        rb::lpt_no_restriction_best(alpha, m),
                        &inst,
                        unc,
                        &real,
                        &solver,
                        &format!("LPT-NR m={m} α={alpha} n={n} {model:?}"),
                    );
                    for k in rb::group_counts(m) {
                        check_ratio_bound(
                            &LsGroup::new(k),
                            rb::ls_group(alpha, m, k),
                            &inst,
                            unc,
                            &real,
                            &solver,
                            &format!("LS-Group(k={k}) m={m} α={alpha} n={n} {model:?}"),
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn certain_alpha_recovers_classical_ratios() {
    // With α = 1 the uncertain bounds collapse to (near-)classical ones:
    // LPT-No Choice → 2m/(m+1) ≥ LPT's offline 4/3 − 1/(3m), so any LPT
    // run must respect 4/3 − 1/(3m) too (LPT property, not the theorem).
    let solver = OptimalSolver::default();
    for &m in &[2usize, 3, 5] {
        for seed in 0..5u64 {
            let mut r = rng::rng(seed);
            let est =
                EstimateDistribution::Uniform { lo: 1.0, hi: 20.0 }.sample_n(2 * m + 3, &mut r);
            let inst = Instance::from_estimates(&est, m).unwrap();
            let real = Realization::exact(&inst);
            let out = LptNoChoice.run(&inst, Uncertainty::CERTAIN, &real).unwrap();
            let opt = solver.solve_realization(&real, m);
            let ratio = out.makespan.ratio(opt.lo).unwrap();
            assert!(
                ratio <= 4.0 / 3.0 - 1.0 / (3.0 * m as f64) + 1e-6,
                "m={m} seed={seed}: LPT ratio {ratio}"
            );
        }
    }
}

#[test]
fn replication_never_hurts_worst_case_on_uniform_adversary() {
    // On the adversary-shaped workload, measured worst ratios must be
    // ordered: full replication ≤ grouped ≤ none (up to solver noise).
    let m = 6;
    let alpha = 2.0;
    let unc = Uncertainty::of(alpha);
    let inst = Instance::from_estimates(&vec![1.0; 3 * m], m).unwrap();
    let solver = OptimalSolver::default();

    let worst_ratio = |strategy: &dyn Strategy| -> f64 {
        // Enumerate single-machine inflations against the strategy's
        // balanced assignment.
        let placement = strategy.place(&inst, unc).unwrap();
        let balanced = strategy
            .execute(&inst, &placement, &Realization::exact(&inst))
            .unwrap();
        let mut worst: f64 = 1.0;
        for target in 0..m {
            let factors: Vec<f64> = (0..inst.n())
                .map(|j| {
                    if balanced.machine_of(TaskId::new(j)).index() == target {
                        alpha
                    } else {
                        1.0 / alpha
                    }
                })
                .collect();
            let real = Realization::from_factors(&inst, unc, &factors).unwrap();
            let out = strategy.run(&inst, unc, &real).unwrap();
            let opt = solver.solve_realization(&real, m);
            worst = worst.max(out.makespan.ratio(opt.hi).unwrap_or(1.0));
        }
        worst
    };

    let none = worst_ratio(&LptNoChoice);
    let grouped = worst_ratio(&LsGroup::new(2));
    let full = worst_ratio(&LptNoRestriction);
    assert!(
        full <= grouped + 1e-9 && grouped <= none + 1e-9,
        "expected full ({full:.3}) ≤ grouped ({grouped:.3}) ≤ none ({none:.3})"
    );
    // And the gap must be material for α = 2.
    assert!(
        none - full > 0.3,
        "replication gain too small: {none} vs {full}"
    );
}
