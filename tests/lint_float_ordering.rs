//! Lint gate for the NaN-ordering bug class (PR 5 / PR 8 sweeps).
//!
//! `f64::partial_cmp` inside comparators silently yields `None` on NaN;
//! the usual recoveries (`.unwrap()`, `.unwrap_or(Equal)`) panic or
//! scramble the sort — exactly the bug fixed in
//! `crates/serve/src/stats.rs`. The clippy `disallowed-methods` deny in
//! `clippy.toml` catches this in CI; this test re-checks the sources
//! directly so plain `cargo test` fails too, clippy installed or not.

use std::fs;
use std::path::{Path, PathBuf};

/// A `partial_cmp` *call* is banned everywhere outside `vendor/`; a
/// `fn partial_cmp` *definition* (a `PartialOrd` impl delegating to a
/// total `Ord`) is fine.
fn scan(path: &Path, violations: &mut Vec<String>) {
    for entry in fs::read_dir(path).expect("readable source tree") {
        let entry = entry.expect("readable dir entry");
        let p = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if p.is_dir() {
            if name == "target" || name == "vendor" || name.starts_with('.') {
                continue;
            }
            scan(&p, violations);
        } else if name.ends_with(".rs") {
            let src = fs::read_to_string(&p).expect("readable source file");
            for (lineno, line) in src.lines().enumerate() {
                let trimmed = line.trim_start();
                if trimmed.starts_with("//") {
                    continue;
                }
                if line.contains(".partial_cmp(") && !line.contains("fn partial_cmp") {
                    violations.push(format!("{}:{}: {}", p.display(), lineno + 1, trimmed));
                }
            }
        }
    }
}

#[test]
fn no_partial_cmp_calls_outside_vendor() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut violations = Vec::new();
    for dir in ["crates", "examples", "tests", "src"] {
        let p = root.join(dir);
        if p.is_dir() {
            scan(&p, &mut violations);
        }
    }
    assert!(
        violations.is_empty(),
        "NaN-unsafe float orderings found — use f64::total_cmp or the \
         Time/Size newtypes instead:\n{}",
        violations.join("\n")
    );
}
