//! Integration: Theorems 5–8 hold on real executions with exact
//! reference quantities.
//!
//! On small instances we compute the true optima (`C*` via the exact
//! solver on actual times; `Mem*` via the exact solver on sizes — memory
//! occupation of a replication-free placement *is* a makespan on sizes)
//! and plug optimal π-schedules (`ρ₁ = ρ₂ = 1`) into SABO/ABO, so the
//! theorem inequalities can be checked without slack from heuristic ρ's.

use rds_algs::memory::pi::PiSchedules;
use rds_algs::memory::{abo::Abo, sabo::Sabo};
use rds_core::Time;
use replicated_placement::prelude::*;
use replicated_placement::workloads::{realize::RealizationModel, rng};

/// Builds optimal π₁ (makespan on estimates) and π₂ (memory on sizes)
/// with the exact solver, wrapped as ρ = 1 schedules.
fn optimal_pis(inst: &Instance) -> PiSchedules {
    let est: Vec<Time> = inst.tasks().iter().map(|t| t.estimate).collect();
    let (_, a1) = rds_exact::dp::optimal(&est, inst.m()).unwrap();
    let sizes: Vec<Time> = inst
        .tasks()
        .iter()
        .map(|t| Time::of(t.size.get()))
        .collect();
    let (_, a2) = rds_exact::dp::optimal(&sizes, inst.m()).unwrap();
    let pi1 = Assignment::new(inst, a1).unwrap();
    let pi2 = Assignment::new(inst, a2).unwrap();
    PiSchedules::from_assignments(inst, pi1, pi2, 1.0, 1.0)
}

fn random_sized_instance(n: usize, m: usize, seed: u64) -> Instance {
    use rand::Rng;
    let mut r = rng::rng(seed);
    let pairs: Vec<(f64, f64)> = (0..n)
        .map(|_| (r.gen_range(1.0..8.0), r.gen_range(0.5..6.0)))
        .collect();
    Instance::from_estimates_and_sizes(&pairs, m).unwrap()
}

#[test]
fn sabo_respects_theorems_5_and_6_with_exact_references() {
    let solver = OptimalSolver::default();
    for seed in 0..8u64 {
        let inst = random_sized_instance(10, 3, seed);
        let unc = Uncertainty::of(1.5);
        let pis = optimal_pis(&inst);
        let mut r = rng::rng(1000 + seed);
        let real = RealizationModel::TwoPoint { p_inflate: 0.5 }
            .realize(&inst, unc, &mut r)
            .unwrap();
        for &delta in &[0.3, 1.0, 2.5] {
            let sabo = Sabo::new(delta);
            let (placement, assignment) = sabo.place_with(&inst, &pis).unwrap();
            assignment.check_feasible(&placement).unwrap();
            let cmax = assignment.makespan(&real);
            // Theorem 5: C_max ≤ (1 + Δ)·α²·ρ₁·C*.
            let opt = solver.solve_realization(&real, inst.m());
            let bound = rds_bounds::memory::sabo_makespan(delta, unc.alpha(), 1.0);
            assert!(
                cmax.get() <= bound * opt.hi.get() + 1e-6,
                "seed {seed} Δ={delta}: Th.5 violated ({cmax} > {bound}·{})",
                opt.hi
            );
            // Theorem 6: Mem_max ≤ (1 + 1/Δ)·ρ₂·Mem*.
            let mem = rds_core::memory::mem_max(&inst, &placement);
            let sizes: Vec<Time> = inst
                .tasks()
                .iter()
                .map(|t| Time::of(t.size.get()))
                .collect();
            let (mem_opt, _) = rds_exact::dp::optimal(&sizes, inst.m()).unwrap();
            let mem_bound = rds_bounds::memory::sabo_memory(delta, 1.0);
            assert!(
                mem.get() <= mem_bound * mem_opt.get() + 1e-6,
                "seed {seed} Δ={delta}: Th.6 violated ({mem} > {mem_bound}·{mem_opt})"
            );
        }
    }
}

#[test]
fn abo_respects_theorems_7_and_8_with_exact_references() {
    let solver = OptimalSolver::default();
    for seed in 0..8u64 {
        let inst = random_sized_instance(10, 3, 50 + seed);
        let unc = Uncertainty::of(1.5);
        let pis = optimal_pis(&inst);
        let mut r = rng::rng(2000 + seed);
        let real = RealizationModel::UniformFactor
            .realize(&inst, unc, &mut r)
            .unwrap();
        for &delta in &[0.3, 1.0, 2.5] {
            let abo = Abo::new(delta);
            let (placement, classes) = abo.place_with(&inst, &pis).unwrap();
            let assignment = abo.execute_with(&inst, &pis, &classes, &real).unwrap();
            assignment.check_feasible(&placement).unwrap();
            let cmax = assignment.makespan(&real);
            let opt = solver.solve_realization(&real, inst.m());
            // Theorem 7: C_max ≤ (2 − 1/m + Δ·α²·ρ₁)·C*.
            let bound = rds_bounds::memory::abo_makespan(delta, unc.alpha(), 1.0, inst.m());
            assert!(
                cmax.get() <= bound * opt.hi.get() + 1e-6,
                "seed {seed} Δ={delta}: Th.7 violated"
            );
            // Theorem 8: Mem_max ≤ (1 + m/Δ)·ρ₂·Mem*.
            let mem = rds_core::memory::mem_max(&inst, &placement);
            let sizes: Vec<Time> = inst
                .tasks()
                .iter()
                .map(|t| Time::of(t.size.get()))
                .collect();
            let (mem_opt, _) = rds_exact::dp::optimal(&sizes, inst.m()).unwrap();
            let mem_bound = rds_bounds::memory::abo_memory(delta, 1.0, inst.m());
            assert!(
                mem.get() <= mem_bound * mem_opt.get() + 1e-6,
                "seed {seed} Δ={delta}: Th.8 violated"
            );
        }
    }
}

#[test]
fn delta_sweep_moves_the_split_monotonically() {
    // The *split* is monotone in Δ (S₂ only grows); Mem_max of a mixture
    // is not guaranteed monotone point-wise, but the extremes must be
    // ordered: the all-π₂ placement (Δ → ∞) cannot use more memory than
    // the all-π₁ placement (Δ → 0), since π₂ is the memory-balanced one.
    let inst = random_sized_instance(24, 4, 7);
    let unc = Uncertainty::of(1.4);
    let real = Realization::exact(&inst);
    let pis = rds_algs::memory::pi::PiSchedules::lpt_defaults(&inst).unwrap();
    let deltas = [0.05, 0.2, 1.0, 5.0, 20.0, 1e6];
    let mut prev_s2 = 0usize;
    for &d in &deltas {
        let (s1, s2) = rds_algs::memory::sbo::split(&inst, &pis, d);
        assert_eq!(s1.len() + s2.len(), inst.n());
        assert!(s2.len() >= prev_s2, "S2 shrank as Δ grew");
        prev_s2 = s2.len();
    }
    let lean = Sabo::new(1e6).run(&inst, unc, &real).unwrap();
    let fast = Sabo::new(1e-6).run(&inst, unc, &real).unwrap();
    assert!(
        lean.mem_max <= fast.mem_max,
        "all-π₂ memory {} should not exceed all-π₁ memory {}",
        lean.mem_max,
        fast.mem_max
    );
}

#[test]
fn abo_memory_accounts_replication_cost() {
    // The achieved Mem_max of ABO must equal Σ_{S1} s_j + max-machine S2
    // contribution — i.e. replicas are really charged everywhere.
    let inst =
        Instance::from_estimates_and_sizes(&[(9.0, 2.0), (8.0, 1.0), (0.5, 5.0), (0.4, 4.0)], 2)
            .unwrap();
    let unc = Uncertainty::of(1.2);
    let real = Realization::exact(&inst);
    let out = Abo::new(1.0).run(&inst, unc, &real).unwrap();
    // Tasks 0, 1 are time-intensive (replicated, sizes 2 + 1); tasks 2, 3
    // memory-intensive, LPT-on-sizes puts 5 and 4 on different machines.
    assert_eq!(out.mem_max.get(), 2.0 + 1.0 + 5.0);
}
