//! Property-based tests (proptest) on the core invariants.

use proptest::prelude::*;
use replicated_placement::prelude::*;
// Explicit import: `proptest::prelude::Strategy` shadows the scheduling
// trait under the glob imports above.
use rds_algs::Strategy as SchedulingStrategy;
use rds_exact::lower_bounds;

/// Strategy for a vector of 1..=n positive estimates.
fn estimates(max_n: usize) -> impl proptest::strategy::Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.1f64..100.0, 1..=max_n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn realization_always_inside_interval(
        est in estimates(30),
        alpha in 1.0f64..4.0,
        pattern_seed in any::<u64>(),
    ) {
        let m = 3;
        let inst = Instance::from_estimates(&est, m).unwrap();
        let unc = Uncertainty::of(alpha);
        let factors: Vec<f64> = (0..inst.n())
            .map(|j| if (pattern_seed >> (j % 64)) & 1 == 1 { alpha } else { 1.0 / alpha })
            .collect();
        let real = Realization::from_factors(&inst, unc, &factors).unwrap();
        for t in inst.task_ids() {
            prop_assert!(unc.contains(inst.estimate(t), real.actual(t)));
        }
    }

    #[test]
    fn makespan_equals_max_load_and_sums_conserve(
        est in estimates(40),
        m in 1usize..8,
    ) {
        let inst = Instance::from_estimates(&est, m).unwrap();
        let real = Realization::exact(&inst);
        let a = rds_algs::list_scheduling::lpt_estimates(&inst).unwrap();
        let loads = a.loads(&real);
        // Sum of loads = sum of processing times.
        let total: f64 = loads.iter().map(|t| t.get()).sum();
        prop_assert!((total - real.total().get()).abs() < 1e-6 * total.max(1.0));
        // Makespan = max load.
        prop_assert_eq!(a.makespan(&real), loads.into_iter().max().unwrap());
    }

    #[test]
    fn strategies_always_feasible_and_bounded_by_graham(
        est in estimates(25),
        alpha in 1.0f64..3.0,
        pattern in any::<u64>(),
        m in 2usize..7,
    ) {
        let inst = Instance::from_estimates(&est, m).unwrap();
        let unc = Uncertainty::of(alpha);
        let factors: Vec<f64> = (0..inst.n())
            .map(|j| if (pattern >> (j % 64)) & 1 == 1 { alpha } else { 1.0 / alpha })
            .collect();
        let real = Realization::from_factors(&inst, unc, &factors).unwrap();

        // LPT-No Restriction is a List Scheduling variant: its makespan
        // is bounded by avg + (m-1)/m * pmax for the actual times.
        let out = LptNoRestriction.run(&inst, unc, &real).unwrap();
        let avg = real.total() / m as f64;
        let bound = avg + real.max() * ((m - 1) as f64 / m as f64);
        prop_assert!(out.makespan.get() <= bound.get() + 1e-9,
            "LS property violated: {} > {}", out.makespan, bound);

        // Every strategy's output is feasible (run() checks it, but the
        // property re-asserts the placement shapes too).
        for k in 1..=m {
            if m % k != 0 { continue; }
            let g = LsGroup::new(k).run(&inst, unc, &real).unwrap();
            prop_assert!(g.placement.max_replicas() == m / k);
        }
    }

    #[test]
    fn exact_optimum_is_a_true_lower_bound(
        est in estimates(10),
        m in 1usize..5,
    ) {
        let inst = Instance::from_estimates(&est, m).unwrap();
        let real = Realization::exact(&inst);
        let times = real.times();
        let (opt, assign) = rds_exact::dp::optimal(times, m).unwrap();
        // Optimal ≥ every combinatorial lower bound.
        prop_assert!(opt >= lower_bounds::combined(times, m) * 0.999_999_999);
        // Optimal ≤ any heuristic (LPT here).
        let lpt = rds_algs::list_scheduling::lpt_estimates(&inst).unwrap();
        prop_assert!(opt <= lpt.makespan(&real) * 1.000_000_001);
        // The reconstruction achieves the reported value.
        let mut loads = vec![0.0f64; m];
        for (j, id) in assign.iter().enumerate() {
            loads[id.index()] += times[j].get();
        }
        let achieved = loads.into_iter().fold(0.0, f64::max);
        prop_assert!((achieved - opt.get()).abs() < 1e-9 * achieved.max(1.0));
    }

    #[test]
    fn multifit_within_bound_and_above_optimal(
        est in estimates(12),
        m in 1usize..5,
    ) {
        let inst = Instance::from_estimates(&est, m).unwrap();
        let times: Vec<Time> = inst.tasks().iter().map(|t| t.estimate).collect();
        let (mf, _) = rds_exact::bin_packing::multifit(&times, m, 40);
        let (opt, _) = rds_exact::dp::optimal(&times, m).unwrap();
        prop_assert!(mf >= opt * 0.999_999_999, "multifit below optimal");
        prop_assert!(mf.get() <= 13.0 / 11.0 * opt.get() + 1e-9, "multifit beyond 13/11");
    }

    #[test]
    fn placement_budget_consistency(
        est in estimates(20),
        m in 2usize..9,
    ) {
        let inst = Instance::from_estimates(&est, m).unwrap();
        let everywhere = Placement::everywhere(&inst);
        prop_assert!(everywhere.check_budget(m).is_ok());
        prop_assert!(everywhere.check_budget(m - 1).is_err());
        prop_assert_eq!(everywhere.total_replicas(), m * inst.n());
    }

    #[test]
    fn balancer_matches_naive_greedy(
        weights in prop::collection::vec(0.0f64..50.0, 1..60),
        m in 1usize..9,
    ) {
        let mut fast = rds_algs::balancer::LoadBalancer::new(m);
        let mut naive = vec![0.0f64; m];
        for &w in &weights {
            let picked = fast.assign(Time::of(w));
            let slow = naive
                .iter()
                .enumerate()
                .min_by(|(i, a), (j, b)| a.total_cmp(b).then(i.cmp(j)))
                .unwrap()
                .0;
            prop_assert_eq!(picked.index(), slow);
            naive[slow] += w;
        }
    }

    #[test]
    fn two_point_adversary_never_exceeds_theorem2(
        lambda in 1usize..6,
        m in 2usize..6,
        alpha in 1.0f64..2.5,
    ) {
        // The full Theorem-1 adversary flow as a property.
        let inst = replicated_placement::adversary::theorem1::uniform_instance(lambda, m).unwrap();
        let unc = Uncertainty::of(alpha);
        let p = LptNoChoice.place(&inst, unc).unwrap();
        let a = LptNoChoice.execute(&inst, &p, &Realization::exact(&inst)).unwrap();
        let atk = replicated_placement::adversary::theorem1::attack(&inst, unc, &a).unwrap();
        let bound = rds_bounds::replication::lpt_no_choice(alpha, m);
        // Witness ratio uses an optimum overestimate, so it must respect
        // the upper bound as well.
        prop_assert!(atk.ratio_witness() <= bound + 1e-9);
    }

    #[test]
    fn group_partition_is_a_partition(
        m in 1usize..64,
        k_seed in any::<u64>(),
    ) {
        let k = (k_seed as usize % m) + 1;
        let g = GroupPartition::new(m, k).unwrap();
        let mut seen = vec![false; m];
        for grp in 0..k {
            for i in g.group_range(grp) {
                prop_assert!(!seen[i], "machine {} in two groups", i);
                seen[i] = true;
                prop_assert_eq!(g.group_of(MachineId::new(i)), grp);
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
        // Near-equal sizes.
        let sizes: Vec<usize> = (0..k).map(|grp| g.group_size(grp)).collect();
        let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(hi - lo <= 1);
    }

    #[test]
    fn schedule_sequencing_roundtrip(
        est in estimates(20),
        m in 1usize..6,
    ) {
        let inst = Instance::from_estimates(&est, m).unwrap();
        let real = Realization::exact(&inst);
        let a = rds_algs::list_scheduling::list_schedule_estimates(&inst).unwrap();
        let s = Schedule::sequence(&a.tasks_per_machine(), &real);
        s.validate(&inst, &real).unwrap();
        prop_assert_eq!(s.to_assignment(&inst).unwrap(), a.clone());
        prop_assert_eq!(s.makespan(), a.makespan(&real));
    }
}

/// Deterministic pseudo-random sizes in `[1, 10]` derived from a seed,
/// so the solver properties get (estimate, size) pairs without needing
/// tuple strategies.
fn derive_sizes(seed: u64, n: usize) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 10) as f64 + 1.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lp_rounding_is_always_memory_and_replica_feasible(
        est in estimates(10),
        m in 2usize..5,
        alpha in 1.0f64..2.5,
        k in 1usize..4,
        seed in any::<u64>(),
    ) {
        let sizes = derive_sizes(seed, est.len());
        let pairs: Vec<(f64, f64)> = est.iter().copied().zip(sizes.iter().copied()).collect();
        let inst = Instance::from_estimates_and_sizes(&pairs, m).unwrap();
        let unc = Uncertainty::of(alpha);
        // avg + max is achievable by the size-driven greedy, so the
        // rounding path must always succeed under this budget.
        let budget = Size::of(
            inst.total_size().get() / m as f64 + inst.max_size().get(),
        );
        let strat = rds_algs::LpRoundingPlacement::new(k).unwrap().with_budget(budget);
        let placement = strat.place(&inst, unc).unwrap();
        // Memory budget holds after rounding, repair, and k-padding.
        let mem = rds_core::memory::mem_max(&inst, &placement);
        prop_assert!(
            mem.get() <= budget.get() * (1.0 + 1e-9),
            "Mem_max {} exceeds B {}", mem, budget
        );
        // Per-task replica bounds: 1 ≤ |M_j| ≤ k.
        placement.check_budget(k.min(m)).unwrap();
        for t in inst.task_ids() {
            prop_assert!(placement.replicas(t) >= 1);
        }
        // The full two-phase run stays feasible.
        let real = Realization::uniform_factor(&inst, unc, alpha).unwrap();
        let out = strat.run(&inst, unc, &real).unwrap();
        out.assignment.check_feasible(&out.placement).unwrap();
    }

    #[test]
    fn ilp_never_below_lp_bound_and_matches_certified_optimum(
        est in estimates(8),
        m in 2usize..5,
        alpha in 1.0f64..2.0,
        seed in any::<u64>(),
    ) {
        let unc = Uncertainty::of(alpha);
        // Unconstrained memory: the IP is P || C_max on the envelopes,
        // so the B&B must agree exactly with the certified optimum.
        let inst = Instance::from_estimates(&est, m).unwrap();
        let r = rds_algs::IlpPlacement::new(1).unwrap().solve_model(&inst, unc).unwrap();
        prop_assert!(r.proved, "n <= 8 must prove within the default budget");
        prop_assert!(r.makespan.get() >= r.lower_bound.get() - 1e-9);
        if let Some(lp) = r.lp_bound {
            prop_assert!(
                r.makespan.get() >= lp - 1e-9 * lp.max(1.0),
                "ilp {} below its lp bound {lp}", r.makespan
            );
        }
        let envelopes: Vec<Time> = est.iter().map(|&p| Time::of(alpha * p)).collect();
        let opt = rds_exact::OptimalSolver::default().solve(&envelopes, m);
        prop_assert_eq!(opt.certainty, rds_exact::Certainty::Exact);
        prop_assert!(
            (r.makespan.get() - opt.lo.get()).abs() < 1e-9 * opt.lo.get().max(1.0),
            "ilp {} != certified optimum {}", r.makespan, opt.lo
        );

        // Memory-constrained: the bound ordering still holds.
        let sizes = derive_sizes(seed, est.len());
        let pairs: Vec<(f64, f64)> = est.iter().copied().zip(sizes.iter().copied()).collect();
        let inst = Instance::from_estimates_and_sizes(&pairs, m).unwrap();
        let budget = Size::of(
            inst.total_size().get() / m as f64 + inst.max_size().get(),
        );
        let r = rds_algs::IlpPlacement::new(1)
            .unwrap()
            .with_budget(budget)
            .solve_model(&inst, unc)
            .unwrap();
        prop_assert!(r.makespan.get() >= r.lower_bound.get() - 1e-9);
        if let Some(lp) = r.lp_bound {
            prop_assert!(r.makespan.get() >= lp - 1e-9 * lp.max(1.0));
        }
        // Tightening memory can only raise the optimum above the
        // unconstrained one.
        prop_assert!(r.makespan.get() >= opt.lo.get() - 1e-9 * opt.lo.get().max(1.0));
    }
}
