//! Property-based tests (proptest) on the core invariants.

use proptest::prelude::*;
use replicated_placement::prelude::*;
// Explicit import: `proptest::prelude::Strategy` shadows the scheduling
// trait under the glob imports above.
use rds_algs::Strategy as SchedulingStrategy;
use rds_exact::lower_bounds;

/// Strategy for a vector of 1..=n positive estimates.
fn estimates(max_n: usize) -> impl proptest::strategy::Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.1f64..100.0, 1..=max_n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn realization_always_inside_interval(
        est in estimates(30),
        alpha in 1.0f64..4.0,
        pattern_seed in any::<u64>(),
    ) {
        let m = 3;
        let inst = Instance::from_estimates(&est, m).unwrap();
        let unc = Uncertainty::of(alpha);
        let factors: Vec<f64> = (0..inst.n())
            .map(|j| if (pattern_seed >> (j % 64)) & 1 == 1 { alpha } else { 1.0 / alpha })
            .collect();
        let real = Realization::from_factors(&inst, unc, &factors).unwrap();
        for t in inst.task_ids() {
            prop_assert!(unc.contains(inst.estimate(t), real.actual(t)));
        }
    }

    #[test]
    fn makespan_equals_max_load_and_sums_conserve(
        est in estimates(40),
        m in 1usize..8,
    ) {
        let inst = Instance::from_estimates(&est, m).unwrap();
        let real = Realization::exact(&inst);
        let a = rds_algs::list_scheduling::lpt_estimates(&inst).unwrap();
        let loads = a.loads(&real);
        // Sum of loads = sum of processing times.
        let total: f64 = loads.iter().map(|t| t.get()).sum();
        prop_assert!((total - real.total().get()).abs() < 1e-6 * total.max(1.0));
        // Makespan = max load.
        prop_assert_eq!(a.makespan(&real), loads.into_iter().max().unwrap());
    }

    #[test]
    fn strategies_always_feasible_and_bounded_by_graham(
        est in estimates(25),
        alpha in 1.0f64..3.0,
        pattern in any::<u64>(),
        m in 2usize..7,
    ) {
        let inst = Instance::from_estimates(&est, m).unwrap();
        let unc = Uncertainty::of(alpha);
        let factors: Vec<f64> = (0..inst.n())
            .map(|j| if (pattern >> (j % 64)) & 1 == 1 { alpha } else { 1.0 / alpha })
            .collect();
        let real = Realization::from_factors(&inst, unc, &factors).unwrap();

        // LPT-No Restriction is a List Scheduling variant: its makespan
        // is bounded by avg + (m-1)/m * pmax for the actual times.
        let out = LptNoRestriction.run(&inst, unc, &real).unwrap();
        let avg = real.total() / m as f64;
        let bound = avg + real.max() * ((m - 1) as f64 / m as f64);
        prop_assert!(out.makespan.get() <= bound.get() + 1e-9,
            "LS property violated: {} > {}", out.makespan, bound);

        // Every strategy's output is feasible (run() checks it, but the
        // property re-asserts the placement shapes too).
        for k in 1..=m {
            if m % k != 0 { continue; }
            let g = LsGroup::new(k).run(&inst, unc, &real).unwrap();
            prop_assert!(g.placement.max_replicas() == m / k);
        }
    }

    #[test]
    fn exact_optimum_is_a_true_lower_bound(
        est in estimates(10),
        m in 1usize..5,
    ) {
        let inst = Instance::from_estimates(&est, m).unwrap();
        let real = Realization::exact(&inst);
        let times = real.times();
        let (opt, assign) = rds_exact::dp::optimal(times, m).unwrap();
        // Optimal ≥ every combinatorial lower bound.
        prop_assert!(opt >= lower_bounds::combined(times, m) * 0.999_999_999);
        // Optimal ≤ any heuristic (LPT here).
        let lpt = rds_algs::list_scheduling::lpt_estimates(&inst).unwrap();
        prop_assert!(opt <= lpt.makespan(&real) * 1.000_000_001);
        // The reconstruction achieves the reported value.
        let mut loads = vec![0.0f64; m];
        for (j, id) in assign.iter().enumerate() {
            loads[id.index()] += times[j].get();
        }
        let achieved = loads.into_iter().fold(0.0, f64::max);
        prop_assert!((achieved - opt.get()).abs() < 1e-9 * achieved.max(1.0));
    }

    #[test]
    fn multifit_within_bound_and_above_optimal(
        est in estimates(12),
        m in 1usize..5,
    ) {
        let inst = Instance::from_estimates(&est, m).unwrap();
        let times: Vec<Time> = inst.tasks().iter().map(|t| t.estimate).collect();
        let (mf, _) = rds_exact::bin_packing::multifit(&times, m, 40);
        let (opt, _) = rds_exact::dp::optimal(&times, m).unwrap();
        prop_assert!(mf >= opt * 0.999_999_999, "multifit below optimal");
        prop_assert!(mf.get() <= 13.0 / 11.0 * opt.get() + 1e-9, "multifit beyond 13/11");
    }

    #[test]
    fn placement_budget_consistency(
        est in estimates(20),
        m in 2usize..9,
    ) {
        let inst = Instance::from_estimates(&est, m).unwrap();
        let everywhere = Placement::everywhere(&inst);
        prop_assert!(everywhere.check_budget(m).is_ok());
        prop_assert!(everywhere.check_budget(m - 1).is_err());
        prop_assert_eq!(everywhere.total_replicas(), m * inst.n());
    }

    #[test]
    fn balancer_matches_naive_greedy(
        weights in prop::collection::vec(0.0f64..50.0, 1..60),
        m in 1usize..9,
    ) {
        let mut fast = rds_algs::balancer::LoadBalancer::new(m);
        let mut naive = vec![0.0f64; m];
        for &w in &weights {
            let picked = fast.assign(Time::of(w));
            let slow = naive
                .iter()
                .enumerate()
                .min_by(|(i, a), (j, b)| a.partial_cmp(b).unwrap().then(i.cmp(j)))
                .unwrap()
                .0;
            prop_assert_eq!(picked.index(), slow);
            naive[slow] += w;
        }
    }

    #[test]
    fn two_point_adversary_never_exceeds_theorem2(
        lambda in 1usize..6,
        m in 2usize..6,
        alpha in 1.0f64..2.5,
    ) {
        // The full Theorem-1 adversary flow as a property.
        let inst = replicated_placement::adversary::theorem1::uniform_instance(lambda, m).unwrap();
        let unc = Uncertainty::of(alpha);
        let p = LptNoChoice.place(&inst, unc).unwrap();
        let a = LptNoChoice.execute(&inst, &p, &Realization::exact(&inst)).unwrap();
        let atk = replicated_placement::adversary::theorem1::attack(&inst, unc, &a).unwrap();
        let bound = rds_bounds::replication::lpt_no_choice(alpha, m);
        // Witness ratio uses an optimum overestimate, so it must respect
        // the upper bound as well.
        prop_assert!(atk.ratio_witness() <= bound + 1e-9);
    }

    #[test]
    fn group_partition_is_a_partition(
        m in 1usize..64,
        k_seed in any::<u64>(),
    ) {
        let k = (k_seed as usize % m) + 1;
        let g = GroupPartition::new(m, k).unwrap();
        let mut seen = vec![false; m];
        for grp in 0..k {
            for i in g.group_range(grp) {
                prop_assert!(!seen[i], "machine {} in two groups", i);
                seen[i] = true;
                prop_assert_eq!(g.group_of(MachineId::new(i)), grp);
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
        // Near-equal sizes.
        let sizes: Vec<usize> = (0..k).map(|grp| g.group_size(grp)).collect();
        let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(hi - lo <= 1);
    }

    #[test]
    fn schedule_sequencing_roundtrip(
        est in estimates(20),
        m in 1usize..6,
    ) {
        let inst = Instance::from_estimates(&est, m).unwrap();
        let real = Realization::exact(&inst);
        let a = rds_algs::list_scheduling::list_schedule_estimates(&inst).unwrap();
        let s = Schedule::sequence(&a.tasks_per_machine(), &real);
        s.validate(&inst, &real).unwrap();
        prop_assert_eq!(s.to_assignment(&inst).unwrap(), a.clone());
        prop_assert_eq!(s.makespan(), a.makespan(&real));
    }
}
