//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of the criterion 0.5 API its benches use. Semantics:
//!
//! - under `cargo bench` (the harness receives `--bench`), every
//!   benchmark body runs a short timing loop and prints a median;
//! - under `cargo test` (no `--bench` argument), bodies are compiled and
//!   registered but **not executed**, keeping the test suite fast while
//!   still type-checking every bench.

use std::time::Instant;

/// Should the harness actually execute benchmark bodies?
fn execute_mode() -> bool {
    std::env::args().any(|a| a == "--bench") || std::env::var_os("RDS_FORCE_BENCH").is_some()
}

/// Opaque value blackhole (best-effort `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement throughput annotation (recorded, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// The per-iteration timing handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    execute: bool,
    nanos: Option<u128>,
}

impl Bencher {
    /// Times `routine`. In test mode the routine is not executed.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if !self.execute {
            return;
        }
        // One warm-up call, then a handful of timed iterations; report
        // the fastest (criterion-like without the statistics machinery).
        black_box(routine());
        let mut best: u128 = u128::MAX;
        for _ in 0..5 {
            let t0 = Instant::now();
            black_box(routine());
            best = best.min(t0.elapsed().as_nanos());
        }
        self.nanos = Some(best);
    }
}

/// The top-level benchmark manager.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, None, &mut f);
        self
    }
}

/// A group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Adjusts the sample count (accepted for API compatibility; the
    /// stand-in's iteration count is fixed).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` against one input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Benchmarks a closure without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.throughput, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(label: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let execute = execute_mode();
    let mut b = Bencher {
        execute,
        nanos: None,
    };
    f(&mut b);
    if !execute {
        return;
    }
    match (b.nanos, throughput) {
        (Some(ns), Some(Throughput::Elements(k))) if ns > 0 => {
            let rate = k as f64 / (ns as f64 / 1e9);
            println!("{label:<56} {ns:>12} ns/iter  ({rate:.0} elem/s)");
        }
        (Some(ns), _) => println!("{label:<56} {ns:>12} ns/iter"),
        (None, _) => println!("{label:<56}       (no measurement)"),
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the harness entry point (`harness = false` targets).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
