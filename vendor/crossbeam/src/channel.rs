//! Unbounded MPMC channel (blocking `recv`, clonable both ends).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Receiver::recv`] once the channel is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message available.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

impl std::fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SendError(..)")
    }
}

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

/// The sending half (clonable).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Enqueues a message.
    ///
    /// # Errors
    /// Returns the message back when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(value);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake every blocked receiver so it can
            // observe disconnection.
            self.shared.ready.notify_all();
        }
    }
}

/// The receiving half (clonable — the channel is MPMC).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or the channel disconnects.
    ///
    /// # Errors
    /// Returns [`RecvError`] when the channel is empty and every sender
    /// has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            queue = self
                .shared
                .ready
                .wait(queue)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks until a message arrives, the channel disconnects, or
    /// `timeout` elapses.
    ///
    /// # Errors
    /// [`RecvTimeoutError::Timeout`] when the deadline passes with the
    /// channel still empty; [`RecvTimeoutError::Disconnected`] when it is
    /// empty and every sender has been dropped.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = std::time::Instant::now();
            let Some(left) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return Err(RecvTimeoutError::Timeout);
            };
            let (guard, _res) = self
                .shared
                .ready
                .wait_timeout(queue, left)
                .unwrap_or_else(|e| e.into_inner());
            queue = guard;
        }
    }

    /// Non-blocking receive (`None` when currently empty).
    pub fn try_recv(&self) -> Option<T> {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_single_consumer() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn disconnect_unblocks_receivers() {
        let (tx, rx) = unbounded::<i32>();
        let h = std::thread::spawn(move || rx.recv());
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use std::time::Duration;
        let (tx, rx) = unbounded::<i32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn mpmc_drains_everything_exactly_once() {
        let (tx, rx) = unbounded::<usize>();
        let total = 1000;
        for i in 0..total {
            tx.send(i).unwrap();
        }
        drop(tx);
        let counts: Vec<usize> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut c = 0;
                    while rx.recv().is_ok() {
                        c += 1;
                    }
                    c
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect();
        assert_eq!(counts.iter().sum::<usize>(), total);
    }
}
