//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset it uses: an unbounded MPMC [`channel`] (mutex + condvar —
//! correct, not lock-free) and [`thread::scope`] built on
//! `std::thread::scope`.

pub mod channel;
pub mod thread;
