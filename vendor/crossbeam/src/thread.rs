//! Scoped threads with the crossbeam 0.8 calling convention, built on
//! `std::thread::scope`.

/// A scope handle; the closure passed to [`Scope::spawn`] receives a
/// reference to it (crossbeam convention) and may spawn further threads.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The child closure receives the scope.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope; all spawned threads are joined before this
/// returns.
///
/// # Errors
/// Upstream crossbeam returns `Err` with the panic payload when a child
/// thread panicked. `std::thread::scope` instead resumes the panic during
/// the implicit join, so this stand-in never actually returns `Err` — a
/// child panic propagates as a panic, which satisfies callers that
/// `.expect(...)` the result.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_can_borrow_locals() {
        let counter = AtomicUsize::new(0);
        super::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    #[should_panic]
    fn child_panics_propagate() {
        let _ = super::scope(|scope| {
            scope.spawn(|_| panic!("child"));
        });
    }
}
