//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API
//! (guards instead of `Result`s; poisoning is transparently ignored, the
//! parking_lot semantic).

use std::sync::TryLockError;

/// A mutex with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves unique
    /// ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RAII guard for [`Mutex`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A readers-writer lock with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

/// Shared guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
        assert_eq!(l.into_inner(), "ab");
    }
}
