//! `any::<T>()` — whole-domain strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, RngCore};

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Samples one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Returns the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u32()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Mixes reinterpreted random bits (which cover the full finite range
    /// plus infinities/NaN with their natural bit-pattern density) with
    /// explicit edge cases, so domain-boundary behavior gets exercised.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        const EDGES: &[f64] = &[
            0.0,
            -0.0,
            1.0,
            -1.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::MIN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::EPSILON,
        ];
        if rng.gen_bool(0.25) {
            EDGES[rng.gen_range(0..EDGES.len())]
        } else {
            f64::from_bits(rng.next_u64())
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u32())
    }
}
