//! Collection strategies (`vec`, `btree_set`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeSet;

/// A size specification: an exact length or a length range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with a target size drawn from
/// `size`. Sampling retries on duplicates; if the element domain is too
/// small to reach the target the set is returned smaller (matching
/// proptest's best-effort semantics).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut out = BTreeSet::new();
        let mut tries = 0usize;
        while out.len() < target && tries < 16 + target * 16 {
            out.insert(self.element.new_value(rng));
            tries += 1;
        }
        out
    }
}
