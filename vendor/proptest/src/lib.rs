//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of the proptest API its tests use: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, `any`,
//! `Just`, tuple strategies, `collection::{vec, btree_set}`, and the
//! `prop_assert*` macros.
//!
//! Semantics: pure random sampling, **no shrinking**. Case generation is
//! deterministic per test (the RNG is seeded from the test's module path
//! and name), so failures reproduce exactly across runs.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use test_runner::{Config as ProptestConfig, TestRng};

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror (`prop::collection::vec(...)` etc.).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn` body runs `config.cases` times with
/// freshly sampled inputs. Inputs are patterns bound from strategies
/// (`name in strategy`). No shrinking is performed on failure; the
/// deterministic per-test seed makes failures reproducible.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__config.cases {
                let ($($arg,)*) = (
                    $($crate::strategy::Strategy::new_value(&($strat), &mut __rng),)*
                );
                $body
            }
        }
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property test (panics on failure; this
/// stand-in performs no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// This stand-in simply ends the case early (successfully).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}
