//! The [`Strategy`] trait and combinators (sampling-only).

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one fresh value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, usize, u64, u32, u16, u8, i64, i32);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
