//! Test configuration and the deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// The RNG driving value generation, deterministically seeded per test.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds from the test's fully qualified name (FNV-1a hash), so every
    /// test gets an independent but fully reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
