//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of the `rand 0.8` API it actually uses: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, [`rngs::StdRng`], and
//! [`seq::SliceRandom`]. The generator is xoshiro256++ (seeded through
//! SplitMix64), which is statistically strong for simulation workloads;
//! streams are reproducible per seed but deliberately *not* bit-identical
//! to upstream `StdRng` (nothing in this workspace depends on upstream
//! streams).

pub mod rngs;
pub mod seq;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard uniform distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_uniform(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable under the standard uniform distribution.
pub trait Standard: Sized {
    /// Draws one standard-uniform value.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a [`Rng`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_uniform<R: RngCore>(self, rng: &mut R) -> T;
}

/// Multiplies a 64-bit draw into `[0, span)` without modulo bias worth
/// caring about (Lemire's multiply-shift; the residual bias is ≤ 2⁻⁶⁴·span).
pub(crate) fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_uniform<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_uniform<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.abs_diff(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_uniform<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start.max(prev_down(self.end))
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_uniform<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        (lo + u * (hi - lo)).clamp(lo, hi)
    }
}

/// Largest f64 strictly below `x` (for positive finite `x`).
fn prev_down(x: f64) -> f64 {
    f64::from_bits(x.to_bits() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = r.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&v));
            let w: usize = r.gen_range(3..9);
            assert!((3..9).contains(&w));
            let x: i32 = r.gen_range(-4..=4);
            assert!((-4..=4).contains(&x));
        }
    }

    #[test]
    fn unit_uniform_covers_unit_interval() {
        let mut r = StdRng::seed_from_u64(11);
        let mean: f64 = (0..50_000).map(|_| r.gen::<f64>()).sum::<f64>() / 50_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(1);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(1);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(2);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
