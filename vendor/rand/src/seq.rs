//! Sequence sampling helpers (subset of `rand::seq`).

use crate::{uniform_below, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// Returns one uniformly random element, or `None` when empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Returns an iterator over `amount` distinct uniformly random
    /// elements (all of them when `amount >= len`), in selection order.
    fn choose_multiple<R: RngCore>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> SliceChooseIter<'_, Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_below(rng, self.len() as u64) as usize])
        }
    }

    fn choose_multiple<R: RngCore>(&self, rng: &mut R, amount: usize) -> SliceChooseIter<'_, T> {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over an index vector: the first `amount`
        // entries are a uniform sample without replacement.
        let mut idx: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = i + uniform_below(rng, (self.len() - i) as u64) as usize;
            idx.swap(i, j);
        }
        idx.truncate(amount);
        SliceChooseIter {
            slice: self,
            indices: idx.into_iter(),
        }
    }
}

/// Iterator returned by [`SliceRandom::choose_multiple`].
#[derive(Debug)]
pub struct SliceChooseIter<'a, T> {
    slice: &'a [T],
    indices: std::vec::IntoIter<usize>,
}

impl<'a, T> Iterator for SliceChooseIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        self.indices.next().map(|i| &self.slice[i])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.indices.size_hint()
    }
}

impl<T> ExactSizeIterator for SliceChooseIter<'_, T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_multiple_is_distinct_and_uniformish() {
        let mut r = StdRng::seed_from_u64(3);
        let pool: Vec<usize> = (0..10).collect();
        let mut seen = [0usize; 10];
        for _ in 0..5000 {
            let picked: Vec<usize> = pool.choose_multiple(&mut r, 3).copied().collect();
            assert_eq!(picked.len(), 3);
            let mut dedup = picked.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "duplicates in {picked:?}");
            for p in picked {
                seen[p] += 1;
            }
        }
        // Each element expected 1500 times; allow wide slack.
        assert!(seen.iter().all(|&c| (1000..2000).contains(&c)), "{seen:?}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }
}
